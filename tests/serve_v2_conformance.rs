//! `/v2` API conformance over real TCP: the structured error contract
//! (`{"code", "message", "retry_after_ms"}` on every failure path), head
//! and model selection, and bit-identity between coalesced `/v2` batch
//! logits and direct `Donn::logits_batch` calls.

use photonn::datasets::{Dataset, Family};
use photonn::donn::{Donn, DonnConfig};
use photonn::math::Grid;
use photonn::math::Rng;
use photonn::serve::{
    client, BatchPolicy, ClientError, Json, ModelRegistry, ReadoutHead, ServerBuilder, ServerHandle,
};

const GRID: usize = 16;

fn model() -> Donn {
    let mut rng = Rng::seed_from(9);
    Donn::random(DonnConfig::scaled(GRID), &mut rng)
}

fn registry(donn: &Donn) -> ModelRegistry {
    let mut reg = ModelRegistry::new();
    reg.register("ideal", donn.clone());
    reg.register_noise_injected("noisy", donn, 0.05, 13);
    reg
}

fn serve(donn: &Donn) -> ServerHandle {
    ServerBuilder::new(registry(donn))
        .policy(BatchPolicy {
            max_batch: 8,
            max_wait_us: 1_000,
            queue_capacity: 64,
            threads: 1,
        })
        .shards(2)
        .bind("127.0.0.1:0")
        .expect("bind")
}

/// Asserts `body` is a structured v2 error with exactly the given code,
/// and returns its `retry_after_ms`.
fn assert_v2_error(status_got: u16, status_want: u16, body: &str, code: &str) -> Option<u64> {
    assert_eq!(status_got, status_want, "body: {body}");
    let doc = Json::parse(body).unwrap_or_else(|e| panic!("unparseable error body {body}: {e}"));
    assert_eq!(
        doc.get("code").and_then(Json::as_str),
        Some(code),
        "body: {body}"
    );
    assert!(
        doc.get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| !m.is_empty()),
        "message missing: {body}"
    );
    // The key must always be present — null when not retryable.
    let retry = doc
        .get("retry_after_ms")
        .unwrap_or_else(|| panic!("retry_after_ms key missing: {body}"));
    match retry {
        Json::Null => None,
        other => other.as_f64().map(|ms| ms as u64),
    }
}

fn v2_body(model: Option<&str>, head: Option<&str>, inputs: &[&Grid]) -> String {
    let mut pairs = Vec::new();
    if let Some(name) = model {
        pairs.push(("model".to_string(), Json::Str(name.into())));
    }
    if let Some(name) = head {
        pairs.push(("head".to_string(), Json::Str(name.into())));
    }
    pairs.push((
        "inputs".to_string(),
        Json::Arr(inputs.iter().map(|g| Json::numbers(g.as_slice())).collect()),
    ));
    Json::object(pairs).to_string()
}

#[test]
fn every_v2_error_path_answers_the_structured_contract() {
    let donn = model();
    let mut server = serve(&donn);
    let addr = server.addr();
    let image = Grid::full(GRID, GRID, 0.5);
    let post = |body: &str| client::request(addr, "POST", "/v2/logits", Some(body)).expect("post");

    // Malformed JSON → 400 bad_request.
    let (status, body) = post("{not json");
    assert_v2_error(status, 400, &body, "bad_request");

    // Non-string model → 400 bad_request.
    let (status, body) = post(r#"{"model": 3, "inputs": [[0, 1, 2, 3]]}"#);
    assert_v2_error(status, 400, &body, "bad_request");

    // Missing / empty / malformed inputs → 400 bad_request, the message
    // naming the offending index.
    let (status, body) = post(r#"{"model": "ideal"}"#);
    assert_v2_error(status, 400, &body, "bad_request");
    let (status, body) = post(r#"{"inputs": []}"#);
    assert_v2_error(status, 400, &body, "bad_request");
    let (status, body) = post(r#"{"inputs": [[0, 1, 2, 3], [0, 1, 2]]}"#);
    assert_v2_error(status, 400, &body, "bad_request");
    assert!(body.contains("inputs[1]"), "index not named: {body}");

    // Wrong image shape for the model → 400 bad_request.
    let small = Grid::full(4, 4, 0.1);
    let (status, body) = post(&v2_body(None, None, &[&small]));
    assert_v2_error(status, 400, &body, "bad_request");

    // Unknown model → 404 unknown_model.
    let (status, body) = post(&v2_body(Some("missing"), None, &[&image]));
    assert_v2_error(status, 404, &body, "unknown_model");

    // Unknown head → 400 unknown_head.
    let (status, body) = post(&v2_body(None, Some("quadrature"), &[&image]));
    assert_v2_error(status, 400, &body, "unknown_head");

    // Unknown /v2 endpoint → 404 not_found; bad method → 405
    // method_not_allowed. Both structured — /v2 never speaks the legacy
    // `{"error"}` dialect.
    let (status, body) = client::request(addr, "GET", "/v2/nope", None).expect("get");
    assert_v2_error(status, 404, &body, "not_found");
    let (status, body) = client::request(addr, "PUT", "/v2/logits", Some("{}")).expect("put");
    assert_v2_error(status, 405, &body, "method_not_allowed");

    server.shutdown();
}

#[test]
fn oversized_v2_body_answers_structured_413() {
    let donn = model();
    let mut server = ServerBuilder::new(registry(&donn))
        .max_body_bytes(1024)
        .bind("127.0.0.1:0")
        .expect("bind");
    let big = "x".repeat(4096);
    let body = format!(r#"{{"inputs": [["{big}"]]}}"#);
    let (status, text) =
        client::request(server.addr(), "POST", "/v2/logits", Some(&body)).expect("post");
    assert_v2_error(status, 413, &text, "payload_too_large");

    // The same oversize against a /v1 path keeps the legacy body —
    // pinned separately by the byte-compat fixtures, asserted here for
    // the contrast.
    let (status, text) =
        client::request(server.addr(), "POST", "/v1/logits", Some(&body)).expect("post");
    assert_eq!(status, 400);
    assert!(text.contains("\"error\""), "legacy body expected: {text}");
    server.shutdown();
}

#[test]
fn shed_answers_429_with_retry_hint() {
    let donn = model();
    // Capacity 2: a single 3-input batch cannot be admitted atomically.
    let mut server = ServerBuilder::new(registry(&donn))
        .policy(BatchPolicy {
            max_batch: 8,
            max_wait_us: 1_000,
            queue_capacity: 2,
            threads: 1,
        })
        .retry_after_ms(75)
        .bind("127.0.0.1:0")
        .expect("bind");
    let image = Grid::full(GRID, GRID, 0.5);
    let (status, body) = client::request(
        server.addr(),
        "POST",
        "/v2/logits",
        Some(&v2_body(None, None, &[&image, &image, &image])),
    )
    .expect("post");
    let retry = assert_v2_error(status, 429, &body, "shed");
    assert_eq!(retry, Some(75), "configured retry hint must round-trip");

    let snapshot = server.metrics();
    assert_eq!(snapshot.sheds_total, 1, "shed must be counted");
    server.shutdown();
}

#[test]
fn v2_batch_logits_bit_identical_to_direct_logits_batch() {
    let donn = model();
    let mut server = serve(&donn);
    let data = Dataset::synthetic(Family::Mnist, 6, 29).resized(GRID);
    let images: Vec<&Grid> = (0..data.len()).map(|i| data.image(i)).collect();

    let mut api = client::Client::new(server.addr());
    let reply = api.logits_v2(Some("ideal"), None, &images).expect("v2");
    assert_eq!(reply.model, "ideal");
    assert_eq!(reply.head, "sum");
    let direct = donn.logits_batch(&images, 1);
    assert_eq!(reply.results.len(), direct.len());
    for (i, (got, want)) in reply.results.iter().zip(&direct).enumerate() {
        assert_eq!(
            &got.logits, want,
            "input {i}: /v2 batch logits not bit-identical to logits_batch"
        );
    }

    // The same single sample through /v1 and /v2 agrees bitwise (the sum
    // head IS the /v1 readout).
    let one = api.logits_v1(Some("ideal"), images[0]).expect("v1");
    let v2_one = api
        .logits_v2(Some("ideal"), None, &images[..1])
        .expect("v2");
    assert_eq!(one.logits, v2_one.results[0].logits);
    server.shutdown();
}

#[test]
fn head_selection_switches_the_readout() {
    let donn = model();
    let mut server = serve(&donn);
    let data = Dataset::synthetic(Family::Mnist, 3, 31).resized(GRID);
    let images: Vec<&Grid> = (0..data.len()).map(|i| data.image(i)).collect();
    let mut api = client::Client::new(server.addr());

    let sum = api
        .logits_v2(Some("ideal"), Some("sum"), &images)
        .expect("sum");
    let diff = api
        .logits_v2(Some("ideal"), Some("differential"), &images)
        .expect("differential");
    assert_eq!(diff.head, "differential");
    assert_ne!(
        sum.results[0].logits, diff.results[0].logits,
        "differential head must not reproduce the sum readout"
    );
    // Differential logits are normalized contrasts: every value in [-1, 1].
    for entry in &diff.results {
        assert!(
            entry.logits.iter().all(|v| v.is_finite() && v.abs() <= 1.0),
            "differential logits out of range: {:?}",
            entry.logits
        );
    }
    // Oracle: the served differential readout equals the head applied to
    // the same batched intensity the server computed.
    let reg = registry(&donn);
    let served = reg.get("ideal").expect("registered");
    let intensity = served.intensity_batch(&images, 1);
    let regions = served.regions().to_vec();
    let (_, _, cols) = intensity.shape();
    for (i, (sample, entry)) in intensity.samples().zip(&diff.results).enumerate() {
        let want = ReadoutHead::Differential.readout(sample, cols, &regions);
        assert_eq!(
            entry.logits, want,
            "input {i}: differential readout drifted"
        );
    }
    server.shutdown();
}

#[test]
fn model_variant_selection_per_request() {
    let donn = model();
    let mut server = serve(&donn);
    let image = Dataset::synthetic(Family::Mnist, 1, 37)
        .resized(GRID)
        .image(0)
        .clone();
    let mut api = client::Client::new(server.addr());

    let ideal = api
        .logits_v2(Some("ideal"), None, &[&image])
        .expect("ideal");
    let noisy = api
        .logits_v2(Some("noisy"), None, &[&image])
        .expect("noisy");
    assert_eq!(noisy.model, "noisy");
    assert_ne!(
        ideal.results[0].logits, noisy.results[0].logits,
        "noise-injected variant must differ from ideal"
    );
    // Seeded noise: the same variant answers identically across requests.
    let again = api
        .logits_v2(Some("noisy"), None, &[&image])
        .expect("noisy again");
    assert_eq!(noisy.results[0].logits, again.results[0].logits);

    // Typed client surfaces the structured error fields.
    let err = api.logits_v2(Some("absent"), None, &[&image]).unwrap_err();
    match err {
        ClientError::Api(e) => {
            assert_eq!((e.status, e.code.as_str()), (404, "unknown_model"));
            assert_eq!(e.retry_after_ms, None);
        }
        ClientError::Io(e) => panic!("expected ApiError, got transport error {e}"),
    }
    server.shutdown();
}

#[test]
fn v2_models_lists_heads_and_variants() {
    let donn = model();
    let mut server = serve(&donn);
    let (status, body) = client::request(server.addr(), "GET", "/v2/models", None).expect("get");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("valid JSON");
    assert_eq!(doc.get("default").and_then(Json::as_str), Some("ideal"));
    let models = doc.get("models").and_then(Json::as_array).expect("models");
    assert_eq!(models.len(), 2);
    let heads: Vec<&str> = doc
        .get("heads")
        .and_then(Json::as_array)
        .expect("heads")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(heads, vec!["sum", "differential"]);
    server.shutdown();
}
