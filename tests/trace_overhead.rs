//! The disabled-tracing overhead contract at the repository level: with
//! `PHOTONN_TRACE` off, the instrumentation woven through the engine must
//! cost less than 1% of a grid-32 training step.
//!
//! A direct wall-clock A/B of two step timings is hopelessly noisy in a
//! shared test harness, so the assertion uses the stable formulation the
//! release bench gate (`bench_batched_step --check-trace-overhead`) also
//! uses: measure the disabled per-call span cost over millions of calls,
//! count the instrumentation points one real step actually crosses (by
//! tracing a single step), and compare their product with the measured
//! disabled step time. Every quantity is measured in the same build
//! profile, so the test is meaningful in debug and release alike.

use photonn::autodiff::Adam;
use photonn::datasets::{Dataset, Family};
use photonn::donn::train::batched_gradients;
use photonn::donn::{Donn, DonnConfig};
use photonn::math::Rng;
use std::time::Instant;

const GRID: usize = 32;
const BATCH: usize = 25;

fn one_step(donn: &mut Donn, data: &Dataset, batch: &[usize]) {
    let mut adam = Adam::new(0.05);
    let (g, _) = batched_gradients(donn, data, batch, None, 1);
    adam.step(donn.masks_mut(), &g);
}

#[test]
fn disabled_tracing_costs_under_one_percent_of_a_grid32_step() {
    photonn::trace::set_enabled(false);
    let data = Dataset::synthetic(Family::Mnist, BATCH, 42).resized(GRID);
    let batch: Vec<usize> = (0..BATCH).collect();
    let fresh = || Donn::random(DonnConfig::scaled(GRID), &mut Rng::seed_from(42));

    // Disabled step time, with a warm-up step outside the window.
    let mut donn = fresh();
    one_step(&mut donn, &data, &batch);
    let start = Instant::now();
    one_step(&mut donn, &data, &batch);
    let step_s = start.elapsed().as_secs_f64();

    // Disabled per-call cost of the span guard: a relaxed load + branch.
    const CALLS: u64 = 5_000_000;
    let start = Instant::now();
    for _ in 0..CALLS {
        let _s = photonn::trace::span("overhead.probe");
    }
    let per_call_s = start.elapsed().as_secs_f64() / CALLS as f64;

    // Instrumentation points one step crosses: spans recorded plus counter
    // increments, counted by tracing a single step from a reset window.
    photonn::trace::set_enabled(true);
    photonn::trace::reset();
    one_step(&mut fresh(), &data, &batch);
    let trace = photonn::trace::collect();
    photonn::trace::set_enabled(false);
    let bumps: u64 = trace.counters.iter().map(|(_, v)| v).sum();
    let ops = trace.events.len() as u64 + bumps;
    assert!(
        ops > 0,
        "the traced step recorded nothing — instrumentation is unwired"
    );

    let overhead_s = per_call_s * ops as f64;
    let ratio = overhead_s / step_s;
    assert!(
        ratio < 0.01,
        "disabled tracing costs {:.4}% of a grid-{GRID} step \
         ({ops} points x {:.2} ns/call = {:.3} us vs {:.3} ms step)",
        ratio * 100.0,
        per_call_s * 1e9,
        overhead_s * 1e6,
        step_s * 1e3,
    );
}
