//! `/v1` byte-compatibility gate: every response the pre-redesign server
//! produced — success bodies, error bodies, ancillary endpoints — must stay
//! byte-identical through the event-loop frontend redesign.
//!
//! The committed fixtures in `tests/fixtures/v1_compat.txt` were captured
//! from the thread-per-connection server immediately before the v2
//! redesign. Regenerate (only when intentionally changing the v1 surface)
//! with:
//!
//! ```sh
//! PHOTONN_REGEN_FIXTURES=1 cargo test --test serve_v1_compat
//! ```
//!
//! The one nondeterministic field, `latency_us`, is normalized to `0` on
//! both sides before comparison; everything else — field order, float
//! formatting, error phrasing, status codes — is compared byte for byte.

use photonn::datasets::{Dataset, Family};
use photonn::donn::{Donn, DonnConfig};
use photonn::math::{Grid, Rng};
use photonn::serve::{client, Json, ModelRegistry, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::Path;

const GRID: usize = 32;
const FIXTURE_PATH: &str = "tests/fixtures/v1_compat.txt";

fn fixture_registry() -> (ModelRegistry, Donn) {
    let mut rng = Rng::seed_from(3);
    let donn = Donn::random(DonnConfig::scaled(GRID), &mut rng);
    let mut reg = ModelRegistry::new();
    reg.register("ideal", donn.clone());
    reg.register_quantized("q8", &donn, 8);
    (reg, donn)
}

fn logits_body(image: &Grid, model: Option<&str>) -> String {
    let mut fields = Vec::new();
    if let Some(name) = model {
        fields.push(("model".to_string(), Json::Str(name.to_string())));
    }
    fields.push(("image".to_string(), Json::numbers(image.as_slice())));
    Json::object(fields).to_string()
}

/// Replaces the digits of `"latency_us":<number>` with `0` so the only
/// nondeterministic field compares equal across runs.
fn normalize(body: &str) -> String {
    const KEY: &str = "\"latency_us\":";
    match body.find(KEY) {
        None => body.to_string(),
        Some(at) => {
            let tail = &body[at + KEY.len()..];
            let end = tail
                .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | 'e' | 'E' | '+'))
                .unwrap_or(tail.len());
            format!("{}{KEY}0{}", &body[..at], &tail[end..])
        }
    }
}

/// The exchanges pinned by the fixture file, in order. Each yields one
/// `name | status | normalized-body` record.
fn exchanges(addr: SocketAddr, data: &Dataset) -> Vec<(&'static str, u16, String)> {
    let mut conn = client::Connection::connect(addr).expect("connect");
    let mut shot = |name: &'static str, method: &str, path: &str, body: Option<&str>| {
        let (status, text) = conn.request(method, path, body).expect(name);
        (name, status, normalize(&text))
    };
    let image = data.image(0);
    let mut records = vec![
        shot("healthz", "GET", "/healthz", None),
        shot("models", "GET", "/models", None),
        shot(
            "logits_default",
            "POST",
            "/v1/logits",
            Some(&logits_body(image, None)),
        ),
        shot(
            "logits_named",
            "POST",
            "/v1/logits",
            Some(&logits_body(data.image(1), Some("q8"))),
        ),
        shot(
            "unknown_model",
            "POST",
            "/v1/logits",
            Some(&logits_body(image, Some("missing"))),
        ),
        shot(
            "wrong_shape",
            "POST",
            "/v1/logits",
            Some(&logits_body(&Grid::full(16, 16, 0.5), None)),
        ),
        shot(
            "model_not_string",
            "POST",
            "/v1/logits",
            Some(r#"{"model": 3, "image": [0, 1, 2, 3]}"#),
        ),
        shot(
            "image_missing",
            "POST",
            "/v1/logits",
            Some(r#"{"model": "ideal"}"#),
        ),
        shot(
            "image_empty",
            "POST",
            "/v1/logits",
            Some(r#"{"image": []}"#),
        ),
        shot(
            "image_not_square",
            "POST",
            "/v1/logits",
            Some(r#"{"image": [0, 1, 2]}"#),
        ),
        shot(
            "image_non_finite",
            "POST",
            "/v1/logits",
            Some(r#"{"image": [0, 1, 2, 1e999]}"#),
        ),
        shot(
            "image_mixed_rows",
            "POST",
            "/v1/logits",
            Some(r#"{"image": [[0, 1], 2]}"#),
        ),
        shot("no_such_endpoint", "GET", "/nope", None),
        shot("post_no_such_endpoint", "POST", "/nope", Some("{}")),
    ];
    // Bad JSON and bad method close or answer on a fresh connection so a
    // possibly-desynced stream never contaminates the keep-alive records.
    let (status, text) =
        client::request(addr, "POST", "/v1/logits", Some("{not json")).expect("bad json");
    records.push(("malformed_json", status, normalize(&text)));
    let (status, text) = client::request(addr, "PUT", "/v1/logits", Some("{}")).expect("put");
    records.push(("method_not_allowed", status, normalize(&text)));
    records
}

fn render(records: &[(&'static str, u16, String)]) -> String {
    let mut out = String::new();
    for (name, status, body) in records {
        out.push_str(&format!("{name} | {status} | {body}\n"));
    }
    out
}

#[test]
fn v1_responses_byte_identical_to_pre_redesign_fixtures() {
    let (registry, _donn) = fixture_registry();
    #[allow(deprecated)]
    let mut server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).expect("bind");
    let data = Dataset::synthetic(Family::Mnist, 3, 11).resized(GRID);
    let records = exchanges(server.addr(), &data);
    server.shutdown();
    let live = render(&records);

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE_PATH);
    if std::env::var("PHOTONN_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixture dir");
        std::fs::write(&path, &live).expect("write fixtures");
        eprintln!("regenerated {FIXTURE_PATH}");
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture file {FIXTURE_PATH}: {e}"));
    for (live_line, committed_line) in live.lines().zip(committed.lines()) {
        assert_eq!(
            live_line, committed_line,
            "/v1 response drifted from the pre-redesign fixture"
        );
    }
    assert_eq!(
        live.lines().count(),
        committed.lines().count(),
        "fixture record count drifted"
    );
}
