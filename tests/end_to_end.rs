//! End-to-end integration tests spanning all workspace crates: synthetic
//! data → optical encoding → differentiable DONN training → sparsification
//! → 2π smoothing → deployment simulation.

use photonn_datasets::{Dataset, Family};
use photonn_donn::deploy::FabricationModel;
use photonn_donn::pipeline::{run_variant_on, ExperimentConfig, Variant};
use photonn_donn::roughness::{r_overall, RoughnessConfig};
use photonn_donn::slr::SlrConfig;
use photonn_donn::train::{train, TrainOptions};
use photonn_donn::two_pi::TwoPiStrategy;
use photonn_donn::{Donn, DonnConfig};
use photonn_math::{CGrid, Rng};

fn tiny_cfg(family: Family) -> ExperimentConfig {
    ExperimentConfig {
        train_samples: 150,
        test_samples: 60,
        baseline_epochs: 3,
        slr: SlrConfig {
            sparsity: 0.15,
            block: 8,
            outer_iterations: 2,
            probe_samples: 16,
            ..SlrConfig::default()
        },
        two_pi: TwoPiStrategy::Greedy { sweeps: 4 },
        ..ExperimentConfig::scaled(family)
    }
}

#[test]
fn training_beats_chance_on_every_family() {
    for family in Family::all() {
        let data = Dataset::synthetic(family, 260, 5).resized(32);
        let (train_set, test_set) = data.split(200);
        let mut rng = Rng::seed_from(5);
        let mut donn = Donn::random(DonnConfig::scaled(32), &mut rng);
        let opts = TrainOptions {
            epochs: 4,
            batch_size: 25,
            learning_rate: 0.08,
            ..TrainOptions::default()
        };
        train(&mut donn, &train_set, &opts);
        let acc = donn.accuracy(&test_set, 2);
        assert!(
            acc > 0.2,
            "{}: accuracy {acc} not above chance",
            family.name()
        );
    }
}

#[test]
fn full_pipeline_reproduces_paper_ordering() {
    // The paper's core qualitative claims on one dataset:
    //  (1) Ours-A (roughness-aware) is smoother than the baseline;
    //  (2) among the sparsified variants, adding the roughness regularizer
    //      (Ours-C vs Ours-B) lowers the 2π-optimized roughness — the
    //      scale-robust form of the Table II ordering (at this tiny test
    //      budget the *baseline* barely trains, so its roughness stays at
    //      the smooth-init floor; the full-size comparison against the
    //      baseline is exercised by the table binaries, see
    //      EXPERIMENTS.md);
    //  (3) accuracy stays within a few points of the baseline.
    let cfg = tiny_cfg(Family::Mnist);
    let (train_set, test_set) = cfg.datasets();
    let baseline = run_variant_on(&cfg, Variant::Baseline, &train_set, &test_set);
    let ours_a = run_variant_on(&cfg, Variant::OursA, &train_set, &test_set);
    let ours_b = run_variant_on(&cfg, Variant::OursB, &train_set, &test_set);
    let ours_c = run_variant_on(&cfg, Variant::OursC, &train_set, &test_set);

    assert!(
        ours_a.r_before < baseline.r_before,
        "(1) Ours-A {} !< baseline {}",
        ours_a.r_before,
        baseline.r_before
    );
    assert!(
        ours_c.r_after < ours_b.r_after,
        "(2) Ours-C after-2π {} !< Ours-B after-2π {}",
        ours_c.r_after,
        ours_b.r_after
    );
    assert!(
        ours_c.accuracy > baseline.accuracy - 0.15,
        "(3) Ours-C accuracy collapsed: {} vs {}",
        ours_c.accuracy,
        baseline.accuracy
    );
}

#[test]
fn two_pi_never_changes_predictions() {
    let cfg = tiny_cfg(Family::Emnist);
    let (train_set, test_set) = cfg.datasets();
    let result = run_variant_on(&cfg, Variant::OursB, &train_set, &test_set);

    // Rebuild two models from the before/after masks and compare every
    // prediction on the test set.
    let mut rng = Rng::seed_from(0);
    let mut donn_before = Donn::random(DonnConfig::scaled(cfg.grid), &mut rng);
    donn_before.set_masks(result.masks.clone());
    let mut donn_after = donn_before.clone();
    donn_after.set_masks(result.masks_two_pi.clone());

    for i in 0..test_set.len() {
        assert_eq!(
            donn_before.predict(test_set.image(i)),
            donn_after.predict(test_set.image(i)),
            "prediction changed for sample {i}"
        );
    }
}

#[test]
fn smoother_models_survive_deployment_better() {
    // Train baseline and an aggressively roughness-regularized model, then
    // deploy both under identical crosstalk: the smoother model must keep
    // at least as much of its digital accuracy.
    let data = Dataset::synthetic(Family::Mnist, 220, 13).resized(32);
    let (train_set, test_set) = data.split(160);
    let mut rng = Rng::seed_from(13);
    let mut baseline = Donn::random(DonnConfig::scaled(32), &mut rng);
    let mut smooth = baseline.clone();

    let opts = TrainOptions {
        epochs: 3,
        batch_size: 20,
        learning_rate: 0.08,
        ..TrainOptions::default()
    };
    train(&mut baseline, &train_set, &opts);
    let smooth_opts = TrainOptions {
        regularization: photonn_donn::train::Regularization::roughness_only(0.01),
        ..opts
    };
    train(&mut smooth, &train_set, &smooth_opts);

    let cfg = RoughnessConfig::paper();
    assert!(r_overall(smooth.masks(), cfg) < r_overall(baseline.masks(), cfg));

    // The mechanism claim (§II-B): crosstalk distorts the deployed output
    // more for rougher masks. Accuracy on a tiny test set is too noisy a
    // proxy (margins dominate), so compare the digital-vs-deployed
    // detector-logit distortion directly, averaged over the test set.
    let fab = FabricationModel::new(0.25);
    let distortion = |donn: &Donn| -> f64 {
        let mut total = 0.0;
        for i in 0..test_set.len() {
            let image = test_set.image(i);
            let digital = donn.logits(image);
            let field = fab.forward_field(donn, &photonn_optics::encode_amplitude(image));
            let intensity = field.intensity();
            let deployed: Vec<f64> = donn.regions().iter().map(|r| r.sum(&intensity)).collect();
            let scale: f64 = digital.iter().sum::<f64>().max(1e-12);
            total += digital
                .iter()
                .zip(&deployed)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / scale;
        }
        total / test_set.len() as f64
    };
    let d_smooth = distortion(&smooth);
    let d_rough = distortion(&baseline);
    assert!(
        d_smooth < d_rough,
        "smooth-mask deployment distortion {d_smooth:.4} !< rough-mask {d_rough:.4}"
    );
}

#[test]
fn masks_transmissions_are_unitary_before_and_after_two_pi() {
    let cfg = tiny_cfg(Family::Kmnist);
    let (train_set, test_set) = cfg.datasets();
    let r = run_variant_on(&cfg, Variant::OursC, &train_set, &test_set);
    for masks in [&r.masks, &r.masks_two_pi] {
        for m in masks {
            let t = CGrid::from_phase(m);
            for z in t.as_slice() {
                assert!((z.norm() - 1.0).abs() < 1e-12, "non-unitary transmission");
            }
        }
    }
}
