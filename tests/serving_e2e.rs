//! End-to-end serving tests: real TCP sockets, concurrent clients, and
//! bit-identity between served logits and direct `Donn::logits` calls.
//!
//! The original tests deliberately stay on the deprecated
//! `Server::bind`/`ServerConfig` entry points: they prove the legacy
//! surface keeps compiling and behaving identically on top of the
//! event-loop frontend. New tests use `ServerBuilder`.
#![allow(deprecated)]

use photonn::datasets::{Dataset, Family};
use photonn::donn::{Donn, DonnConfig};
use photonn::math::{Grid, Rng};
use photonn::serve::{
    client, BatchPolicy, Json, ModelRegistry, Server, ServerBuilder, ServerConfig,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const GRID: usize = 32;

fn model() -> Donn {
    let mut rng = Rng::seed_from(3);
    Donn::random(DonnConfig::scaled(GRID), &mut rng)
}

fn registry(donn: &Donn) -> ModelRegistry {
    let mut reg = ModelRegistry::new();
    reg.register("ideal", donn.clone());
    reg
}

fn logits_body(image: &Grid) -> String {
    Json::object(vec![("image".into(), Json::numbers(image.as_slice()))]).to_string()
}

fn parse_logits(body: &str) -> Vec<f64> {
    Json::parse(body)
        .expect("valid JSON")
        .get("logits")
        .and_then(Json::as_array)
        .expect("logits array")
        .iter()
        .map(|v| v.as_f64().expect("number"))
        .collect()
}

/// The acceptance-criteria test: N concurrent clients over real TCP, each
/// receiving logits bit-identical to a direct `Donn::logits` call on its
/// own image, while the dispatcher coalesces the traffic.
#[test]
fn concurrent_clients_receive_bit_identical_logits() {
    let donn = model();
    let config = ServerConfig {
        policy: BatchPolicy {
            max_batch: 8,
            max_wait_us: 3_000,
            queue_capacity: 256,
            threads: 2,
        },
        ..ServerConfig::default()
    };
    let mut server = Server::bind("127.0.0.1:0", registry(&donn), config).expect("bind");
    let addr = server.addr();

    const CLIENTS: usize = 6;
    const REQUESTS: usize = 3;
    let data = Dataset::synthetic(Family::Mnist, CLIENTS * REQUESTS, 11).resized(GRID);
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let donn = Arc::new(donn);
    let data = Arc::new(data);

    let mut workers = Vec::new();
    for c in 0..CLIENTS {
        let barrier = Arc::clone(&barrier);
        let donn = Arc::clone(&donn);
        let data = Arc::clone(&data);
        workers.push(std::thread::spawn(move || {
            // One keep-alive connection per client, several requests each,
            // all clients released together to exercise coalescing.
            let mut conn = client::Connection::connect(addr).expect("connect");
            barrier.wait();
            for r in 0..REQUESTS {
                let image = data.image(c * REQUESTS + r);
                let (status, body) = conn
                    .request("POST", "/v1/logits", Some(&logits_body(image)))
                    .expect("request");
                assert_eq!(status, 200, "client {c} request {r}: {body}");
                let served = parse_logits(&body);
                assert_eq!(
                    served,
                    donn.logits(image),
                    "client {c} request {r}: served logits not bit-identical"
                );
            }
        }));
    }
    for worker in workers {
        worker.join().expect("client panicked");
    }

    // The server observed all traffic; under concurrent load at least one
    // batch should have coalesced more than one request (not asserted —
    // timing-dependent), but the accounting must always balance.
    let snapshot = server.metrics();
    assert_eq!(snapshot.requests_total, (CLIENTS * REQUESTS) as u64);
    assert_eq!(snapshot.responses_2xx, (CLIENTS * REQUESTS) as u64);
    assert!(snapshot.max_batch_observed <= 8, "max_batch violated");
    assert_eq!(
        snapshot.batch_hist.iter().sum::<u64>(),
        snapshot.batches_total
    );
    assert!(snapshot.latency_samples >= CLIENTS * REQUESTS);
    assert!(snapshot.p50_latency_us <= snapshot.p99_latency_us);
    server.shutdown();
}

/// The planar-engine serving invariant: with the field stack stored as
/// split re/im planes end-to-end (and the input-hop cache exercising both
/// conversion edges — interleaved `CGrid` hops deinterleaved into the
/// planar stack, fresh hops interleaved back out for caching), served
/// logits stay bit-identical to direct per-sample `Donn::logits` calls.
/// Pinned at a mixed-radix grid (20 = 2²·5) so the vectorized planar
/// mixed-radix path — the paper-native 200-grid path in miniature — is the
/// engine under test, including repeat requests answered from the cache.
#[test]
fn planar_backed_logits_bit_identical_to_direct_calls() {
    let mut rng = Rng::seed_from(41);
    let donn = Donn::random(DonnConfig::scaled(20), &mut rng);
    let config = ServerConfig {
        policy: BatchPolicy {
            max_batch: 4,
            max_wait_us: 0,
            queue_capacity: 64,
            threads: 2,
        },
        cache_budget_bytes: 8 << 20, // force the cache-assisted stack path
    };
    let mut server = Server::bind("127.0.0.1:0", registry(&donn), config).expect("bind");
    let addr = server.addr();

    let data = Dataset::synthetic(Family::Mnist, 5, 41).resized(20);
    let mut conn = client::Connection::connect(addr).expect("connect");
    // Two passes over the same images: the first misses the input-hop
    // cache (fresh planar hops, interleaved back out for caching), the
    // second hits it (cached CGrids deinterleaved into the planar stack).
    for pass in 0..2 {
        for i in 0..data.len() {
            let image = data.image(i);
            let (status, body) = conn
                .request("POST", "/v1/logits", Some(&logits_body(image)))
                .expect("request");
            assert_eq!(status, 200, "pass {pass} image {i}: {body}");
            assert_eq!(
                parse_logits(&body),
                donn.logits(image),
                "pass {pass} image {i}: planar-backed logits not bit-identical"
            );
        }
    }
    let snapshot = server.metrics();
    assert!(
        snapshot.cache_hits >= data.len() as u64,
        "second pass should hit the input-hop cache"
    );
    server.shutdown();
}

/// Backpressure: with a 2-deep queue and a dispatcher parked waiting for a
/// large batch, a third request must bounce with HTTP 429 while the two
/// parked requests still complete.
#[test]
fn full_queue_returns_429_and_parked_requests_complete() {
    let donn = model();
    let config = ServerConfig {
        policy: BatchPolicy {
            max_batch: 8,
            max_wait_us: 500_000, // park half a second waiting for a batch
            queue_capacity: 2,
            threads: 1,
        },
        cache_budget_bytes: 0,
    };
    let mut server = Server::bind("127.0.0.1:0", registry(&donn), config).expect("bind");
    let addr = server.addr();
    let data = Dataset::synthetic(Family::Mnist, 3, 5).resized(GRID);

    let mut parked = Vec::new();
    for i in 0..2 {
        let image = data.image(i).clone();
        let donn = donn.clone();
        parked.push(std::thread::spawn(move || {
            let (status, body) =
                client::request(addr, "POST", "/v1/logits", Some(&logits_body(&image)))
                    .expect("request");
            assert_eq!(status, 200, "parked request failed: {body}");
            assert_eq!(parse_logits(&body), donn.logits(&image));
        }));
        // Let request i reach the queue before sending i+1.
        std::thread::sleep(Duration::from_millis(100));
    }

    let (status, body) = client::request(
        addr,
        "POST",
        "/v1/logits",
        Some(&logits_body(data.image(2))),
    )
    .expect("request");
    assert_eq!(status, 429, "expected backpressure, got {status}: {body}");
    assert!(body.contains("queue full"), "unexpected body: {body}");

    for p in parked {
        p.join().expect("parked client panicked");
    }
    let snapshot = server.metrics();
    assert_eq!(snapshot.responses_429, 1);
    assert_eq!(snapshot.responses_2xx, 2);
    server.shutdown();
}

/// Ancillary endpoints and error paths over real TCP.
#[test]
fn endpoints_and_error_paths() {
    let donn = model();
    let mut reg = registry(&donn);
    reg.register_quantized("q8", &donn, 8);
    let mut server = Server::bind("127.0.0.1:0", reg, ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let (status, body) = client::request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!((status, body.contains("ok")), (200, true));

    let (status, body) = client::request(addr, "GET", "/models", None).unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("default").and_then(Json::as_str), Some("ideal"));
    assert_eq!(doc.get("models").and_then(Json::as_array).unwrap().len(), 2);

    let (status, _) = client::request(addr, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);

    let image = Grid::full(GRID, GRID, 0.5);
    let body = Json::object(vec![
        ("model".into(), Json::Str("missing".into())),
        ("image".into(), Json::numbers(image.as_slice())),
    ])
    .to_string();
    let (status, text) = client::request(addr, "POST", "/v1/logits", Some(&body)).unwrap();
    assert_eq!(status, 404);
    assert!(text.contains("unknown model"));

    let (status, _) = client::request(addr, "POST", "/v1/logits", Some("{not json")).unwrap();
    assert_eq!(status, 400);

    let wrong_shape = Json::object(vec![("image".into(), Json::numbers(&[0.0; 16]))]).to_string();
    let (status, text) = client::request(addr, "POST", "/v1/logits", Some(&wrong_shape)).unwrap();
    assert_eq!(status, 400);
    assert!(text.contains("does not match"), "body: {text}");

    // Routed through a named variant, results match that variant exactly.
    let q_body = Json::object(vec![
        ("model".into(), Json::Str("q8".into())),
        ("image".into(), Json::numbers(image.as_slice())),
    ])
    .to_string();
    let (status, text) = client::request(addr, "POST", "/v1/logits", Some(&q_body)).unwrap();
    assert_eq!(status, 200);
    let mut quantized = donn.clone();
    quantized.set_masks(
        donn.masks()
            .iter()
            .map(|m| photonn::donn::quantize::quantize_mask(m, 8))
            .collect(),
    );
    assert_eq!(parse_logits(&text), quantized.logits(&image));

    server.shutdown();
    // After shutdown the port no longer answers.
    assert!(client::request(addr, "GET", "/healthz", None).is_err());
}

/// Reads one `Content-Length`-delimited HTTP response off a pipelined
/// stream.
fn read_one_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    assert!(
        reader.read_line(&mut status_line).expect("status line") > 0,
        "server closed mid-pipeline"
    );
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("malformed status line");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("header") > 0);
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// The ordering property the write layer guarantees: per-model queues,
/// work-stealing and admission degradation may scramble *dispatch* order
/// freely, but one client's pipelined requests are answered strictly in
/// the order they were sent.
///
/// One raw socket sends a burst of back-to-back requests — alternating
/// between two models (so jobs land in different per-shard queues and
/// groups churn) and between `/v1` and `/v2` (so both dialects share the
/// response-slot queue) — then reads every response in order. Each
/// request carries a distinct image, so any reordering is caught as a
/// bit-exact logits mismatch, not just a plausible-looking answer.
/// Swept over seeds to vary batch boundaries and steal timing.
#[test]
fn pipelined_requests_answered_in_order_under_shard_churn() {
    let donn = model();
    let mut quantized = donn.clone();
    quantized.set_masks(
        donn.masks()
            .iter()
            .map(|m| photonn::donn::quantize::quantize_mask(m, 8))
            .collect(),
    );
    let mut reg = registry(&donn);
    reg.register_quantized("q8", &donn, 8);
    let mut server = ServerBuilder::new(reg)
        .policy(BatchPolicy {
            max_batch: 3, // small ceiling: a burst spans many batches
            max_wait_us: 0,
            queue_capacity: 256,
            threads: 1,
        })
        .shards(4)
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.addr();

    const REQUESTS: usize = 16;
    for seed in 0..6u64 {
        let data = Dataset::synthetic(Family::Mnist, REQUESTS, 100 + seed).resized(GRID);
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);

        // The whole burst goes out before any response is read.
        let mut burst = String::new();
        for r in 0..REQUESTS {
            let image = data.image(r);
            let model = if (seed as usize + r).is_multiple_of(2) {
                "ideal"
            } else {
                "q8"
            };
            let (path, body) = if r % 3 == 2 {
                (
                    "/v2/logits",
                    Json::object(vec![
                        ("model".into(), Json::Str(model.into())),
                        (
                            "inputs".into(),
                            Json::Arr(vec![Json::numbers(image.as_slice())]),
                        ),
                    ])
                    .to_string(),
                )
            } else {
                (
                    "/v1/logits",
                    Json::object(vec![
                        ("model".into(), Json::Str(model.into())),
                        ("image".into(), Json::numbers(image.as_slice())),
                    ])
                    .to_string(),
                )
            };
            burst.push_str(&format!(
                "POST {path} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ));
        }
        writer.write_all(burst.as_bytes()).expect("write burst");
        writer.flush().expect("flush");

        for r in 0..REQUESTS {
            let (status, body) = read_one_response(&mut reader);
            assert_eq!(status, 200, "seed {seed} response {r}: {body}");
            let image = data.image(r);
            let model = if (seed as usize + r).is_multiple_of(2) {
                &donn
            } else {
                &quantized
            };
            let expected = model.logits(image);
            let doc = Json::parse(&body).expect("valid JSON");
            let got: Vec<f64> = if r % 3 == 2 {
                doc.get("results")
                    .and_then(Json::as_array)
                    .expect("results")[0]
                    .get("logits")
                    .and_then(Json::as_array)
                    .expect("logits")
                    .iter()
                    .map(|v| v.as_f64().expect("number"))
                    .collect()
            } else {
                doc.get("logits")
                    .and_then(Json::as_array)
                    .expect("logits")
                    .iter()
                    .map(|v| v.as_f64().expect("number"))
                    .collect()
            };
            assert_eq!(
                got, expected,
                "seed {seed} response {r} out of order or wrong model"
            );
        }
    }
    // With 4 shards and two models the burst pattern routinely crosses
    // shards; the accounting must balance regardless of steal activity.
    let snapshot = server.metrics();
    assert_eq!(snapshot.responses_2xx, (6 * REQUESTS) as u64);
    server.shutdown();
}
