//! Property-based tests (proptest) on cross-crate invariants: FFT algebra,
//! propagation physics, roughness model identities and 2π equivalence.

use photonn_autodiff::penalty::roughness_value;
use photonn_autodiff::{DiffMetric, Neighborhood, RoughnessConfig};
use photonn_fft::{fft2, ifft2, Fft};
use photonn_math::{CGrid, Complex64, Grid, TWO_PI};
use photonn_optics::{transfer_function, Geometry, KernelOptions, Padding, Propagator};
use proptest::prelude::*;

fn grid_strategy(n: usize, lo: f64, hi: f64) -> impl Strategy<Value = Grid> {
    prop::collection::vec(lo..hi, n * n).prop_map(move |v| Grid::from_vec(n, n, v))
}

fn cgrid_strategy(n: usize) -> impl Strategy<Value = CGrid> {
    prop::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n * n).prop_map(move |v| {
        CGrid::from_vec(
            n,
            n,
            v.into_iter().map(|(re, im)| Complex64::new(re, im)).collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fft_roundtrip_any_length(len in 1usize..48, seed in 0u64..1000) {
        let mut rng = photonn_math::Rng::seed_from(seed);
        let data: Vec<Complex64> = (0..len)
            .map(|_| Complex64::new(rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)))
            .collect();
        let plan = Fft::new(len);
        let mut buf = data.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&data) {
            prop_assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn fft2_linearity(a in cgrid_strategy(8), b in cgrid_strategy(8)) {
        let fa = fft2(&a);
        let fb = fft2(&b);
        let mut sum = a.clone();
        for (s, x) in sum.as_mut_slice().iter_mut().zip(b.as_slice()) {
            *s += *x;
        }
        let fsum = fft2(&sum);
        let mut manual = fa.clone();
        for (m, x) in manual.as_mut_slice().iter_mut().zip(fb.as_slice()) {
            *m += *x;
        }
        prop_assert!(fsum.max_abs_diff(&manual) < 1e-9);
    }

    #[test]
    fn parseval_for_ifft2(field in cgrid_strategy(8)) {
        let back = ifft2(&fft2(&field));
        prop_assert!(back.max_abs_diff(&field) < 1e-9);
    }

    #[test]
    fn propagation_is_linear_and_energy_bounded(field in cgrid_strategy(16), z in 0.01f64..1.0) {
        let geom = Geometry::paper_scaled(16);
        let prop = Propagator::new(&geom, z, KernelOptions::default(), Padding::None);
        let out = prop.propagate(&field);
        prop_assert!(out.total_power() <= field.total_power() * (1.0 + 1e-9));
        // Linearity: P(2f) == 2·P(f).
        let mut doubled = field.clone();
        doubled.scale_inplace(2.0);
        let out2 = prop.propagate(&doubled);
        let mut expected = out.clone();
        expected.scale_inplace(2.0);
        prop_assert!(out2.max_abs_diff(&expected) < 1e-9);
    }

    #[test]
    fn transfer_function_semigroup(z1 in 0.005f64..0.3, z2 in 0.005f64..0.3) {
        let geom = Geometry::paper_scaled(12);
        let opts = KernelOptions { band_limit: false, ..KernelOptions::default() };
        let h1 = transfer_function(&geom, 12, z1, opts);
        let h2 = transfer_function(&geom, 12, z2, opts);
        let h12 = transfer_function(&geom, 12, z1 + z2, opts);
        // Tolerance note: the phase argument k·z is ~10⁷ rad·m⁻¹·z, so a
        // double carries only ~1e-9 absolute phase accuracy here — the
        // comparison can't be tighter than that.
        prop_assert!(h1.hadamard(&h2).max_abs_diff(&h12) < 1e-6);
    }

    #[test]
    fn roughness_nonnegative_and_translation_sensitive(mask in grid_strategy(8, 0.0, 6.25)) {
        for cfg in [
            RoughnessConfig { neighborhood: Neighborhood::Four, metric: DiffMetric::Abs },
            RoughnessConfig { neighborhood: Neighborhood::Eight, metric: DiffMetric::Abs },
            RoughnessConfig { neighborhood: Neighborhood::Eight, metric: DiffMetric::Squared },
        ] {
            let r = roughness_value(&mask, cfg);
            prop_assert!(r >= 0.0);
            // Adding a constant changes only the zero-padded boundary terms,
            // so interior-flat masks are not penalized extra.
            let shifted = mask.map(|v| v + 1.0);
            let r_shifted = roughness_value(&shifted, cfg);
            prop_assert!(r_shifted.is_finite());
        }
    }

    #[test]
    fn roughness_zero_iff_zero_mask_abs(mask in grid_strategy(6, 0.0, 5.0)) {
        let cfg = RoughnessConfig::paper();
        let r = roughness_value(&mask, cfg);
        let is_zero_mask = mask.as_slice().iter().all(|&v| v == 0.0);
        if is_zero_mask {
            prop_assert_eq!(r, 0.0);
        } else if mask.max() > 1e-9 {
            // With zero padding, any non-zero mask pays at the boundary.
            prop_assert!(r > 0.0);
        }
    }

    #[test]
    fn two_pi_shift_preserves_transmission(mask in grid_strategy(8, 0.0, 6.25), pattern in 0u64..256) {
        // Add 2π to an arbitrary pixel subset: transmission identical.
        let mut shifted = mask.clone();
        for (i, v) in shifted.as_mut_slice().iter_mut().enumerate() {
            if (pattern >> (i % 8)) & 1 == 1 {
                *v += TWO_PI;
            }
        }
        let ta = CGrid::from_phase(&mask);
        let tb = CGrid::from_phase(&shifted);
        prop_assert!(ta.max_abs_diff(&tb) < 1e-9);
    }

    #[test]
    fn bilinear_resize_bounds(src in grid_strategy(7, 0.0, 1.0), target in 8usize..64) {
        let up = photonn_math::interp::bilinear_resize(&src, target, target);
        prop_assert!(up.min() >= src.min() - 1e-12);
        prop_assert!(up.max() <= src.max() + 1e-12);
    }
}

#[test]
fn donn_gradcheck_through_whole_stack() {
    // One non-proptest but heavyweight check: the full model gradient on a
    // 8×8 system matches finite differences (ties together fft, optics,
    // autodiff and the model code).
    use photonn_autodiff::gradcheck::assert_grad_matches_real;
    use photonn_autodiff::Tape;
    use photonn_donn::{Donn, DonnConfig};
    use photonn_math::Rng;

    let mut config = DonnConfig::scaled(16);
    config.num_layers = 2;
    let mut rng = Rng::seed_from(3);
    let donn = Donn::random(config, &mut rng);
    let image = Grid::from_fn(16, 16, |r, c| ((r * c) % 4) as f64 / 3.0);

    let mut tape = Tape::new();
    let (loss, masks) = donn.build_sample_loss(&mut tape, &image, 3, None);
    let grads = tape.backward(loss);
    let g0 = grads.real(masks[0]).unwrap();

    assert_grad_matches_real(
        |m0| {
            let mut d = donn.clone();
            let mut new_masks = d.masks().to_vec();
            new_masks[0] = m0.clone();
            d.set_masks(new_masks);
            let mut t = Tape::new();
            let (l, _) = d.build_sample_loss(&mut t, &image, 3, None);
            t.scalar(l)
        },
        &donn.masks()[0],
        g0,
        1e-5,
        2e-4,
        "whole-stack gradient",
    );
}
