//! Property-style tests on cross-crate invariants: FFT algebra, propagation
//! physics, roughness model identities and 2π equivalence.
//!
//! Each property is checked over many deterministically seeded random
//! inputs (the workspace has no offline `proptest`, so generation uses the
//! in-tree xoshiro PRNG; failures reproduce exactly from the seed printed
//! in the assertion message).

use photonn_autodiff::penalty::roughness_value;
use photonn_autodiff::{DiffMetric, Neighborhood, RoughnessConfig};
use photonn_fft::{fft2, ifft2, Fft};
use photonn_math::{CGrid, Complex64, Grid, Rng, TWO_PI};
use photonn_optics::{transfer_function, Geometry, KernelOptions, Padding, Propagator};

const CASES: u64 = 24;

fn random_grid(rng: &mut Rng, n: usize, lo: f64, hi: f64) -> Grid {
    Grid::from_fn(n, n, |_, _| rng.uniform_in(lo, hi))
}

fn random_cgrid(rng: &mut Rng, n: usize) -> CGrid {
    CGrid::from_fn(n, n, |_, _| {
        Complex64::new(rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0))
    })
}

#[test]
fn fft_roundtrip_any_length() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let len = 1 + (rng.uniform_in(0.0, 47.0) as usize);
        let data: Vec<Complex64> = (0..len)
            .map(|_| Complex64::new(rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)))
            .collect();
        let plan = Fft::new(len);
        let mut buf = data.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&data) {
            assert!((*a - *b).norm() < 1e-9, "seed {seed}, len {len}");
        }
    }
}

#[test]
fn fft2_linearity() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let a = random_cgrid(&mut rng, 8);
        let b = random_cgrid(&mut rng, 8);
        let fa = fft2(&a);
        let fb = fft2(&b);
        let mut sum = a.clone();
        for (s, x) in sum.as_mut_slice().iter_mut().zip(b.as_slice()) {
            *s += *x;
        }
        let fsum = fft2(&sum);
        let mut manual = fa.clone();
        for (m, x) in manual.as_mut_slice().iter_mut().zip(fb.as_slice()) {
            *m += *x;
        }
        assert!(fsum.max_abs_diff(&manual) < 1e-9, "seed {seed}");
    }
}

#[test]
fn parseval_for_ifft2() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let field = random_cgrid(&mut rng, 8);
        let back = ifft2(&fft2(&field));
        assert!(back.max_abs_diff(&field) < 1e-9, "seed {seed}");
    }
}

#[test]
fn propagation_is_linear_and_energy_bounded() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let field = random_cgrid(&mut rng, 16);
        let z = rng.uniform_in(0.01, 1.0);
        let geom = Geometry::paper_scaled(16);
        let prop = Propagator::new(&geom, z, KernelOptions::default(), Padding::None);
        let out = prop.propagate(&field);
        assert!(
            out.total_power() <= field.total_power() * (1.0 + 1e-9),
            "seed {seed}"
        );
        // Linearity: P(2f) == 2·P(f).
        let mut doubled = field.clone();
        doubled.scale_inplace(2.0);
        let out2 = prop.propagate(&doubled);
        let mut expected = out.clone();
        expected.scale_inplace(2.0);
        assert!(out2.max_abs_diff(&expected) < 1e-9, "seed {seed}");
    }
}

#[test]
fn transfer_function_semigroup() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let z1 = rng.uniform_in(0.005, 0.3);
        let z2 = rng.uniform_in(0.005, 0.3);
        let geom = Geometry::paper_scaled(12);
        let opts = KernelOptions {
            band_limit: false,
            ..KernelOptions::default()
        };
        let h1 = transfer_function(&geom, 12, z1, opts);
        let h2 = transfer_function(&geom, 12, z2, opts);
        let h12 = transfer_function(&geom, 12, z1 + z2, opts);
        // Tolerance note: the phase argument k·z is ~10⁷ rad·m⁻¹·z, so a
        // double carries only ~1e-9 absolute phase accuracy here — the
        // comparison can't be tighter than that.
        assert!(h1.hadamard(&h2).max_abs_diff(&h12) < 1e-6, "seed {seed}");
    }
}

#[test]
fn roughness_nonnegative_and_translation_sensitive() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let mask = random_grid(&mut rng, 8, 0.0, 6.25);
        for cfg in [
            RoughnessConfig {
                neighborhood: Neighborhood::Four,
                metric: DiffMetric::Abs,
            },
            RoughnessConfig {
                neighborhood: Neighborhood::Eight,
                metric: DiffMetric::Abs,
            },
            RoughnessConfig {
                neighborhood: Neighborhood::Eight,
                metric: DiffMetric::Squared,
            },
        ] {
            let r = roughness_value(&mask, cfg);
            assert!(r >= 0.0, "seed {seed}");
            // Adding a constant changes only the zero-padded boundary terms,
            // so interior-flat masks are not penalized extra.
            let shifted = mask.map(|v| v + 1.0);
            let r_shifted = roughness_value(&shifted, cfg);
            assert!(r_shifted.is_finite(), "seed {seed}");
        }
    }
}

#[test]
fn roughness_zero_iff_zero_mask_abs() {
    let cfg = RoughnessConfig::paper();
    // The all-zero mask has zero roughness...
    assert_eq!(roughness_value(&Grid::zeros(6, 6), cfg), 0.0);
    // ...and any random non-zero mask pays at least at the boundary.
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let mask = random_grid(&mut rng, 6, 0.0, 5.0);
        if mask.max() > 1e-9 {
            assert!(roughness_value(&mask, cfg) > 0.0, "seed {seed}");
        }
    }
}

#[test]
fn two_pi_shift_preserves_transmission() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let mask = random_grid(&mut rng, 8, 0.0, 6.25);
        let pattern = rng.uniform_in(0.0, 256.0) as u64;
        // Add 2π to an arbitrary pixel subset: transmission identical.
        let mut shifted = mask.clone();
        for (i, v) in shifted.as_mut_slice().iter_mut().enumerate() {
            if (pattern >> (i % 8)) & 1 == 1 {
                *v += TWO_PI;
            }
        }
        let ta = CGrid::from_phase(&mask);
        let tb = CGrid::from_phase(&shifted);
        assert!(ta.max_abs_diff(&tb) < 1e-9, "seed {seed}");
    }
}

#[test]
fn bilinear_resize_bounds() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let src = random_grid(&mut rng, 7, 0.0, 1.0);
        let target = 8 + (rng.uniform_in(0.0, 56.0) as usize);
        let up = photonn_math::interp::bilinear_resize(&src, target, target);
        assert!(up.min() >= src.min() - 1e-12, "seed {seed}");
        assert!(up.max() <= src.max() + 1e-12, "seed {seed}");
    }
}

#[test]
fn donn_gradcheck_through_whole_stack() {
    // One heavyweight check: the full model gradient on a 16×16 system
    // matches finite differences (ties together fft, optics, autodiff and
    // the model code).
    use photonn_autodiff::gradcheck::assert_grad_matches_real;
    use photonn_autodiff::Tape;
    use photonn_donn::{Donn, DonnConfig};

    let mut config = DonnConfig::scaled(16);
    config.num_layers = 2;
    let mut rng = Rng::seed_from(3);
    let donn = Donn::random(config, &mut rng);
    let image = Grid::from_fn(16, 16, |r, c| ((r * c) % 4) as f64 / 3.0);

    let mut tape = Tape::new();
    let (loss, masks) = donn.build_sample_loss(&mut tape, &image, 3, None);
    let grads = tape.backward(loss);
    let g0 = grads.real(masks[0]).unwrap();

    assert_grad_matches_real(
        |m0| {
            let mut d = donn.clone();
            let mut new_masks = d.masks().to_vec();
            new_masks[0] = m0.clone();
            d.set_masks(new_masks);
            let mut t = Tape::new();
            let (l, _) = d.build_sample_loss(&mut t, &image, 3, None);
            t.scalar(l)
        },
        &donn.masks()[0],
        g0,
        1e-5,
        2e-4,
        "whole-stack gradient",
    );
}
