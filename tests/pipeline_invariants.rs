//! Invariants of the physics-aware optimization pipeline that must hold
//! for *any* configuration — checked on a grid of small setups.

use photonn_datasets::Family;
use photonn_donn::pipeline::{run_variant_on, ExperimentConfig, Variant};
use photonn_donn::slr::SlrConfig;
use photonn_donn::sparsify::{sparsify, SparsifyMethod};
use photonn_donn::two_pi::TwoPiStrategy;
use photonn_math::block::BlockPartition;
use photonn_math::{Grid, Rng};

fn tiny_cfg(family: Family, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        train_samples: 100,
        test_samples: 40,
        baseline_epochs: 2,
        seed,
        slr: SlrConfig {
            sparsity: 0.2,
            block: 8,
            outer_iterations: 2,
            probe_samples: 12,
            ..SlrConfig::default()
        },
        two_pi: TwoPiStrategy::Greedy { sweeps: 3 },
        ..ExperimentConfig::scaled(family)
    }
}

#[test]
fn two_pi_is_monotone_for_every_variant() {
    let cfg = tiny_cfg(Family::Mnist, 21);
    let (train_set, test_set) = cfg.datasets();
    for variant in Variant::all() {
        let r = run_variant_on(&cfg, variant, &train_set, &test_set);
        assert!(
            r.r_after <= r.r_before + 1e-9,
            "{}: 2π increased roughness {} -> {}",
            variant.label(),
            r.r_before,
            r.r_after
        );
        assert!((0.0..=1.0).contains(&r.accuracy));
        assert!(r.r_before.is_finite() && r.r_after.is_finite());
    }
}

#[test]
fn sparsified_variants_hit_block_structure() {
    let cfg = tiny_cfg(Family::Fmnist, 22);
    let (train_set, test_set) = cfg.datasets();
    for variant in [Variant::OursB, Variant::OursC, Variant::OursD] {
        let r = run_variant_on(&cfg, variant, &train_set, &test_set);
        assert!(r.sparsity > 0.05, "{}: no sparsity", variant.label());
        // Zeroed pixels form whole blocks.
        let p = BlockPartition::square(cfg.grid, cfg.grid, cfg.slr.block);
        for mask in &r.masks {
            for block in p.blocks() {
                let vals = p.block_values(mask, block);
                let zeros = vals.iter().filter(|&&v| v == 0.0).count();
                assert!(
                    zeros == 0 || zeros == vals.len(),
                    "{}: partially zeroed block ({zeros}/{})",
                    variant.label(),
                    vals.len()
                );
            }
        }
    }
}

#[test]
fn runs_are_reproducible_per_seed() {
    let cfg = tiny_cfg(Family::Kmnist, 23);
    let a = photonn_donn::pipeline::run_variant(&cfg, Variant::OursA);
    let b = photonn_donn::pipeline::run_variant(&cfg, Variant::OursA);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.r_before, b.r_before);
    assert_eq!(a.r_after, b.r_after);
    for (ma, mb) in a.masks.iter().zip(&b.masks) {
        assert_eq!(ma, mb);
    }
}

#[test]
fn different_seeds_give_different_models() {
    let a = photonn_donn::pipeline::run_variant(&tiny_cfg(Family::Mnist, 31), Variant::Baseline);
    let b = photonn_donn::pipeline::run_variant(&tiny_cfg(Family::Mnist, 32), Variant::Baseline);
    assert!(a.masks[0].max_abs_diff(&b.masks[0]) > 1e-6);
}

#[test]
fn sparsify_methods_agree_on_ratio_for_random_masks() {
    // Property-style check over random masks: all three methods hit the
    // requested ratio within block-granularity rounding, and pruned
    // entries are exactly zero.
    let mut rng = Rng::seed_from(77);
    for trial in 0..10 {
        let n = 24;
        let mask = Grid::from_fn(n, n, |_, _| rng.uniform_in(-3.0, 3.0));
        for (method, tol) in [
            (SparsifyMethod::Block { size: 4 }, 0.03),
            (SparsifyMethod::NonStructured, 0.02),
            (SparsifyMethod::BankBalanced { banks: 4 }, 0.1),
        ] {
            let ratio = 0.1 + 0.05 * (trial % 5) as f64;
            let s = sparsify(&mask, ratio, method);
            assert!(
                (s.sparsity() - ratio).abs() <= tol + 1.0 / (n as f64),
                "{method:?} ratio {ratio}: got {}",
                s.sparsity()
            );
            for (v, k) in s.mask.as_slice().iter().zip(s.keep.as_slice()) {
                assert!(*k == 1.0 || *v == 0.0);
            }
        }
    }
}

#[test]
fn block_sparsification_has_lowest_roughness_on_random_masks() {
    // The Fig. 3 claim, generalized: across random masks, block
    // sparsification produces (weakly) the lowest roughness of the three
    // methods at equal ratio.
    use photonn_donn::roughness::{roughness, RoughnessConfig};
    let cfg = RoughnessConfig::paper();
    let mut rng = Rng::seed_from(99);
    let mut block_wins = 0;
    let trials = 12;
    for _ in 0..trials {
        let mask = Grid::from_fn(24, 24, |_, _| rng.uniform_in(0.0, 6.0));
        let rb = roughness(
            &sparsify(&mask, 0.25, SparsifyMethod::Block { size: 4 }).mask,
            cfg,
        );
        let rn = roughness(
            &sparsify(&mask, 0.25, SparsifyMethod::NonStructured).mask,
            cfg,
        );
        let rbb = roughness(
            &sparsify(&mask, 0.25, SparsifyMethod::BankBalanced { banks: 4 }).mask,
            cfg,
        );
        if rb <= rn && rb <= rbb {
            block_wins += 1;
        }
    }
    assert!(
        block_wins >= trials * 3 / 4,
        "block sparsification lowest in only {block_wins}/{trials} trials"
    );
}
