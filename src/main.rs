//! The `photonn` command-line facade.
//!
//! Subcommands:
//!
//! ```sh
//! photonn serve [--addr 127.0.0.1:7878] [--grid 32] [--epochs 0]
//!               [--max-batch 16] [--max-wait-us 2000] [--queue-cap 256]
//!               [--threads N] [--cache-mb 64] [--levels 8] [--crosstalk 0.1]
//!               [--noise-sigma 0.05] [--shards N] [--target-p99-us 0]
//!               [--retry-after-ms 50] [--max-connections 8192]
//! photonn train [--grid 32] [--samples 600] [--epochs 3] [--batch 25]
//!               [--lr 0.05] [--seed 7] [--workers N] [--threads T]
//!               [--peers host:port,host:port,...] [--hostfile PATH]
//!               [--min-workers N] [--trace out.json]
//! photonn dist-worker [--addr 127.0.0.1:0] [--threads T] [--keep-alive]
//! photonn bench-report [--dir .] [--trace FILE [--require a,b,c]]
//! ```
//!
//! `serve` trains (optionally) a DONN on synthetic digits, registers the
//! ideal model plus its quantized, crosstalk-deployed, and
//! phase-noise-injected variants, and serves them over HTTP until the
//! process is killed (see `examples/serve_digits.rs`): `/v1/logits` is
//! the original single-sample wire format, `/v2/logits` accepts batched
//! inputs with per-request model and readout-head selection, and
//! `--shards`/`--target-p99-us` size the work-stealing dispatcher and
//! its latency-pressure admission control. `train` runs the sharded data-parallel
//! trainer — in-process worker threads by default, or rank-0-plus-peers
//! over loopback TCP when `--peers` lists `dist-worker` processes (see
//! `examples/dist_digits.rs`); `--trace out.json` turns on `photonn-trace`
//! and writes a Chrome trace-event file loadable in Perfetto or
//! `chrome://tracing`, plus the aggregate span table on stdout (setting
//! `PHOTONN_TRACE=on` prints the table without writing a file).
//! `bench-report` renders the committed `BENCH_*.json` trackers as
//! markdown for a CI job summary; `--trace FILE` instead renders a trace
//! file's aggregate span table, and `--require` fails the process when a
//! comma-listed span name is absent (the CI trace-smoke gate).

use photonn::datasets::{Dataset, Family};
use photonn::dist::{serve_peer_forever, serve_peer_once, train_with_sharded, DistConfig};
use photonn::donn::train::{train, TrainOptions};
use photonn::donn::{deploy::FabricationModel, Donn, DonnConfig};
use photonn::math::Rng;
use photonn::serve::{BatchPolicy, ModelRegistry, ServeConfig, ServerBuilder};

struct ServeOptions {
    addr: String,
    grid: usize,
    epochs: usize,
    max_batch: usize,
    max_wait_us: u64,
    queue_cap: usize,
    threads: usize,
    cache_mb: usize,
    levels: usize,
    crosstalk: f64,
    noise_sigma: f64,
    shards: usize,
    target_p99_us: u64,
    retry_after_ms: u64,
    max_connections: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let policy = BatchPolicy::default();
        let serve = ServeConfig::default();
        ServeOptions {
            addr: "127.0.0.1:7878".to_string(),
            grid: 32,
            epochs: 0,
            max_batch: policy.max_batch,
            max_wait_us: policy.max_wait_us,
            queue_cap: policy.queue_capacity,
            threads: policy.threads,
            cache_mb: 64,
            levels: 8,
            crosstalk: 0.1,
            noise_sigma: 0.05,
            shards: serve.shards,
            target_p99_us: serve.target_p99_us,
            retry_after_ms: serve.retry_after_ms,
            max_connections: serve.max_connections,
        }
    }
}

/// A server misconfigured by a silently ignored typo is worse than no
/// server: unknown flags, missing values and unparseable values all abort
/// with a usage error instead of falling back to defaults.
fn usage_error(message: String) -> ! {
    eprintln!("photonn serve: {message}");
    eprintln!("usage: photonn serve [--addr A] [--grid N] [--epochs E] [--max-batch B]");
    eprintln!("                     [--max-wait-us U] [--queue-cap Q] [--threads T]");
    eprintln!("                     [--cache-mb M] [--levels L] [--crosstalk K]");
    eprintln!("                     [--noise-sigma S] [--shards N] [--target-p99-us P]");
    eprintln!("                     [--retry-after-ms R] [--max-connections C]");
    std::process::exit(2);
}

/// Parses a flag value, aborting through the *calling subcommand's* usage
/// function on a missing or unparseable value — each subcommand keeps its
/// own flag list in the error output.
fn parsed_or<T: std::str::FromStr>(flag: &str, value: Option<String>, usage: fn(String) -> !) -> T {
    let value = value.unwrap_or_else(|| usage(format!("{flag} requires a value")));
    if value.starts_with("--") {
        usage(format!("{flag} requires a value, found flag '{value}'"));
    }
    value
        .parse()
        .unwrap_or_else(|_| usage(format!("cannot parse {flag} value '{value}'")))
}

fn parsed<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    parsed_or(flag, value, usage_error)
}

fn parse_serve_options(args: &[String]) -> ServeOptions {
    let mut opts = ServeOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).cloned();
        match flag {
            "--addr" => {
                opts.addr = value.unwrap_or_else(|| usage_error("--addr requires a value".into()));
            }
            "--grid" => opts.grid = parsed(flag, value),
            "--epochs" => opts.epochs = parsed(flag, value),
            "--max-batch" => opts.max_batch = parsed(flag, value),
            "--max-wait-us" => opts.max_wait_us = parsed(flag, value),
            "--queue-cap" => opts.queue_cap = parsed(flag, value),
            "--threads" => opts.threads = parsed(flag, value),
            "--cache-mb" => opts.cache_mb = parsed(flag, value),
            "--levels" => opts.levels = parsed(flag, value),
            "--crosstalk" => opts.crosstalk = parsed(flag, value),
            "--noise-sigma" => opts.noise_sigma = parsed(flag, value),
            "--shards" => opts.shards = parsed(flag, value),
            "--target-p99-us" => opts.target_p99_us = parsed(flag, value),
            "--retry-after-ms" => opts.retry_after_ms = parsed(flag, value),
            "--max-connections" => opts.max_connections = parsed(flag, value),
            other => usage_error(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    opts
}

fn serve(args: &[String]) {
    let opts = parse_serve_options(args);
    let mut rng = Rng::seed_from(7);
    let mut donn = Donn::random(DonnConfig::scaled(opts.grid), &mut rng);
    if opts.epochs > 0 {
        println!("training {} epoch(s) on synthetic digits...", opts.epochs);
        let data = Dataset::synthetic(Family::Mnist, 600, 7).resized(opts.grid);
        let train_opts = TrainOptions {
            epochs: opts.epochs,
            batch_size: 25,
            ..TrainOptions::default()
        };
        train(&mut donn, &data, &train_opts);
        println!(
            "train accuracy: {:.1}%",
            donn.accuracy(&data, opts.threads) * 100.0
        );
    }

    let mut registry = ModelRegistry::new();
    registry.register("ideal", donn.clone());
    registry.register_quantized(format!("quantized{}", opts.levels), &donn, opts.levels);
    registry.register_deployed("deployed", &donn, FabricationModel::new(opts.crosstalk));
    registry.register_noise_injected("noisy", &donn, opts.noise_sigma, 7);

    let server = ServerBuilder::new(registry)
        .policy(BatchPolicy {
            max_batch: opts.max_batch,
            max_wait_us: opts.max_wait_us,
            queue_capacity: opts.queue_cap,
            threads: opts.threads,
        })
        .cache_budget_bytes(opts.cache_mb << 20)
        .shards(opts.shards)
        .target_p99_us(opts.target_p99_us)
        .retry_after_ms(opts.retry_after_ms)
        .max_connections(opts.max_connections)
        .bind(opts.addr.as_str())
        .unwrap_or_else(|e| {
            eprintln!("cannot bind {}: {e}", opts.addr);
            std::process::exit(1);
        });
    println!("photonn-serve listening on http://{}", server.addr());
    println!("  GET  /healthz");
    println!("  GET  /models");
    println!("  GET  /metrics");
    println!(
        "  POST /v1/logits   {{\"model\": \"ideal\", \"image\": [<{0}x{0} values>]}}",
        opts.grid
    );
    println!("  GET  /v2/models");
    println!(
        "  POST /v2/logits   {{\"model\": \"ideal\", \"head\": \"sum\", \"inputs\": [<images>]}}"
    );
    println!(
        "policy: max_batch {} | max_wait {} us | queue {} | {} threads | cache {} MiB",
        opts.max_batch, opts.max_wait_us, opts.queue_cap, opts.threads, opts.cache_mb
    );
    println!(
        "frontend: {} shard(s) | target p99 {} us | retry-after {} ms | max {} conns",
        opts.shards, opts.target_p99_us, opts.retry_after_ms, opts.max_connections
    );
    // Serve until the process is killed; the handle's Drop shuts down.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

// ------------------------------------------------------------------ train

struct TrainCliOptions {
    grid: usize,
    samples: usize,
    epochs: usize,
    batch: usize,
    lr: f64,
    seed: u64,
    workers: usize,
    threads: usize,
    peers: Vec<String>,
    hostfile: Option<String>,
    min_workers: usize,
    trace: Option<String>,
}

impl Default for TrainCliOptions {
    fn default() -> Self {
        TrainCliOptions {
            grid: 32,
            samples: 600,
            epochs: 3,
            batch: 25,
            lr: 0.05,
            seed: 7,
            workers: 1,
            threads: 1,
            peers: Vec::new(),
            hostfile: None,
            min_workers: 1,
            trace: None,
        }
    }
}

fn train_usage_error(message: String) -> ! {
    eprintln!("photonn train: {message}");
    eprintln!("usage: photonn train [--grid N] [--samples S] [--epochs E] [--batch B]");
    eprintln!("                     [--lr LR] [--seed S] [--workers N] [--threads T]");
    eprintln!("                     [--peers host:port,host:port,...] [--hostfile PATH]");
    eprintln!("                     [--min-workers N] [--trace out.json]");
    std::process::exit(2);
}

fn parse_train_options(args: &[String]) -> TrainCliOptions {
    let mut opts = TrainCliOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).cloned();
        match flag {
            "--grid" => opts.grid = parsed_or(flag, value, train_usage_error),
            "--samples" => opts.samples = parsed_or(flag, value, train_usage_error),
            "--epochs" => opts.epochs = parsed_or(flag, value, train_usage_error),
            "--batch" => opts.batch = parsed_or(flag, value, train_usage_error),
            "--lr" => opts.lr = parsed_or(flag, value, train_usage_error),
            "--seed" => opts.seed = parsed_or(flag, value, train_usage_error),
            "--workers" => opts.workers = parsed_or(flag, value, train_usage_error),
            "--threads" => opts.threads = parsed_or(flag, value, train_usage_error),
            "--trace" => {
                opts.trace = Some(
                    value.unwrap_or_else(|| train_usage_error("--trace requires a value".into())),
                );
            }
            "--peers" => {
                let list: String =
                    value.unwrap_or_else(|| train_usage_error("--peers requires a value".into()));
                opts.peers = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--hostfile" => {
                opts.hostfile =
                    Some(value.unwrap_or_else(|| {
                        train_usage_error("--hostfile requires a value".into())
                    }));
            }
            "--min-workers" => opts.min_workers = parsed_or(flag, value, train_usage_error),
            other => train_usage_error(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    opts
}

fn train_cmd(args: &[String]) {
    let opts = parse_train_options(args);
    // --trace forces tracing on; bare PHOTONN_TRACE=on still prints the
    // aggregate table at the end without writing a file.
    if opts.trace.is_some() {
        photonn::trace::set_enabled(true);
    }
    let tracing = photonn::trace::enabled();
    // --hostfile and --peers both name the peer topology; giving both
    // would leave shard order ambiguous, so refuse.
    if opts.hostfile.is_some() && !opts.peers.is_empty() {
        train_usage_error("--hostfile and --peers are mutually exclusive".into());
    }
    let peers = match &opts.hostfile {
        Some(path) => photonn::dist::load_hostfile(path).unwrap_or_else(|e| {
            eprintln!("photonn train: {e}");
            std::process::exit(1);
        }),
        None => opts.peers.clone(),
    };
    // In peer mode the shard count is fixed by the topology: rank 0 plus
    // one shard per peer.
    let workers = if peers.is_empty() {
        opts.workers
    } else {
        peers.len() + 1
    };
    if opts.min_workers > workers {
        train_usage_error(format!(
            "--min-workers {} exceeds the starting worker count {workers}",
            opts.min_workers
        ));
    }
    let dist = DistConfig {
        workers,
        threads_per_worker: opts.threads,
        peers,
        min_workers: opts.min_workers,
        ..DistConfig::default()
    };
    println!(
        "training on synthetic digits: grid {} | {} samples | {} epochs | batch {} | {} worker(s){}",
        opts.grid,
        opts.samples,
        opts.epochs,
        opts.batch,
        dist.workers,
        if dist.peers.is_empty() {
            " (in-process)".to_string()
        } else {
            format!(" (rank 0 + peers {})", dist.peers.join(", "))
        }
    );
    let data = Dataset::synthetic(Family::Mnist, opts.samples, opts.seed).resized(opts.grid);
    let mut rng = Rng::seed_from(opts.seed);
    let mut donn = Donn::random(DonnConfig::scaled(opts.grid), &mut rng);
    let train_opts = TrainOptions {
        epochs: opts.epochs,
        batch_size: opts.batch,
        learning_rate: opts.lr,
        seed: opts.seed,
        ..TrainOptions::default()
    };
    let start = std::time::Instant::now();
    let mut hook = |s: &photonn::donn::train::EpochStats| {
        println!(
            "epoch {}: mean loss {:.6} | grad norm {:.4} | {:.2} steps/sec | {:.1}% phase saturation",
            s.epoch,
            s.mean_loss,
            s.grad_norm,
            s.steps_per_sec,
            s.phase_saturation * 100.0
        );
    };
    if let Err(e) = train_with_sharded(
        &mut donn,
        &data,
        &train_opts,
        None,
        None,
        &dist,
        Some(&mut hook),
    ) {
        eprintln!("photonn train: {e}");
        std::process::exit(1);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let steps = opts.epochs * opts.samples.div_ceil(opts.batch);
    println!(
        "trained {steps} steps in {elapsed:.1}s ({:.2} steps/sec) | train accuracy {:.1}%",
        steps as f64 / elapsed,
        donn.accuracy(&data, opts.threads) * 100.0
    );
    if tracing {
        let trace = photonn::trace::collect();
        if let Some(path) = &opts.trace {
            if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
                eprintln!("photonn train: cannot write trace {path}: {e}");
                std::process::exit(1);
            }
            println!(
                "trace: {} span events -> {path} (load in Perfetto or chrome://tracing)",
                trace.events.len()
            );
        }
        println!("\n{}", trace.render_table());
    }
}

// ------------------------------------------------------------ dist-worker

fn dist_worker_usage_error(message: String) -> ! {
    eprintln!("photonn dist-worker: {message}");
    eprintln!("usage: photonn dist-worker [--addr A] [--threads T] [--keep-alive]");
    std::process::exit(2);
}

fn dist_worker_cmd(args: &[String]) {
    let mut addr = "127.0.0.1:0".to_string();
    let mut threads = 1usize;
    let mut keep_alive = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--addr" => {
                addr = args
                    .get(i + 1)
                    .cloned()
                    .unwrap_or_else(|| dist_worker_usage_error("--addr requires a value".into()));
                i += 2;
            }
            "--threads" => {
                threads = parsed_or(flag, args.get(i + 1).cloned(), dist_worker_usage_error);
                i += 2;
            }
            "--keep-alive" => {
                keep_alive = true;
                i += 1;
            }
            other => dist_worker_usage_error(format!("unknown flag '{other}'")),
        }
    }
    let listener = std::net::TcpListener::bind(addr.as_str()).unwrap_or_else(|e| {
        eprintln!("photonn dist-worker: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    // Machine-parseable: coordinators read this line to learn the actual
    // port when launched with :0 (see examples/dist_digits.rs).
    println!("PEER_ADDR={}", listener.local_addr().expect("bound socket"));
    let result = if keep_alive {
        serve_peer_forever(&listener, threads)
    } else {
        serve_peer_once(&listener, threads)
    };
    if let Err(e) = result {
        eprintln!("photonn dist-worker: {e}");
        std::process::exit(1);
    }
}

// ------------------------------------------------------------ bench-report

fn bench_report_usage_error(message: String) -> ! {
    eprintln!("photonn bench-report: {message}");
    eprintln!("usage: photonn bench-report [--dir PATH] [--trace FILE [--require a,b,c]]");
    std::process::exit(2);
}

fn bench_report_cmd(args: &[String]) {
    let mut dir = ".".to_string();
    let mut trace: Option<String> = None;
    let mut require: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = || {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                bench_report_usage_error(format!("{} requires a value", args[i]))
            })
        };
        match args[i].as_str() {
            "--dir" => dir = value(),
            "--trace" => trace = Some(value()),
            "--require" => {
                require = value()
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            other => bench_report_usage_error(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    if !require.is_empty() && trace.is_none() {
        bench_report_usage_error("--require needs --trace".into());
    }
    // --trace renders (and optionally validates) one trace file instead of
    // the committed benchmark trackers.
    if let Some(path) = trace {
        let path = std::path::Path::new(&path);
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("photonn bench-report: cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        let doc = photonn::wire::Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("photonn bench-report: {}: {e}", path.display());
            std::process::exit(1);
        });
        let markdown = photonn::bench::report::render_trace_doc(&doc).unwrap_or_else(|e| {
            eprintln!("photonn bench-report: {}: {e}", path.display());
            std::process::exit(1);
        });
        print!("{markdown}");
        if !require.is_empty() {
            let names = photonn::bench::report::trace_span_names(&doc).expect("rendered above");
            let missing: Vec<&String> = require.iter().filter(|r| !names.contains(r)).collect();
            if !missing.is_empty() {
                eprintln!(
                    "photonn bench-report: trace {} is missing required span(s): {}",
                    path.display(),
                    missing
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(1);
            }
            println!("\nall {} required spans present", require.len());
        }
        return;
    }
    match photonn::bench::report::render_dir(std::path::Path::new(&dir)) {
        Ok(markdown) => print!("{markdown}"),
        Err(e) => {
            eprintln!("photonn bench-report: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => serve(&args[2..]),
        Some("train") => train_cmd(&args[2..]),
        Some("dist-worker") => dist_worker_cmd(&args[2..]),
        Some("bench-report") => bench_report_cmd(&args[2..]),
        _ => {
            eprintln!("usage: photonn <serve|train|dist-worker|bench-report> [options]");
            eprintln!("       (see src/main.rs header for per-subcommand flags)");
            std::process::exit(2);
        }
    }
}
