//! The `photonn` command-line facade.
//!
//! Currently one subcommand:
//!
//! ```sh
//! photonn serve [--addr 127.0.0.1:7878] [--grid 32] [--epochs 0]
//!               [--max-batch 16] [--max-wait-us 2000] [--queue-cap 256]
//!               [--threads N] [--cache-mb 64] [--levels 8] [--crosstalk 0.1]
//! ```
//!
//! Trains (optionally) a DONN on synthetic digits, registers the ideal
//! model plus its quantized and crosstalk-deployed variants, and serves
//! them over HTTP until the process is killed. See `examples/serve_digits.rs`
//! for a scripted train → register → serve → query round trip.

use photonn::datasets::{Dataset, Family};
use photonn::donn::train::{train, TrainOptions};
use photonn::donn::{deploy::FabricationModel, Donn, DonnConfig};
use photonn::math::Rng;
use photonn::serve::{BatchPolicy, ModelRegistry, Server, ServerConfig};

struct ServeOptions {
    addr: String,
    grid: usize,
    epochs: usize,
    max_batch: usize,
    max_wait_us: u64,
    queue_cap: usize,
    threads: usize,
    cache_mb: usize,
    levels: usize,
    crosstalk: f64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let policy = BatchPolicy::default();
        ServeOptions {
            addr: "127.0.0.1:7878".to_string(),
            grid: 32,
            epochs: 0,
            max_batch: policy.max_batch,
            max_wait_us: policy.max_wait_us,
            queue_cap: policy.queue_capacity,
            threads: policy.threads,
            cache_mb: 64,
            levels: 8,
            crosstalk: 0.1,
        }
    }
}

/// A server misconfigured by a silently ignored typo is worse than no
/// server: unknown flags, missing values and unparseable values all abort
/// with a usage error instead of falling back to defaults.
fn usage_error(message: String) -> ! {
    eprintln!("photonn serve: {message}");
    eprintln!("usage: photonn serve [--addr A] [--grid N] [--epochs E] [--max-batch B]");
    eprintln!("                     [--max-wait-us U] [--queue-cap Q] [--threads T]");
    eprintln!("                     [--cache-mb M] [--levels L] [--crosstalk K]");
    std::process::exit(2);
}

fn parsed<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let value = value.unwrap_or_else(|| usage_error(format!("{flag} requires a value")));
    if value.starts_with("--") {
        usage_error(format!("{flag} requires a value, found flag '{value}'"));
    }
    value
        .parse()
        .unwrap_or_else(|_| usage_error(format!("cannot parse {flag} value '{value}'")))
}

fn parse_serve_options(args: &[String]) -> ServeOptions {
    let mut opts = ServeOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).cloned();
        match flag {
            "--addr" => {
                opts.addr = value.unwrap_or_else(|| usage_error("--addr requires a value".into()));
            }
            "--grid" => opts.grid = parsed(flag, value),
            "--epochs" => opts.epochs = parsed(flag, value),
            "--max-batch" => opts.max_batch = parsed(flag, value),
            "--max-wait-us" => opts.max_wait_us = parsed(flag, value),
            "--queue-cap" => opts.queue_cap = parsed(flag, value),
            "--threads" => opts.threads = parsed(flag, value),
            "--cache-mb" => opts.cache_mb = parsed(flag, value),
            "--levels" => opts.levels = parsed(flag, value),
            "--crosstalk" => opts.crosstalk = parsed(flag, value),
            other => usage_error(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    opts
}

fn serve(args: &[String]) {
    let opts = parse_serve_options(args);
    let mut rng = Rng::seed_from(7);
    let mut donn = Donn::random(DonnConfig::scaled(opts.grid), &mut rng);
    if opts.epochs > 0 {
        println!("training {} epoch(s) on synthetic digits...", opts.epochs);
        let data = Dataset::synthetic(Family::Mnist, 600, 7).resized(opts.grid);
        let train_opts = TrainOptions {
            epochs: opts.epochs,
            batch_size: 25,
            ..TrainOptions::default()
        };
        train(&mut donn, &data, &train_opts);
        println!(
            "train accuracy: {:.1}%",
            donn.accuracy(&data, opts.threads) * 100.0
        );
    }

    let mut registry = ModelRegistry::new();
    registry.register("ideal", donn.clone());
    registry.register_quantized(format!("quantized{}", opts.levels), &donn, opts.levels);
    registry.register_deployed("deployed", &donn, FabricationModel::new(opts.crosstalk));

    let config = ServerConfig {
        policy: BatchPolicy {
            max_batch: opts.max_batch,
            max_wait_us: opts.max_wait_us,
            queue_capacity: opts.queue_cap,
            threads: opts.threads,
        },
        cache_budget_bytes: opts.cache_mb << 20,
    };
    let server = Server::bind(opts.addr.as_str(), registry, config).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", opts.addr);
        std::process::exit(1);
    });
    println!("photonn-serve listening on http://{}", server.addr());
    println!("  GET  /healthz");
    println!("  GET  /models");
    println!("  GET  /metrics");
    println!(
        "  POST /v1/logits   {{\"model\": \"ideal\", \"image\": [<{0}x{0} values>]}}",
        opts.grid
    );
    println!(
        "policy: max_batch {} | max_wait {} us | queue {} | {} threads | cache {} MiB",
        opts.max_batch, opts.max_wait_us, opts.queue_cap, opts.threads, opts.cache_mb
    );
    // Serve until the process is killed; the handle's Drop shuts down.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => serve(&args[2..]),
        _ => {
            eprintln!("usage: photonn serve [options]   (see src/main.rs header)");
            std::process::exit(2);
        }
    }
}
