//! # photonn
//!
//! Facade crate for the `photonn` workspace — the from-scratch Rust
//! reproduction of *Physics-aware Roughness Optimization for Diffractive
//! Optical Neural Networks* (DAC 2023). It re-exports every workspace
//! crate under one name so downstream users (and this repository's
//! `examples/` and `tests/`) can depend on a single package.
//!
//! See [`photonn_donn`] for the model/trainer entry points and
//! `ARCHITECTURE.md` at the repository root for how the batched
//! propagation engine flows through the crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use photonn_autodiff as autodiff;
pub use photonn_bench as bench;
pub use photonn_datasets as datasets;
pub use photonn_dist as dist;
pub use photonn_donn as donn;
pub use photonn_fft as fft;
pub use photonn_math as math;
pub use photonn_optics as optics;
pub use photonn_serve as serve;
pub use photonn_trace as trace;
pub use photonn_viz as viz;
pub use photonn_wire as wire;
