//! The distributed determinism contract, property-tested end to end:
//!
//! * for random grid sizes (power-of-two and mixed-radix), batch sizes and
//!   worker counts, the sharded all-reduced gradients match the
//!   single-tape batched gradients to ≤ 1e-12;
//! * equal-size power-of-two splits are **bit-identical** to the single
//!   tape;
//! * the loopback-TCP transport is bit-identical to the in-process pool;
//! * degenerate splits (1-sample batches, more workers than samples)
//!   clamp cleanly.

use photonn_datasets::{Dataset, Family};
use photonn_dist::{
    all_reduce, in_process_shard_grads, serve_peer_once, shard_batch, sharded_gradients,
    train_sharded, DistConfig, FaultConfig, TcpPool,
};
use photonn_donn::train::{
    batched_gradients, shard_gradients, train, train_with_grad_source, TrainOptions,
};
use photonn_donn::{Donn, DonnConfig};
use photonn_math::{Grid, Rng};
use std::net::TcpListener;
use std::sync::Arc;

fn setup(grid: usize, samples: usize, seed: u64) -> (Donn, Dataset) {
    let donn = Donn::random(DonnConfig::scaled(grid), &mut Rng::seed_from(seed));
    let data = Dataset::synthetic(Family::Mnist, samples, seed).resized(grid);
    (donn, data)
}

#[test]
fn property_sharded_matches_single_tape_below_1e12() {
    // Random (grid, batch, workers) draws from the in-tree PRNG: grids
    // cover both FFT engines (16 = 2⁴ vectorized pow2, 20 = 2²·5 planar
    // mixed-radix — the paper-native 200-grid path in miniature).
    let mut rng = Rng::seed_from(2024);
    for trial in 0..12 {
        let grid = if rng.uniform_in(0.0, 1.0) < 0.5 {
            16
        } else {
            20
        };
        let batch_size = 1 + (rng.uniform_in(0.0, 12.0) as usize);
        let workers = (rng.uniform_in(0.0, 7.0) as usize).min(6);
        let (donn, data) = setup(grid, batch_size, 100 + trial);
        let batch: Vec<usize> = (0..batch_size).collect();

        let (reference, ref_loss) = batched_gradients(&donn, &data, &batch, None, 1);
        let dist = DistConfig::in_process(workers);
        let (grads, loss) =
            sharded_gradients(&donn, &data, &batch, None, &dist).expect("healthy shards");

        assert!(
            (loss - ref_loss).abs() < 1e-12,
            "trial {trial}: grid {grid}, batch {batch_size}, workers {workers}: \
             loss {loss} vs {ref_loss}"
        );
        assert_eq!(grads.len(), reference.len());
        for (layer, (g, r)) in grads.iter().zip(&reference).enumerate() {
            let diff = g.max_abs_diff(r);
            assert!(
                diff < 1e-12,
                "trial {trial}: grid {grid}, batch {batch_size}, workers {workers}, \
                 layer {layer}: max diff {diff}"
            );
        }
    }
}

#[test]
fn equal_power_of_two_splits_are_bit_identical() {
    for (grid, batch_size) in [(16usize, 8usize), (20, 12)] {
        let (donn, data) = setup(grid, batch_size, 55);
        let batch: Vec<usize> = (0..batch_size).collect();
        let (reference, _) = batched_gradients(&donn, &data, &batch, None, 1);
        for workers in [1usize, 2, 4] {
            if batch_size % workers != 0 {
                continue;
            }
            let dist = DistConfig::in_process(workers);
            let (grads, _) =
                sharded_gradients(&donn, &data, &batch, None, &dist).expect("healthy shards");
            assert_eq!(
                grads, reference,
                "grid {grid}, batch {batch_size}, {workers} workers"
            );
        }
    }
}

#[test]
fn freeze_masks_survive_sharding() {
    let (donn, data) = setup(16, 6, 77);
    let batch: Vec<usize> = (0..6).collect();
    let mut keep = Grid::full(16, 16, 1.0);
    keep[(3, 3)] = 0.0;
    keep[(12, 7)] = 0.0;
    let shared = Arc::new(keep);
    let freeze: Vec<Arc<Grid>> = vec![shared.clone(), shared.clone(), shared];

    let (reference, _) = batched_gradients(&donn, &data, &batch, Some(&freeze), 1);
    let (grads, _) = sharded_gradients(
        &donn,
        &data,
        &batch,
        Some(&freeze),
        &DistConfig::in_process(2),
    )
    .expect("healthy shards");
    assert_eq!(grads, reference, "2 equal shards with freeze");
    for g in &grads {
        assert_eq!(g[(3, 3)], 0.0);
        assert_eq!(g[(12, 7)], 0.0);
    }
}

#[test]
fn degenerate_splits_clamp_cleanly() {
    let (donn, data) = setup(16, 3, 88);
    // More workers than samples: 3 singleton shards, no panic, and the
    // all-reduce still lands within tolerance of the single tape.
    let batch: Vec<usize> = vec![0, 1, 2];
    let (reference, _) = batched_gradients(&donn, &data, &batch, None, 1);
    for workers in [0usize, 3, 5, 64] {
        let (grads, _) =
            sharded_gradients(&donn, &data, &batch, None, &DistConfig::in_process(workers))
                .expect("healthy shards");
        for (g, r) in grads.iter().zip(&reference) {
            assert!(g.max_abs_diff(r) < 1e-12, "{workers} workers");
        }
    }
    // One-sample batch at any worker count is the single tape, bit for bit.
    let one: Vec<usize> = vec![1];
    let (reference, _) = batched_gradients(&donn, &data, &one, None, 1);
    for workers in [1usize, 2, 9] {
        let (grads, _) =
            sharded_gradients(&donn, &data, &one, None, &DistConfig::in_process(workers))
                .expect("healthy shards");
        assert_eq!(grads, reference, "{workers} workers, singleton batch");
    }
}

#[test]
fn tcp_transport_is_bit_identical_to_in_process() {
    // Two peers served from background threads in this same process: the
    // full init/step/grads protocol over real loopback sockets. Rank 0
    // computes shard 0 locally, exactly like train_with_sharded.
    let (donn, data) = setup(20, 9, 99);
    let batch: Vec<usize> = (0..9).collect();
    let workers = 3;

    let listeners: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    let peer_threads: Vec<_> = listeners
        .into_iter()
        .map(|l| std::thread::spawn(move || serve_peer_once(&l, 1).expect("peer session")))
        .collect();

    let mut pool = TcpPool::connect(&addrs, donn.config(), &data, None, FaultConfig::default())
        .expect("connect");
    let shards = shard_batch(&batch, workers);
    pool.send_steps(donn.masks(), &shards[1..], batch.len())
        .expect("send");
    let local = shard_gradients(&donn, &data, shards[0], None, 1, batch.len());
    let mut parts = vec![local];
    parts.extend(pool.collect_grads(2).expect("collect"));
    let (tcp_grads, tcp_loss) = all_reduce(parts, donn.masks(), None);
    pool.shutdown();
    for t in peer_threads {
        t.join().expect("peer thread");
    }

    let in_proc_parts =
        in_process_shard_grads(&donn, &data, &batch, None, workers, 1).expect("healthy shards");
    let (ip_grads, ip_loss) = all_reduce(in_proc_parts, donn.masks(), None);
    assert_eq!(tcp_grads, ip_grads, "TCP vs in-process gradients");
    assert_eq!(
        tcp_loss.to_bits(),
        ip_loss.to_bits(),
        "TCP vs in-process loss"
    );
}

#[test]
fn sharded_training_run_reproduces_single_process_masks_bitwise() {
    // Equal power-of-two shards every step (dataset 32, batch 8 → batches
    // of 8 split 4+4) ⇒ every gradient is bit-identical ⇒ the whole
    // trained model is bit-identical to the single-process run.
    let (donn, data) = setup(16, 32, 123);
    let opts = TrainOptions {
        epochs: 2,
        batch_size: 8,
        learning_rate: 0.08,
        ..TrainOptions::default()
    };
    let mut single = donn.clone();
    let single_stats = train(&mut single, &data, &opts);

    let mut sharded = donn.clone();
    let mut epochs_seen = 0usize;
    let stats = photonn_dist::train_with_sharded(
        &mut sharded,
        &data,
        &opts,
        None,
        None,
        &DistConfig::in_process(2),
        Some(&mut |s| {
            assert_eq!(s.epoch, epochs_seen, "hook sees epochs in order");
            epochs_seen += 1;
        }),
    )
    .expect("in-process training cannot fail");

    assert_eq!(epochs_seen, 2, "epoch hook fired per epoch");
    for (a, b) in single.masks().iter().zip(sharded.masks()) {
        assert_eq!(a, b, "trained masks must be bit-identical");
    }
    for (s, d) in single_stats.iter().zip(&stats) {
        assert_eq!(s.epoch, d.epoch);
        assert!((s.mean_loss - d.mean_loss).abs() < 1e-12);
        assert!((s.penalty - d.penalty).abs() < 1e-12);
    }
}

#[test]
fn property_resplit_after_losing_any_worker_equals_fresh_split() {
    // The elastic re-split contract: when worker k of N is confirmed lost,
    // the surviving run re-plans every batch with `shard_batch(batch, N−1)`
    // — which must be *the* plan a fresh (N−1)-worker run would produce,
    // for every N ≤ 8, every lost rank k, and ragged batch lengths. The
    // shard plan depends only on (batch, worker count), never on which
    // rank disappeared, so the post-loss gradient stream is the fresh
    // run's stream.
    for n in 2usize..=8 {
        for len in [1usize, 2, 3, 5, 7, 8, 9, 13, 16, 31] {
            let batch: Vec<usize> = (0..len).map(|i| i * 3 + 1).collect();
            let fresh: Vec<Vec<usize>> = shard_batch(&batch, n - 1)
                .iter()
                .map(|s| s.to_vec())
                .collect();
            for lost_rank in 0..n {
                let resplit: Vec<Vec<usize>> = shard_batch(&batch, n - 1)
                    .iter()
                    .map(|s| s.to_vec())
                    .collect();
                assert_eq!(
                    resplit, fresh,
                    "N={n}, lost rank {lost_rank}, batch len {len}"
                );
            }
            // And the plan still concatenates back to the batch.
            let flat: Vec<usize> = fresh.into_iter().flatten().collect();
            assert_eq!(flat, batch, "N={n}, batch len {len}");
        }
    }
}

#[test]
fn property_mid_run_membership_change_keeps_gradient_parity() {
    // A full training run whose worker count changes mid-run (4 → 3 → 1,
    // at fixed step indices — the in-process mirror of peers being lost),
    // checked per step against the single-tape batched gradients: the
    // all-reduced gradient must stay within 1e-12 of the oracle at every
    // membership, including the steps straddling each change.
    let (donn, data) = setup(16, 30, 456);
    let opts = TrainOptions {
        epochs: 2,
        batch_size: 10,
        learning_rate: 0.08,
        ..TrainOptions::default()
    };
    let mut model = donn.clone();
    let mut step = 0usize;
    train_with_grad_source(
        &mut model,
        &data,
        &opts,
        None,
        None,
        |donn, data, batch| {
            let workers = match step {
                0..=1 => 4,
                2..=3 => 3,
                _ => 1,
            };
            step += 1;
            let (oracle, oracle_loss) = batched_gradients(donn, data, batch, None, 1);
            let (grads, loss) =
                sharded_gradients(donn, data, batch, None, &DistConfig::in_process(workers))
                    .expect("healthy shards");
            assert!(
                (loss - oracle_loss).abs() < 1e-12,
                "step {step}: loss {loss} vs {oracle_loss} at {workers} workers"
            );
            for (layer, (g, r)) in grads.iter().zip(&oracle).enumerate() {
                let diff = g.max_abs_diff(r);
                assert!(
                    diff < 1e-12,
                    "step {step}, layer {layer}, {workers} workers: max diff {diff}"
                );
            }
            (grads, loss)
        },
        None,
    );
    assert_eq!(step, 6, "2 epochs × 3 batches all passed the oracle");
}

#[test]
fn train_sharded_learns_on_ragged_worker_counts() {
    // 3 workers over batches of 10 (ragged 4+3+3): not the bit-identity
    // case, but training must still work and match the single-process loss
    // closely.
    let (donn, data) = setup(16, 40, 321);
    let opts = TrainOptions {
        epochs: 2,
        batch_size: 10,
        learning_rate: 0.08,
        ..TrainOptions::default()
    };
    let mut single = donn.clone();
    let single_stats = train(&mut single, &data, &opts);
    let mut sharded = donn.clone();
    let stats = train_sharded(&mut sharded, &data, &opts, &DistConfig::in_process(3))
        .expect("in-process training cannot fail");
    assert!(stats[1].mean_loss < stats[0].mean_loss, "loss decreases");
    // Same schedule, gradients equal to ~1e-12 per step: losses track very
    // closely even after compounding through Adam.
    for (s, d) in single_stats.iter().zip(&stats) {
        assert!(
            (s.mean_loss - d.mean_loss).abs() < 1e-6,
            "epoch {}: {} vs {}",
            s.epoch,
            s.mean_loss,
            d.mean_loss
        );
    }
}
