//! The fault-tolerance contract under deterministic fault injection.
//!
//! Every test runs real loopback-TCP training with each peer behind a
//! [`ChaosProxy`] executing a seeded or hand-written [`ChaosSchedule`],
//! then asserts **bit-identical masks** against an in-process oracle run:
//!
//! * recoverable faults (drops, delays, truncated frames) must be
//!   invisible — reconnect restores the session and the retried step
//!   recomputes the same gradients;
//! * a killed peer must shrink the run onto the survivors such that every
//!   post-loss step is exactly what a fresh run with the surviving worker
//!   count would compute from the same state;
//! * losses below `min_workers` must fail loudly, not limp.
//!
//! Determinism note: no assertion in this file races a timer. Faults are
//! injected as closed connections/sessions (immediate, scheduler-
//! independent), dead-peer *timeouts* are set far above any real delay in
//! the tests, and the only waiting — the reconnect window of a killed
//! peer — has a deterministic outcome because a killed proxy refuses
//! every session while keeping its port bound. Running the suite twice in
//! a row (as CI's `dist-chaos` job does) must produce identical results.

use photonn_datasets::{Dataset, Family};
use photonn_dist::chaos::{ChaosAction, ChaosEvent, ChaosProxy, ChaosSchedule, Direction};
use photonn_dist::{
    serve_peer_forever, sharded_gradients, train_with_sharded, DistConfig, DistError, FaultConfig,
};
use photonn_donn::train::{train_with_grad_source, EpochStats, TrainOptions};
use photonn_donn::{Donn, DonnConfig};
use photonn_math::Rng;
use std::net::TcpListener;

fn setup(grid: usize, samples: usize, seed: u64) -> (Donn, Dataset) {
    let donn = Donn::random(DonnConfig::scaled(grid), &mut Rng::seed_from(seed));
    let data = Dataset::synthetic(Family::Mnist, samples, seed).resized(grid);
    (donn, data)
}

/// 16 samples, batch 8 → exactly 2 optimizer steps per epoch, so "the
/// first step of epoch E" is step index 2·E — the epoch-boundary hook the
/// kill tests rely on.
fn train_opts(epochs: usize) -> TrainOptions {
    TrainOptions {
        epochs,
        batch_size: 8,
        learning_rate: 0.08,
        ..TrainOptions::default()
    }
}

/// Spawns a keep-alive peer worker on an ephemeral port (sessions served
/// back to back, which is what makes reconnection possible) and returns
/// its address. The thread is detached; it dies with the test process.
fn spawn_peer() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind peer");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = serve_peer_forever(&listener, 1);
    });
    addr
}

/// Fault tuning for chaos runs: heartbeats on and frequent, the dead-peer
/// timeout far above any injected delay (failures arrive as closed
/// connections, never as timer races), reconnects fast.
fn chaos_fault() -> FaultConfig {
    FaultConfig {
        heartbeat_ms: 20,
        peer_timeout_ms: 5_000,
        reconnect_window_ms: 2_000,
        reconnect_backoff_ms: 25,
    }
}

/// Same, with a short reconnect window: a killed proxy refuses every
/// session deterministically, so the window only adds wall time before
/// the inevitable confirmed loss.
fn kill_fault() -> FaultConfig {
    FaultConfig {
        reconnect_window_ms: 250,
        reconnect_backoff_ms: 50,
        ..chaos_fault()
    }
}

/// A TCP training run against the given (proxy) addresses.
fn run_tcp(
    donn: &Donn,
    data: &Dataset,
    opts: &TrainOptions,
    peers: Vec<String>,
    fault: FaultConfig,
    min_workers: usize,
) -> Result<(Donn, Vec<EpochStats>), DistError> {
    let mut model = donn.clone();
    let dist = DistConfig {
        threads_per_worker: 1,
        peers,
        min_workers,
        fault,
        ..DistConfig::default()
    };
    let stats = train_with_sharded(&mut model, data, opts, None, None, &dist, None)?;
    Ok((model, stats))
}

/// The oracle: an in-process run whose worker count per step follows
/// `workers_at(step)`. Because TCP transport is bit-identical to the
/// in-process pool at equal worker count, this *is* "a fresh run with the
/// surviving worker count from the same post-loss state" for elastic
/// comparisons.
fn run_oracle(
    donn: &Donn,
    data: &Dataset,
    opts: &TrainOptions,
    workers_at: impl Fn(usize) -> usize,
) -> (Donn, Vec<EpochStats>) {
    let mut model = donn.clone();
    let mut step = 0usize;
    let stats = train_with_grad_source(
        &mut model,
        data,
        opts,
        None,
        None,
        |donn, data, batch| {
            let workers = workers_at(step);
            step += 1;
            sharded_gradients(donn, data, batch, None, &DistConfig::in_process(workers))
                .expect("healthy shards")
        },
        None,
    );
    (model, stats)
}

fn assert_bit_identical(got: &Donn, want: &Donn, label: &str) {
    for (layer, (g, w)) in got.masks().iter().zip(want.masks()).enumerate() {
        assert_eq!(g, w, "{label}: mask layer {layer} diverged");
    }
}

fn assert_stats_equal(got: &[EpochStats], want: &[EpochStats], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: epoch count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.epoch, w.epoch, "{label}");
        assert_eq!(
            g.mean_loss.to_bits(),
            w.mean_loss.to_bits(),
            "{label}: epoch {} loss",
            g.epoch
        );
    }
}

#[test]
fn passthrough_proxies_are_invisible() {
    let (donn, data) = setup(16, 16, 7001);
    let opts = train_opts(2);
    let proxies: Vec<ChaosProxy> = (0..2)
        .map(|_| ChaosProxy::spawn(spawn_peer(), ChaosSchedule::passthrough()).expect("proxy"))
        .collect();
    let addrs = proxies.iter().map(|p| p.addr()).collect();
    let (tcp, tcp_stats) =
        run_tcp(&donn, &data, &opts, addrs, chaos_fault(), 1).expect("clean run");
    let (oracle, oracle_stats) = run_oracle(&donn, &data, &opts, |_| 3);
    assert_bit_identical(&tcp, &oracle, "passthrough");
    assert_stats_equal(&tcp_stats, &oracle_stats, "passthrough");
    assert!(proxies.iter().all(|p| !p.killed()));
}

#[test]
fn drops_delays_and_truncations_recover_bit_identically() {
    // Peer A: one delayed gradients frame, then its *second* step frame is
    // swallowed with the connection. Peer B: its third gradients frame is
    // truncated mid-payload. All recoverable: rank 0 reconnects (the
    // proxies keep listening, the peers keep serving) and retries each
    // interrupted step, so membership never shrinks and the run must be
    // bit-identical to an undisturbed 3-worker run.
    let (donn, data) = setup(16, 16, 7002);
    let opts = train_opts(2);
    let schedule_a = ChaosSchedule::new(vec![
        ChaosEvent {
            direction: Direction::FromPeer,
            message_type: "grads".to_string(),
            occurrence: 0,
            action: ChaosAction::DelayMs(30),
        },
        ChaosEvent {
            direction: Direction::ToPeer,
            message_type: "step".to_string(),
            occurrence: 1,
            action: ChaosAction::DropConnection,
        },
    ]);
    let schedule_b = ChaosSchedule::new(vec![ChaosEvent {
        direction: Direction::FromPeer,
        message_type: "grads".to_string(),
        occurrence: 2,
        action: ChaosAction::Truncate,
    }]);
    let proxy_a = ChaosProxy::spawn(spawn_peer(), schedule_a).expect("proxy a");
    let proxy_b = ChaosProxy::spawn(spawn_peer(), schedule_b).expect("proxy b");
    let (tcp, tcp_stats) = run_tcp(
        &donn,
        &data,
        &opts,
        vec![proxy_a.addr(), proxy_b.addr()],
        chaos_fault(),
        3, // even the floor at "everyone" must hold: nobody is lost
    )
    .expect("faults recover");
    let (oracle, oracle_stats) = run_oracle(&donn, &data, &opts, |_| 3);
    assert_bit_identical(&tcp, &oracle, "recoverable faults");
    assert_stats_equal(&tcp_stats, &oracle_stats, "recoverable faults");
    assert!(!proxy_a.killed() && !proxy_b.killed());
}

#[test]
fn peer_killed_at_epoch_boundary_matches_fresh_survivor_run() {
    // The elastic acceptance case: a 3-worker run (rank 0 + 2 peers) loses
    // one peer exactly at the epoch-1→2 boundary — the kill fires on the
    // peer's third step frame, i.e. the first step of epoch 2 (2 steps per
    // epoch). The run must complete and its masks must be bit-identical to
    // a run that computes steps 0–1 with 3 workers and everything after
    // with 2 — which, because each step is a pure function of (masks,
    // batch, worker count), is exactly a fresh 2-worker run from the same
    // post-loss state.
    let (donn, data) = setup(16, 16, 7003);
    let opts = train_opts(3);
    let proxy_a = ChaosProxy::spawn(spawn_peer(), ChaosSchedule::passthrough()).expect("proxy a");
    let proxy_b = ChaosProxy::spawn(
        spawn_peer(),
        ChaosSchedule::new(vec![ChaosEvent {
            direction: Direction::ToPeer,
            message_type: "step".to_string(),
            occurrence: 2,
            action: ChaosAction::KillPeer,
        }]),
    )
    .expect("proxy b");
    let (tcp, tcp_stats) = run_tcp(
        &donn,
        &data,
        &opts,
        vec![proxy_a.addr(), proxy_b.addr()],
        kill_fault(),
        2, // losing one of three is allowed; the floor sits at two
    )
    .expect("run survives the kill");
    assert!(proxy_b.killed(), "kill event fired");
    assert!(!proxy_a.killed());
    let (oracle, oracle_stats) =
        run_oracle(&donn, &data, &opts, |step| if step < 2 { 3 } else { 2 });
    assert_bit_identical(&tcp, &oracle, "epoch-boundary kill");
    assert_stats_equal(&tcp_stats, &oracle_stats, "epoch-boundary kill");
}

#[test]
fn loss_below_min_workers_floor_fails_loudly() {
    // Rank 0 + 1 peer with min_workers = 2: the peer's death must not be
    // absorbed — the run has to end in BelowMinWorkers naming the lost
    // peer, with rank 0's model left at the last completed step rather
    // than silently finishing alone.
    let (donn, data) = setup(16, 16, 7004);
    let opts = train_opts(2);
    let proxy = ChaosProxy::spawn(
        spawn_peer(),
        ChaosSchedule::new(vec![ChaosEvent {
            direction: Direction::ToPeer,
            message_type: "step".to_string(),
            occurrence: 1,
            action: ChaosAction::KillPeer,
        }]),
    )
    .expect("proxy");
    let err = run_tcp(&donn, &data, &opts, vec![proxy.addr()], kill_fault(), 2)
        .expect_err("the floor must trip");
    match err {
        DistError::BelowMinWorkers {
            addr,
            survivors,
            min_workers,
        } => {
            assert_eq!(addr, proxy.addr(), "names the lost peer");
            assert_eq!(survivors, 1);
            assert_eq!(min_workers, 2);
        }
        other => panic!("expected BelowMinWorkers, got {other:?}"),
    }
    assert!(proxy.killed());
}

#[test]
fn seeded_schedules_are_reproducible_and_harmless() {
    // The seeded generator draws only recoverable faults, so *any* seeded
    // schedule must leave training bit-identical to an undisturbed run —
    // and the same seed must describe the same faults, which is what lets
    // CI re-run the suite and demand identical outcomes.
    assert_eq!(
        ChaosSchedule::seeded(20230710, 4),
        ChaosSchedule::seeded(20230710, 4),
        "seeded schedules are pure functions of the seed"
    );
    let (donn, data) = setup(16, 16, 7005);
    let opts = train_opts(3);
    let proxy_a =
        ChaosProxy::spawn(spawn_peer(), ChaosSchedule::seeded(20230710, 4)).expect("proxy a");
    let proxy_b = ChaosProxy::spawn(spawn_peer(), ChaosSchedule::seeded(998, 4)).expect("proxy b");
    let (tcp, tcp_stats) = run_tcp(
        &donn,
        &data,
        &opts,
        vec![proxy_a.addr(), proxy_b.addr()],
        chaos_fault(),
        3,
    )
    .expect("seeded faults recover");
    let (oracle, oracle_stats) = run_oracle(&donn, &data, &opts, |_| 3);
    assert_bit_identical(&tcp, &oracle, "seeded chaos");
    assert_stats_equal(&tcp_stats, &oracle_stats, "seeded chaos");
    assert!(!proxy_a.killed() && !proxy_b.killed());
}
