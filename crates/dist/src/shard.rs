//! Deterministic shard assignment for data-parallel mini-batches.
//!
//! A shard plan is a pure function of the batch's index order and the
//! worker count — no randomness, no tie-breaking on runtime state — so the
//! same shuffling seed produces the same shard contents on every run, and
//! the *concatenation* of the shards is the same batch regardless of how
//! many workers split it. That second property is what lets the all-reduce
//! reproduce the single-tape gradient: workers change how the per-sample
//! sum is associated, never which samples are summed.

/// Splits `batch` into at most `workers` contiguous, near-equal shards.
///
/// * Shards are contiguous slices of `batch` in order; concatenating the
///   returned shards yields `batch` exactly.
/// * Sizes differ by at most one, the longer shards first — for
///   `B = q·w + r` the first `r` shards get `q+1` samples. When
///   `workers` divides `B` the split is exactly even, which (for
///   power-of-two worker counts) is the bit-identity case of the gradient
///   all-reduce.
/// * Degenerate inputs clamp instead of panicking: `workers == 0` is
///   treated as 1, `workers > batch.len()` produces one singleton shard
///   per sample (never an empty shard), and an empty batch produces no
///   shards.
///
/// # Examples
///
/// ```
/// use photonn_dist::shard_batch;
///
/// let batch: Vec<usize> = (10..20).collect();
/// let shards = shard_batch(&batch, 3);
/// assert_eq!(shards.len(), 3);
/// assert_eq!(shards[0], &batch[0..4]); // 10 = 4 + 3 + 3
/// assert_eq!(shards[1], &batch[4..7]);
/// assert_eq!(shards[2], &batch[7..10]);
/// ```
pub fn shard_batch(batch: &[usize], workers: usize) -> Vec<&[usize]> {
    if batch.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, batch.len());
    let base = batch.len() / workers;
    let extra = batch.len() % workers;
    let mut shards = Vec::with_capacity(workers);
    let mut at = 0;
    for s in 0..workers {
        let size = base + usize::from(s < extra);
        shards.push(&batch[at..at + size]);
        at += size;
    }
    debug_assert_eq!(at, batch.len());
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concat(shards: &[&[usize]]) -> Vec<usize> {
        shards.iter().flat_map(|s| s.iter().copied()).collect()
    }

    #[test]
    fn concatenation_is_invariant_across_worker_counts() {
        let batch: Vec<usize> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        for workers in 1..=14 {
            assert_eq!(concat(&shard_batch(&batch, workers)), batch, "{workers}");
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one_longest_first() {
        let batch: Vec<usize> = (0..23).collect();
        let shards = shard_batch(&batch, 5);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![5, 5, 5, 4, 4]);
    }

    #[test]
    fn even_split_when_workers_divide_batch() {
        let batch: Vec<usize> = (0..12).collect();
        for workers in [1, 2, 3, 4, 6, 12] {
            let shards = shard_batch(&batch, workers);
            assert!(shards.iter().all(|s| s.len() == 12 / workers));
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let batch = vec![7, 8, 9];
        let shards = shard_batch(&batch, 0);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0], &batch[..]);
    }

    #[test]
    fn more_workers_than_samples_yields_singletons() {
        let batch = vec![5, 6];
        let shards = shard_batch(&batch, 8);
        assert_eq!(shards.len(), 2, "no empty shards");
        assert!(shards.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn single_sample_batch_any_worker_count() {
        let batch = vec![42];
        for workers in [0, 1, 2, 100] {
            let shards = shard_batch(&batch, workers);
            assert_eq!(shards, vec![&batch[..]], "{workers} workers");
        }
    }

    #[test]
    fn empty_batch_yields_no_shards() {
        assert!(shard_batch(&[], 4).is_empty());
        assert!(shard_batch(&[], 0).is_empty());
    }
}
