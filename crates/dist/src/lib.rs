//! # photonn-dist
//!
//! Sharded data-parallel training for DONN phase masks with a
//! **deterministic gradient all-reduce** — the ROADMAP's "multi-dataset
//! sharding" item realized with the standard library only.
//!
//! Each `train_with` step is a pure function of `(masks, mini-batch)` and
//! the batched tape emits batch-averaged mask gradients, so data
//! parallelism reduces to: split the batch, run one tape per shard,
//! all-reduce, step once.
//!
//! ```text
//!            mini-batch (seeded shuffle, identical to single-process)
//!                 │ shard_batch: contiguous, near-equal, deterministic
//!        ┌────────┼────────────┐
//!        ▼        ▼            ▼
//!    worker 0  worker 1 …  worker N−1     in-process threads, or rank 0 +
//!    [tape 0]  [tape 1]    [tape N−1]     peer processes over loopback TCP
//!        │        │            │          (bit-exact JSON frames)
//!        ▼        ▼            ▼
//!     MaskGrads buffers (complex mask-space adjoints, global 1/B seeds)
//!        └────────┴─────┬──────┘
//!                       ▼ tree_reduce (the tape's midpoint tree)
//!                 phase_gradients → regularizers → Adam step (rank 0)
//! ```
//!
//! ## Determinism contract
//!
//! * **Same shards, always.** Shard assignment is a pure function of the
//!   shuffled batch order and the worker count; the shard concatenation
//!   *is* the batch for every worker count.
//! * **Same arithmetic, reassociated at worst.** Every shard tape uses the
//!   global batch size as its loss denominator, so each sample's backward
//!   contribution carries the exact single-tape `1/B` seed; the all-reduce
//!   sums complex mask-space adjoints and applies the phase projection
//!   once, through the same `phase_adjoint` the tape itself uses. Any
//!   worker count therefore reproduces the single-tape batched gradients
//!   to within floating-point reassociation (≤ 1e-12, CI-enforced).
//! * **Bit-identical when tree-aligned.** The tape accumulates per-sample
//!   mask gradients with a fixed midpoint-split tree, and
//!   [`MaskGrads::tree_reduce`] combines shard partials with the same
//!   rule — so an equal contiguous split with a power-of-two worker count
//!   (2, 4, 8 … dividing the batch) yields **bit-identical** gradients to
//!   the single tape, and a whole training run at such a worker count
//!   produces bit-identical masks. (The scalar *loss* reported per epoch
//!   is a diagnostic and only reassociation-equal: each shard folds its
//!   own rows before the cross-shard sum.)
//! * **Transport-invariant.** The wire codec round-trips every `f64` to
//!   identical bits, so multi-process runs equal in-process runs at the
//!   same worker count, bit for bit.
//!
//! [`MaskGrads::tree_reduce`]: photonn_autodiff::MaskGrads::tree_reduce
//!
//! ## Failure model (TCP mode)
//!
//! The transport is *elastic*: peers heartbeat while computing, rank 0's
//! sockets carry bounded read/write timeouts, a silent peer is re-dialed
//! with exponential backoff inside a bounded window, and a peer confirmed
//! lost has the interrupted step re-split over the survivors — exactly the
//! `shard_batch` plan a fresh run with the surviving worker count would
//! use, with the global loss denominator unchanged, so the post-loss run
//! is *bit-identical* to that fresh run. `DistConfig::min_workers` turns
//! further shrinkage into a loud [`DistError::BelowMinWorkers`]. The
//! [`chaos`] module holds the seeded in-process fault-injection proxy that
//! proves all of this deterministically; see [`tcp`]'s module docs for the
//! detection/reconnect/re-split ladder.
//!
//! [`tcp`]: self#entry-points
//!
//! ## Entry points
//!
//! | Item | Role |
//! |---|---|
//! | [`shard_batch`] | deterministic contiguous shard plan |
//! | [`sharded_gradients`] | one sharded step, in-process pool |
//! | [`train_with_sharded`] / [`train_sharded`] | the full trainer path |
//! | [`TcpPool`] / [`serve_peer_once`] | rank 0 ↔ peer loopback protocol |
//! | [`FaultConfig`] | heartbeat / timeout / reconnect tuning |
//! | [`load_hostfile`] | peer list from a hostfile |
//! | [`chaos`] | deterministic fault-injection proxy for tests |
//!
//! # Examples
//!
//! ```
//! use photonn_datasets::{Dataset, Family};
//! use photonn_dist::{train_sharded, DistConfig};
//! use photonn_donn::train::TrainOptions;
//! use photonn_donn::{Donn, DonnConfig};
//! use photonn_math::Rng;
//!
//! let mut rng = Rng::seed_from(7);
//! let mut donn = Donn::random(DonnConfig::scaled(16), &mut rng);
//! let data = Dataset::synthetic(Family::Mnist, 32, 7).resized(16);
//! let opts = TrainOptions { epochs: 1, batch_size: 16, ..TrainOptions::default() };
//! let stats = train_sharded(&mut donn, &data, &opts, &DistConfig::in_process(2)).unwrap();
//! assert_eq!(stats.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod proto;
mod shard;
mod tcp;
mod train;
mod worker;

pub use shard::shard_batch;
pub use tcp::{serve_peer_forever, serve_peer_once, FaultConfig, TcpPool};
pub use train::{
    load_hostfile, parse_hostfile, sharded_gradients, train_sharded, train_with_sharded,
    DistConfig, DistError,
};
pub use worker::{all_reduce, in_process_shard_grads};
