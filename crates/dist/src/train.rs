//! The sharded trainer: [`DistConfig`] + [`train_with_sharded`], plugging
//! the shard/all-reduce machinery into `photonn-donn`'s training loop.

use photonn_datasets::Dataset;
use photonn_donn::train::{
    shard_gradients, train_with_grad_source, EpochHookFn, EpochStats, ExtraGradFn, TrainOptions,
};
use photonn_donn::Donn;
use photonn_math::Grid;
use std::fmt;
use std::io;
use std::sync::Arc;

use crate::shard::shard_batch;
use crate::tcp::TcpPool;
use crate::worker::{all_reduce, in_process_shard_grads};

/// How a training run is sharded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistConfig {
    /// Shard count for the in-process pool. Ignored when `peers` is
    /// non-empty (the shard count is then `peers.len() + 1`: rank 0
    /// computes shard 0 while the peers compute the rest). Clamped per
    /// batch so no shard is ever empty; `0` behaves as `1`.
    pub workers: usize,
    /// FFT chunk threads inside each worker's tape (rank 0's own shard in
    /// multi-process mode). Peers choose their thread count at launch.
    pub threads_per_worker: usize,
    /// Peer worker addresses (`host:port`). Empty selects the in-process
    /// pool; non-empty selects loopback-TCP multi-process mode.
    pub peers: Vec<String>,
}

impl Default for DistConfig {
    /// Two in-process workers, one FFT thread each.
    fn default() -> Self {
        DistConfig {
            workers: 2,
            threads_per_worker: 1,
            peers: Vec::new(),
        }
    }
}

impl DistConfig {
    /// An in-process configuration with `workers` shards.
    pub fn in_process(workers: usize) -> Self {
        DistConfig {
            workers,
            ..DistConfig::default()
        }
    }

    /// A multi-process configuration over the given peer addresses.
    pub fn with_peers(peers: Vec<String>) -> Self {
        DistConfig {
            peers,
            ..DistConfig::default()
        }
    }
}

/// Errors from distributed training. In-process mode cannot fail; every
/// variant originates in the TCP transport or protocol.
#[derive(Debug)]
pub enum DistError {
    /// Connecting to or talking with a peer failed.
    Io(io::Error),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "distributed training failed: {e}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for DistError {
    fn from(e: io::Error) -> Self {
        DistError::Io(e)
    }
}

/// Sharded batch gradients through the in-process pool, in the
/// [`photonn_donn::train::batched_gradients`] contract — the single-step
/// entry point benchmarks and property tests drive directly.
///
/// # Panics
///
/// Panics if `batch` is empty or on model/dataset shape mismatches.
pub fn sharded_gradients(
    donn: &Donn,
    data: &Dataset,
    batch: &[usize],
    freeze: Option<&[Arc<Grid>]>,
    dist: &DistConfig,
) -> (Vec<Grid>, f64) {
    let parts = in_process_shard_grads(
        donn,
        data,
        batch,
        freeze,
        dist.workers,
        dist.threads_per_worker,
    );
    all_reduce(parts, donn.masks(), freeze)
}

/// Data-parallel [`photonn_donn::train::train_with`]: every mini-batch is
/// split into deterministic contiguous shards, each shard's gradients come
/// from its own batched tape (worker threads in-process, or rank 0 + peer
/// processes over loopback TCP), and the all-reduced gradient feeds a
/// single Adam step on this process. Shuffling, regularizers, the
/// extra-force hook, freeze masking and the optimizer state all live here
/// on rank 0, so the sharded run follows the exact single-process training
/// schedule — same seed, same batches, same updates.
///
/// `epoch_hook` observes each completed epoch's [`EpochStats`].
///
/// # Errors
///
/// Returns [`DistError`] when a peer cannot be reached or violates the
/// protocol during the handshake. A peer failing **mid-run** aborts the
/// process with a panic instead: silently continuing on fewer shards would
/// change the gradient stream and break the determinism contract.
///
/// # Panics
///
/// Panics on model/dataset shape mismatches, or on a mid-run peer failure
/// (see above).
pub fn train_with_sharded(
    donn: &mut Donn,
    data: &Dataset,
    opts: &TrainOptions,
    freeze: Option<&[Arc<Grid>]>,
    extra_grad: Option<ExtraGradFn<'_>>,
    dist: &DistConfig,
    epoch_hook: Option<EpochHookFn<'_>>,
) -> Result<Vec<EpochStats>, DistError> {
    if dist.peers.is_empty() {
        let stats = train_with_grad_source(
            donn,
            data,
            opts,
            freeze,
            extra_grad,
            |donn, data, batch| sharded_gradients(donn, data, batch, freeze, dist),
            epoch_hook,
        );
        return Ok(stats);
    }

    let workers = dist.peers.len() + 1;
    let mut pool = TcpPool::connect(&dist.peers, donn.config(), data, freeze)?;
    let stats = train_with_grad_source(
        donn,
        data,
        opts,
        freeze,
        extra_grad,
        |donn, data, batch| {
            let shards = shard_batch(batch, workers);
            let denom = batch.len();
            // Ship the remote shards first so the peers crunch while rank 0
            // computes shard 0 on this thread.
            {
                let _span = photonn_trace::span("dist.wire_serialize");
                pool.send_steps(donn.masks(), &shards[1..], denom)
                    .expect("peer failed mid-run (send)");
            }
            let local = {
                let _span = photonn_trace::span("dist.shard_compute");
                shard_gradients(
                    donn,
                    data,
                    shards[0],
                    freeze,
                    dist.threads_per_worker,
                    denom,
                )
            };
            let mut parts = vec![local];
            {
                let _span = photonn_trace::span("dist.allreduce_wait");
                parts.extend(
                    pool.collect_grads(shards.len() - 1)
                        .expect("peer failed mid-run (collect)"),
                );
            }
            all_reduce(parts, donn.masks(), freeze)
        },
        epoch_hook,
    );
    pool.shutdown();
    Ok(stats)
}

/// [`train_with_sharded`] without freezing, extra forces or an epoch hook
/// — the plain data-parallel baseline path.
///
/// # Errors
///
/// Same conditions as [`train_with_sharded`].
pub fn train_sharded(
    donn: &mut Donn,
    data: &Dataset,
    opts: &TrainOptions,
    dist: &DistConfig,
) -> Result<Vec<EpochStats>, DistError> {
    train_with_sharded(donn, data, opts, None, None, dist, None)
}
