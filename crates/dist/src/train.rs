//! The sharded trainer: [`DistConfig`] + [`train_with_sharded`], plugging
//! the shard/all-reduce machinery into `photonn-donn`'s training loop.

use photonn_datasets::Dataset;
use photonn_donn::train::{
    try_train_with_grad_source, EpochHookFn, EpochStats, ExtraGradFn, TrainOptions,
};
use photonn_donn::Donn;
use photonn_math::Grid;
use std::fmt;
use std::io;
use std::sync::Arc;

use crate::tcp::{FaultConfig, TcpPool};
use crate::worker::{all_reduce, in_process_shard_grads};

/// How a training run is sharded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistConfig {
    /// Shard count for the in-process pool. Ignored when `peers` is
    /// non-empty (the shard count is then `peers.len() + 1`: rank 0
    /// computes shard 0 while the peers compute the rest). Clamped per
    /// batch so no shard is ever empty; `0` behaves as `1`.
    pub workers: usize,
    /// FFT chunk threads inside each worker's tape (rank 0's own shard in
    /// multi-process mode). Peers choose their thread count at launch.
    pub threads_per_worker: usize,
    /// Peer worker addresses (`host:port`). Empty selects the in-process
    /// pool; non-empty selects loopback-TCP multi-process mode. Typically
    /// loaded from a hostfile ([`load_hostfile`]).
    pub peers: Vec<String>,
    /// Elastic floor: the minimum total worker count (surviving peers
    /// plus rank 0) the run may shrink to. A confirmed peer loss that
    /// would drop below this fails the run loudly with
    /// [`DistError::BelowMinWorkers`] instead of limping on. `0` and `1`
    /// both mean "rank 0 alone may finish the run".
    pub min_workers: usize,
    /// Timeout / heartbeat / reconnect tuning for the TCP transport.
    /// Ignored in in-process mode.
    pub fault: FaultConfig,
}

impl Default for DistConfig {
    /// Two in-process workers, one FFT thread each, no elastic floor.
    fn default() -> Self {
        DistConfig {
            workers: 2,
            threads_per_worker: 1,
            peers: Vec::new(),
            min_workers: 1,
            fault: FaultConfig::default(),
        }
    }
}

impl DistConfig {
    /// An in-process configuration with `workers` shards.
    pub fn in_process(workers: usize) -> Self {
        DistConfig {
            workers,
            ..DistConfig::default()
        }
    }

    /// A multi-process configuration over the given peer addresses.
    pub fn with_peers(peers: Vec<String>) -> Self {
        DistConfig {
            peers,
            ..DistConfig::default()
        }
    }
}

/// Parses hostfile text into a peer address list: one `host:port` per
/// line, surrounding whitespace trimmed, blank lines and `#` comments
/// skipped. The file's line order is shard order.
pub fn parse_hostfile(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Reads a hostfile from disk ([`parse_hostfile`] for the format).
///
/// # Errors
///
/// Returns the underlying read error, or `InvalidData` when the file
/// contains no peer addresses at all — an empty hostfile silently
/// selecting single-process mode would be a misconfiguration trap.
pub fn load_hostfile(path: &str) -> io::Result<Vec<String>> {
    let text = std::fs::read_to_string(path)?;
    let peers = parse_hostfile(&text);
    if peers.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("hostfile {path} lists no peer addresses"),
        ));
    }
    Ok(peers)
}

/// Errors from distributed training.
#[derive(Debug)]
pub enum DistError {
    /// Connecting to or talking with a peer failed (handshake phase —
    /// mid-run transport failures are absorbed by the reconnect/re-split
    /// machinery unless the `min_workers` floor is hit).
    Io(io::Error),
    /// An in-process shard worker thread panicked; `message` carries the
    /// panic payload.
    ShardPanicked {
        /// Index of the shard whose worker panicked.
        shard: usize,
        /// The panic message (payload rendered to text).
        message: String,
    },
    /// A confirmed peer loss would shrink the run below the configured
    /// elastic floor.
    BelowMinWorkers {
        /// Address of the peer whose loss tripped the floor.
        addr: String,
        /// Worker count (surviving peers + rank 0) after the loss.
        survivors: usize,
        /// The configured floor the loss fell through.
        min_workers: usize,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "distributed training failed: {e}"),
            DistError::ShardPanicked { shard, message } => {
                write!(f, "shard {shard} worker panicked: {message}")
            }
            DistError::BelowMinWorkers {
                addr,
                survivors,
                min_workers,
            } => write!(
                f,
                "peer {addr} confirmed lost: {survivors} worker(s) remain, \
                 below the --min-workers floor of {min_workers}"
            ),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DistError {
    fn from(e: io::Error) -> Self {
        DistError::Io(e)
    }
}

/// Sharded batch gradients through the in-process pool, in the
/// [`photonn_donn::train::batched_gradients`] contract — the single-step
/// entry point benchmarks and property tests drive directly.
///
/// # Errors
///
/// Returns [`DistError::ShardPanicked`] when a worker thread panics.
///
/// # Panics
///
/// Panics if `batch` is empty.
pub fn sharded_gradients(
    donn: &Donn,
    data: &Dataset,
    batch: &[usize],
    freeze: Option<&[Arc<Grid>]>,
    dist: &DistConfig,
) -> Result<(Vec<Grid>, f64), DistError> {
    let parts = in_process_shard_grads(
        donn,
        data,
        batch,
        freeze,
        dist.workers,
        dist.threads_per_worker,
    )?;
    Ok(all_reduce(parts, donn.masks(), freeze))
}

/// Data-parallel [`photonn_donn::train::train_with`]: every mini-batch is
/// split into deterministic contiguous shards, each shard's gradients come
/// from its own batched tape (worker threads in-process, or rank 0 + peer
/// processes over loopback TCP), and the all-reduced gradient feeds a
/// single Adam step on this process. Shuffling, regularizers, the
/// extra-force hook, freeze masking and the optimizer state all live here
/// on rank 0, so the sharded run follows the exact single-process training
/// schedule — same seed, same batches, same updates.
///
/// In TCP mode the run is *elastic*: a peer that stops responding for
/// longer than the fault config's timeout is re-dialed within a bounded
/// window, and on confirmed loss its shard is deterministically re-split
/// over the survivors (see the crate docs for the failure model). Only
/// the `min_workers` floor or a handshake failure ends the run early.
///
/// `epoch_hook` observes each completed epoch's [`EpochStats`].
///
/// # Errors
///
/// [`DistError::Io`] when a peer cannot be reached during the initial
/// handshake; [`DistError::BelowMinWorkers`] when confirmed mid-run
/// losses shrink the run below `dist.min_workers`;
/// [`DistError::ShardPanicked`] when an in-process worker panics. The
/// model's masks and optimizer state are left at the last completed step.
///
/// # Panics
///
/// Panics on model/dataset shape mismatches.
pub fn train_with_sharded(
    donn: &mut Donn,
    data: &Dataset,
    opts: &TrainOptions,
    freeze: Option<&[Arc<Grid>]>,
    extra_grad: Option<ExtraGradFn<'_>>,
    dist: &DistConfig,
    epoch_hook: Option<EpochHookFn<'_>>,
) -> Result<Vec<EpochStats>, DistError> {
    if dist.peers.is_empty() {
        return try_train_with_grad_source(
            donn,
            data,
            opts,
            freeze,
            extra_grad,
            |donn, data, batch| sharded_gradients(donn, data, batch, freeze, dist),
            epoch_hook,
        );
    }

    let mut pool = TcpPool::connect(&dist.peers, donn.config(), data, freeze, dist.fault.clone())?;
    let stats = try_train_with_grad_source(
        donn,
        data,
        opts,
        freeze,
        extra_grad,
        |donn, data, batch| {
            pool.elastic_step(
                donn,
                data,
                batch,
                freeze,
                dist.threads_per_worker,
                dist.min_workers,
            )
        },
        epoch_hook,
    )?;
    pool.shutdown();
    Ok(stats)
}

/// [`train_with_sharded`] without freezing, extra forces or an epoch hook
/// — the plain data-parallel baseline path.
///
/// # Errors
///
/// Same conditions as [`train_with_sharded`].
pub fn train_sharded(
    donn: &mut Donn,
    data: &Dataset,
    opts: &TrainOptions,
    dist: &DistConfig,
) -> Result<Vec<EpochStats>, DistError> {
    train_with_sharded(donn, data, opts, None, None, dist, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostfile_parsing_skips_blanks_and_comments() {
        let text = "# chaos rig peers\n 127.0.0.1:9001 \n\n127.0.0.1:9002\n   # trailing note\n";
        assert_eq!(
            parse_hostfile(text),
            vec!["127.0.0.1:9001".to_string(), "127.0.0.1:9002".to_string()]
        );
        assert!(parse_hostfile("# only comments\n\n").is_empty());
    }

    #[test]
    fn hostfile_without_peers_is_a_loud_error() {
        let dir = std::env::temp_dir().join("photonn_hostfile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty_hosts");
        std::fs::write(&path, "# no peers here\n").unwrap();
        let err = load_hostfile(path.to_str().unwrap()).expect_err("empty hostfile must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
