//! The rank-0 ↔ peer gradient protocol: JSON documents over
//! length-prefixed frames ([`photonn_wire`]).
//!
//! The protocol is deliberately session-oriented and chatty-once: an
//! [`Message::Init`] handshake ships everything immutable — the full [`DonnConfig`]
//! (so the peer rebuilds the identical propagation kernel), the training
//! set, and any freeze masks — after which each step exchanges only the
//! current phase masks and a shard's index list one way and a
//! [`photonn_autodiff::MaskGrads`] buffer the other. Every `f64` travels
//! through the shared JSON codec, whose shortest-roundtrip serialization
//! parses back to identical bits — which is why a TCP shard reproduces an
//! in-process shard *bit for bit* and the all-reduce stays deterministic
//! across transports.

use photonn_autodiff::MaskGrads;
use photonn_donn::{DetectorConfig, DonnConfig, LossKind, MaskInit};
use photonn_math::{CGrid, Complex64, Grid};
use photonn_optics::{DiffractionModel, Distances, Geometry, KernelOptions, Padding};
use photonn_wire::Json;

/// Protocol revision; bumped on any wire-format change. The handshake
/// rejects mismatches loudly instead of mis-parsing silently.
/// (v2 added `heartbeat_ms` to `init` and the `heartbeat` message.)
pub const PROTOCOL_VERSION: usize = 2;

/// A message of the gradient protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Rank 0 → peer, once per session: model configuration, dataset and
    /// optional per-layer 0/1 freeze masks.
    Init {
        /// Full model/system configuration (kernel, detector, loss, …).
        config: DonnConfig,
        /// Training images, each `grid × grid`.
        images: Vec<Grid>,
        /// One label per image.
        labels: Vec<usize>,
        /// Optional per-layer freeze masks (frozen sparsity).
        freeze: Option<Vec<Grid>>,
        /// Liveness cadence the coordinator dictates: while computing a
        /// shard the peer emits a [`Message::Heartbeat`] every this many
        /// milliseconds so rank 0 can tell "slow" from "dead" in bounded
        /// time. `0` disables peer heartbeats (the pre-elastic behavior).
        heartbeat_ms: u64,
    },
    /// Peer → rank 0: handshake accepted.
    Ready,
    /// Peer → rank 0: still alive and computing — emitted between
    /// receiving a step and replying with its gradients, on the cadence
    /// the init handshake dictated. Carries no payload; its arrival *is*
    /// the information.
    Heartbeat,
    /// Rank 0 → peer, once per optimizer step: current masks plus this
    /// peer's shard (dataset indices) and the global batch size.
    Step {
        /// Current phase masks, one per layer.
        masks: Vec<Grid>,
        /// Dataset indices of this peer's shard.
        shard: Vec<usize>,
        /// Global batch size (the loss denominator).
        denom: usize,
    },
    /// Peer → rank 0: the shard's gradient contribution.
    Grads(MaskGrads),
    /// Rank 0 → peer: session over, exit the serve loop.
    Shutdown,
}

// --------------------------------------------------------------- encoding

fn grid_to_json(g: &Grid) -> Json {
    Json::numbers(g.as_slice())
}

fn grids_to_json(gs: &[Grid]) -> Json {
    Json::Arr(gs.iter().map(grid_to_json).collect())
}

fn cgrid_to_json(g: &CGrid) -> Json {
    let re: Vec<f64> = g.as_slice().iter().map(|z| z.re).collect();
    let im: Vec<f64> = g.as_slice().iter().map(|z| z.im).collect();
    Json::object(vec![
        ("re".into(), Json::numbers(&re)),
        ("im".into(), Json::numbers(&im)),
    ])
}

fn usizes_to_json(v: &[usize]) -> Json {
    Json::Arr(v.iter().map(|&u| Json::Num(u as f64)).collect())
}

/// Serializes a [`DonnConfig`] field by field. Every scalar survives the
/// JSON round trip bit-exactly, so the peer's rebuilt propagation kernel
/// is the same `f64`s as rank 0's.
pub fn config_to_json(c: &DonnConfig) -> Json {
    let model = match c.kernel_options.model {
        DiffractionModel::AngularSpectrum => "angular_spectrum",
        DiffractionModel::Fresnel => "fresnel",
    };
    let padding = match c.padding {
        Padding::None => Json::Str("none".into()),
        Padding::Double => Json::Str("double".into()),
        Padding::ToSize(n) => Json::Num(n as f64),
    };
    let loss = match c.loss {
        LossKind::MseSoftmax => "mse_softmax",
        LossKind::CrossEntropy => "cross_entropy",
    };
    let init = match c.init {
        MaskInit::Zeros => "zeros",
        MaskInit::UniformRandom => "uniform_random",
        MaskInit::SmoothRandom => "smooth_random",
    };
    Json::object(vec![
        ("grid".into(), Json::Num(c.geometry.grid as f64)),
        ("pixel_pitch".into(), Json::Num(c.geometry.pixel_pitch)),
        ("wavelength".into(), Json::Num(c.geometry.wavelength)),
        (
            "source_to_first".into(),
            Json::Num(c.distances.source_to_first),
        ),
        (
            "between_layers".into(),
            Json::Num(c.distances.between_layers),
        ),
        (
            "last_to_detector".into(),
            Json::Num(c.distances.last_to_detector),
        ),
        ("num_layers".into(), Json::Num(c.num_layers as f64)),
        (
            "num_classes".into(),
            Json::Num(c.detector.num_classes as f64),
        ),
        ("layout_rows".into(), Json::Num(c.detector.layout.0 as f64)),
        ("layout_cols".into(), Json::Num(c.detector.layout.1 as f64)),
        (
            "region_size".into(),
            Json::Num(c.detector.region_size as f64),
        ),
        ("diffraction_model".into(), Json::Str(model.into())),
        (
            "hard_evanescent_cutoff".into(),
            Json::Bool(c.kernel_options.hard_evanescent_cutoff),
        ),
        ("band_limit".into(), Json::Bool(c.kernel_options.band_limit)),
        ("padding".into(), padding),
        ("loss".into(), Json::Str(loss.into())),
        (
            "normalize_detector".into(),
            Json::Bool(c.normalize_detector),
        ),
        ("init".into(), Json::Str(init.into())),
    ])
}

/// Serializes a message to its wire JSON text.
pub fn encode(msg: &Message) -> String {
    let doc = match msg {
        Message::Init {
            config,
            images,
            labels,
            freeze,
            heartbeat_ms,
        } => {
            let mut fields = vec![
                ("type".into(), Json::Str("init".into())),
                ("protocol".into(), Json::Num(PROTOCOL_VERSION as f64)),
                ("heartbeat_ms".into(), Json::Num(*heartbeat_ms as f64)),
                ("config".into(), config_to_json(config)),
                ("labels".into(), usizes_to_json(labels)),
                ("images".into(), grids_to_json(images)),
            ];
            if let Some(fz) = freeze {
                fields.push(("freeze".into(), grids_to_json(fz)));
            }
            Json::object(fields)
        }
        Message::Ready => Json::object(vec![("type".into(), Json::Str("ready".into()))]),
        Message::Heartbeat => Json::object(vec![("type".into(), Json::Str("heartbeat".into()))]),
        Message::Step {
            masks,
            shard,
            denom,
        } => Json::object(vec![
            ("type".into(), Json::Str("step".into())),
            ("denom".into(), Json::Num(*denom as f64)),
            ("shard".into(), usizes_to_json(shard)),
            ("masks".into(), grids_to_json(masks)),
        ]),
        Message::Grads(mg) => Json::object(vec![
            ("type".into(), Json::Str("grads".into())),
            ("loss".into(), Json::Num(mg.loss)),
            ("samples".into(), Json::Num(mg.samples as f64)),
            (
                "layers".into(),
                Json::Arr(mg.wgrads.iter().map(cgrid_to_json).collect()),
            ),
        ]),
        Message::Shutdown => Json::object(vec![("type".into(), Json::Str("shutdown".into()))]),
    };
    doc.to_string()
}

/// Serializes one step message per shard, stringifying the (identical,
/// large) mask payload **once** instead of once per peer — the per-peer
/// difference is only the small shard-index list. Each returned string is
/// byte-identical to `encode(&Message::Step { .. })` for the same shard
/// (pinned by a unit test), so the peer-side decoder sees one format.
pub fn encode_steps(masks: &[Grid], shards: &[&[usize]], denom: usize) -> Vec<String> {
    let masks_json = grids_to_json(masks).to_string();
    shards
        .iter()
        .map(|shard| {
            format!(
                "{{\"type\":\"step\",\"denom\":{denom},\"shard\":{},\"masks\":{masks_json}}}",
                usizes_to_json(shard)
            )
        })
        .collect()
}

// --------------------------------------------------------------- decoding

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing \"{key}\""))
}

fn num_field(doc: &Json, key: &str) -> Result<f64, String> {
    field(doc, key)?
        .as_f64()
        .ok_or_else(|| format!("\"{key}\" is not a number"))
}

fn usize_field(doc: &Json, key: &str) -> Result<usize, String> {
    field(doc, key)?
        .as_usize()
        .ok_or_else(|| format!("\"{key}\" is not a non-negative integer"))
}

fn bool_field(doc: &Json, key: &str) -> Result<bool, String> {
    match field(doc, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("\"{key}\" is not a boolean")),
    }
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    field(doc, key)?
        .as_str()
        .ok_or_else(|| format!("\"{key}\" is not a string"))
}

fn numbers(value: &Json, what: &str) -> Result<Vec<f64>, String> {
    value
        .as_array()
        .ok_or_else(|| format!("{what} is not an array"))?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| format!("{what} holds a non-number"))
        })
        .collect()
}

fn grid_from_json(value: &Json, n: usize, what: &str) -> Result<Grid, String> {
    let data = numbers(value, what)?;
    if data.len() != n * n {
        return Err(format!(
            "{what} has {} values, expected {}",
            data.len(),
            n * n
        ));
    }
    Ok(Grid::from_vec(n, n, data))
}

fn grids_from_json(value: &Json, n: usize, what: &str) -> Result<Vec<Grid>, String> {
    value
        .as_array()
        .ok_or_else(|| format!("{what} is not an array"))?
        .iter()
        .map(|v| grid_from_json(v, n, what))
        .collect()
}

fn cgrid_from_json(value: &Json, n: usize) -> Result<CGrid, String> {
    let re = numbers(field(value, "re")?, "layer re plane")?;
    let im = numbers(field(value, "im")?, "layer im plane")?;
    if re.len() != n * n || im.len() != re.len() {
        return Err("gradient plane size mismatch".into());
    }
    let data: Vec<Complex64> = re
        .into_iter()
        .zip(im)
        .map(|(re, im)| Complex64 { re, im })
        .collect();
    Ok(CGrid::from_vec(n, n, data))
}

fn usizes_from_json(value: &Json, what: &str) -> Result<Vec<usize>, String> {
    value
        .as_array()
        .ok_or_else(|| format!("{what} is not an array"))?
        .iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| format!("{what} holds a non-index"))
        })
        .collect()
}

/// Parses a [`DonnConfig`] from its [`config_to_json`] form.
///
/// # Errors
///
/// Returns a description of the first missing or ill-typed field.
pub fn config_from_json(doc: &Json) -> Result<DonnConfig, String> {
    let model = match str_field(doc, "diffraction_model")? {
        "angular_spectrum" => DiffractionModel::AngularSpectrum,
        "fresnel" => DiffractionModel::Fresnel,
        other => return Err(format!("unknown diffraction model \"{other}\"")),
    };
    let padding = match field(doc, "padding")? {
        Json::Str(s) if s == "none" => Padding::None,
        Json::Str(s) if s == "double" => Padding::Double,
        Json::Num(_) => Padding::ToSize(usize_field(doc, "padding")?),
        other => return Err(format!("unknown padding {other}")),
    };
    let loss = match str_field(doc, "loss")? {
        "mse_softmax" => LossKind::MseSoftmax,
        "cross_entropy" => LossKind::CrossEntropy,
        other => return Err(format!("unknown loss kind \"{other}\"")),
    };
    let init = match str_field(doc, "init")? {
        "zeros" => MaskInit::Zeros,
        "uniform_random" => MaskInit::UniformRandom,
        "smooth_random" => MaskInit::SmoothRandom,
        other => return Err(format!("unknown mask init \"{other}\"")),
    };
    Ok(DonnConfig {
        geometry: Geometry::new(
            usize_field(doc, "grid")?,
            num_field(doc, "pixel_pitch")?,
            num_field(doc, "wavelength")?,
        ),
        distances: Distances {
            source_to_first: num_field(doc, "source_to_first")?,
            between_layers: num_field(doc, "between_layers")?,
            last_to_detector: num_field(doc, "last_to_detector")?,
        },
        num_layers: usize_field(doc, "num_layers")?,
        detector: DetectorConfig {
            num_classes: usize_field(doc, "num_classes")?,
            layout: (
                usize_field(doc, "layout_rows")?,
                usize_field(doc, "layout_cols")?,
            ),
            region_size: usize_field(doc, "region_size")?,
        },
        kernel_options: KernelOptions {
            model,
            hard_evanescent_cutoff: bool_field(doc, "hard_evanescent_cutoff")?,
            band_limit: bool_field(doc, "band_limit")?,
        },
        padding,
        loss,
        normalize_detector: bool_field(doc, "normalize_detector")?,
        init,
    })
}

/// Parses one wire message. `grid` sizes every shipped plane; the [`Init`]
/// message carries its own grid inside the config, so pass the *expected*
/// grid (from the listener's own state, or the config itself when first
/// decoding an init).
///
/// [`Init`]: Message::Init
///
/// # Errors
///
/// Returns a description of the first structural problem (unknown type,
/// missing field, size mismatch, protocol version skew).
pub fn decode(text: &str, grid: Option<usize>) -> Result<Message, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    match str_field(&doc, "type")? {
        "init" => {
            let protocol = usize_field(&doc, "protocol")?;
            if protocol != PROTOCOL_VERSION {
                return Err(format!(
                    "protocol version {protocol}, this build speaks {PROTOCOL_VERSION}"
                ));
            }
            let config = config_from_json(field(&doc, "config")?)?;
            let n = config.grid();
            if let Some(expected) = grid {
                if n != expected {
                    return Err(format!("init for grid {n}, expected {expected}"));
                }
            }
            let labels = usizes_from_json(field(&doc, "labels")?, "labels")?;
            let images = grids_from_json(field(&doc, "images")?, n, "image")?;
            if images.len() != labels.len() {
                return Err("images/labels length mismatch".into());
            }
            let freeze = match doc.get("freeze") {
                Some(v) => Some(grids_from_json(v, n, "freeze mask")?),
                None => None,
            };
            let heartbeat_ms = num_field(&doc, "heartbeat_ms")? as u64;
            Ok(Message::Init {
                config,
                images,
                labels,
                freeze,
                heartbeat_ms,
            })
        }
        "ready" => Ok(Message::Ready),
        "heartbeat" => Ok(Message::Heartbeat),
        "step" => {
            let n = grid.ok_or("step before init")?;
            Ok(Message::Step {
                denom: usize_field(&doc, "denom")?,
                shard: usizes_from_json(field(&doc, "shard")?, "shard")?,
                masks: grids_from_json(field(&doc, "masks")?, n, "mask")?,
            })
        }
        "grads" => {
            let n = grid.ok_or("grads before init")?;
            let layers = field(&doc, "layers")?
                .as_array()
                .ok_or("\"layers\" is not an array")?
                .iter()
                .map(|v| cgrid_from_json(v, n))
                .collect::<Result<Vec<CGrid>, String>>()?;
            Ok(Message::Grads(MaskGrads {
                wgrads: layers,
                loss: num_field(&doc, "loss")?,
                samples: usize_field(&doc, "samples")?,
            }))
        }
        "shutdown" => Ok(Message::Shutdown),
        other => Err(format!("unknown message type \"{other}\"")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_math::Rng;

    fn noisy_grid(n: usize, rng: &mut Rng) -> Grid {
        Grid::from_fn(n, n, |_, _| rng.uniform_in(-3.0, 3.0))
    }

    #[test]
    fn config_roundtrips_every_field() {
        let mut cfg = DonnConfig::scaled(20);
        cfg.loss = LossKind::CrossEntropy;
        cfg.padding = Padding::ToSize(40);
        cfg.kernel_options.band_limit = true;
        cfg.init = MaskInit::UniformRandom;
        let back = config_from_json(&config_to_json(&cfg)).unwrap();
        assert_eq!(back, cfg);
        // And the paper config, including its exact f64 geometry.
        let paper = DonnConfig::paper();
        assert_eq!(config_from_json(&config_to_json(&paper)).unwrap(), paper);
    }

    #[test]
    fn init_roundtrips_with_and_without_freeze() {
        let mut rng = Rng::seed_from(9);
        let cfg = DonnConfig::scaled(16);
        let msg = Message::Init {
            config: cfg,
            images: vec![noisy_grid(16, &mut rng), noisy_grid(16, &mut rng)],
            labels: vec![3, 7],
            freeze: Some(vec![Grid::full(16, 16, 1.0); 3]),
            heartbeat_ms: 250,
        };
        assert_eq!(decode(&encode(&msg), None).unwrap(), msg);
        let bare = Message::Init {
            config: cfg,
            images: vec![noisy_grid(16, &mut rng)],
            labels: vec![0],
            freeze: None,
            heartbeat_ms: 0,
        };
        assert_eq!(decode(&encode(&bare), Some(16)).unwrap(), bare);
    }

    #[test]
    fn step_and_grads_roundtrip_bit_exactly() {
        let mut rng = Rng::seed_from(4);
        let step = Message::Step {
            masks: vec![noisy_grid(8, &mut rng); 3],
            shard: vec![5, 1, 9],
            denom: 12,
        };
        assert_eq!(decode(&encode(&step), Some(8)).unwrap(), step);

        let grads = Message::Grads(MaskGrads {
            wgrads: vec![CGrid::from_fn(8, 8, |r, c| Complex64 {
                re: (r as f64 + 0.1) / 3.0,
                im: -(c as f64) / 7.0,
            })],
            loss: 0.1 + 0.2, // a value whose decimal form needs full precision
            samples: 3,
        });
        let decoded = decode(&encode(&grads), Some(8)).unwrap();
        match (&decoded, &grads) {
            (Message::Grads(a), Message::Grads(b)) => {
                assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "loss bits");
                assert_eq!(a.wgrads, b.wgrads);
                assert_eq!(a.samples, b.samples);
            }
            // Name what actually arrived so a chaos-test failure is
            // diagnosable straight from the CI log.
            (other, _) => panic!("expected Message::Grads back, decoded {other:?}"),
        }
    }

    #[test]
    fn encode_steps_is_byte_identical_to_per_message_encode() {
        let mut rng = Rng::seed_from(6);
        let masks = vec![noisy_grid(8, &mut rng), noisy_grid(8, &mut rng)];
        let batch: Vec<usize> = (0..7).collect();
        let shards: Vec<&[usize]> = vec![&batch[0..4], &batch[4..7]];
        let texts = encode_steps(&masks, &shards, 7);
        assert_eq!(texts.len(), 2);
        for (text, shard) in texts.iter().zip(&shards) {
            let expected = encode(&Message::Step {
                masks: masks.clone(),
                shard: shard.to_vec(),
                denom: 7,
            });
            assert_eq!(text, &expected);
        }
    }

    #[test]
    fn control_messages_roundtrip() {
        for msg in [Message::Ready, Message::Heartbeat, Message::Shutdown] {
            assert_eq!(decode(&encode(&msg), None).unwrap(), msg);
        }
    }

    #[test]
    fn malformed_messages_rejected() {
        assert!(decode("{}", None).is_err(), "missing type");
        assert!(decode("{\"type\":\"warp\"}", None).is_err(), "unknown type");
        assert!(
            decode(
                "{\"type\":\"step\",\"denom\":4,\"shard\":[0],\"masks\":[[1.0]]}",
                Some(2)
            )
            .is_err(),
            "wrong mask size"
        );
        assert!(
            decode(
                "{\"type\":\"step\",\"denom\":4,\"shard\":[0],\"masks\":[[1.0]]}",
                None
            )
            .is_err(),
            "step before init"
        );
        // Protocol skew on init.
        let cfg = DonnConfig::scaled(16);
        let text = encode(&Message::Init {
            config: cfg,
            images: vec![],
            labels: vec![],
            freeze: None,
            heartbeat_ms: 0,
        })
        .replace(
            &format!("\"protocol\":{PROTOCOL_VERSION}"),
            "\"protocol\":99",
        );
        assert!(decode(&text, None).is_err(), "protocol skew");
    }
}
