//! The in-process worker pool: one scoped thread per shard, each owning
//! its own batched tape, plus the all-reduce that folds the per-shard
//! buffers back into one optimizer-ready gradient.

use photonn_autodiff::MaskGrads;
use photonn_datasets::Dataset;
use photonn_donn::train::shard_gradients;
use photonn_donn::Donn;
use photonn_math::Grid;
use std::sync::Arc;

use crate::shard::shard_batch;

/// Computes every shard's [`MaskGrads`] for one mini-batch on in-process
/// worker threads — one thread per shard, each building its own tape with
/// the global batch size as the loss denominator, each spreading its FFT
/// work over `threads_per_worker` chunk threads. Results come back in
/// shard order regardless of completion order, so the downstream reduce is
/// deterministic.
///
/// # Panics
///
/// Panics if `batch` is empty, or propagates a worker panic.
pub fn in_process_shard_grads(
    donn: &Donn,
    data: &Dataset,
    batch: &[usize],
    freeze: Option<&[Arc<Grid>]>,
    workers: usize,
    threads_per_worker: usize,
) -> Vec<MaskGrads> {
    assert!(!batch.is_empty(), "empty batch");
    let shards = shard_batch(batch, workers);
    let denom = batch.len();
    if shards.len() == 1 {
        // Degenerate pool: no thread spawn, identical arithmetic.
        let _span = photonn_trace::span("dist.shard_compute");
        return vec![shard_gradients(
            donn,
            data,
            shards[0],
            freeze,
            threads_per_worker,
            denom,
        )];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|&shard| {
                scope.spawn(move || {
                    let _span = photonn_trace::span("dist.shard_compute");
                    shard_gradients(donn, data, shard, freeze, threads_per_worker, denom)
                })
            })
            .collect();
        // The join is the all-reduce wait: rank 0 idles here until the
        // slowest shard finishes.
        let _wait = photonn_trace::span("dist.allreduce_wait");
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// The all-reduce: combines per-shard buffers (in shard order) with the
/// tape's midpoint tree and projects the total to real phase gradients.
/// Returns `(per-layer gradients, batch mean loss)` in the
/// [`photonn_donn::train::batched_gradients`] contract. Because every
/// shard was built against the global denominator, the weighted-by-shard-
/// size mean is exactly this plain sum — no reweighting step exists to
/// introduce extra rounding.
///
/// # Panics
///
/// Panics if `parts` is empty or shapes mismatch.
pub fn all_reduce(
    parts: Vec<MaskGrads>,
    masks: &[Grid],
    freeze: Option<&[Arc<Grid>]>,
) -> (Vec<Grid>, f64) {
    let _span = photonn_trace::span("dist.apply");
    let total = MaskGrads::tree_reduce(parts);
    let grads = total.phase_gradients(masks, freeze);
    (grads, total.loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_datasets::Family;
    use photonn_donn::train::batched_gradients;
    use photonn_donn::DonnConfig;
    use photonn_math::Rng;

    fn setup(n: usize, samples: usize, seed: u64) -> (Donn, Dataset) {
        let donn = Donn::random(DonnConfig::scaled(n), &mut Rng::seed_from(seed));
        let data = Dataset::synthetic(Family::Mnist, samples, seed).resized(n);
        (donn, data)
    }

    #[test]
    fn two_equal_shards_are_bit_identical_to_single_tape() {
        let (donn, data) = setup(16, 8, 11);
        let batch: Vec<usize> = (0..8).collect();
        let (reference, ref_loss) = batched_gradients(&donn, &data, &batch, None, 1);
        for workers in [1usize, 2, 4, 8] {
            let parts = in_process_shard_grads(&donn, &data, &batch, None, workers, 1);
            let (grads, loss) = all_reduce(parts, donn.masks(), None);
            assert_eq!(grads, reference, "{workers} equal power-of-two shards");
            // The loss scalar is a diagnostic: each shard folds its own
            // rows before the cross-shard sum, so it is reassociation-equal
            // only — the determinism contract covers the gradients.
            assert!((loss - ref_loss).abs() < 1e-12, "{workers} workers loss");
        }
    }

    #[test]
    fn ragged_shards_match_single_tape_to_tolerance() {
        let (donn, data) = setup(16, 7, 12);
        let batch: Vec<usize> = (0..7).collect();
        let (reference, ref_loss) = batched_gradients(&donn, &data, &batch, None, 1);
        for workers in [2usize, 3, 5, 7, 9] {
            let parts = in_process_shard_grads(&donn, &data, &batch, None, workers, 1);
            let (grads, loss) = all_reduce(parts, donn.masks(), None);
            assert!((loss - ref_loss).abs() < 1e-12, "{workers} workers");
            for (g, r) in grads.iter().zip(&reference) {
                let diff = g.max_abs_diff(r);
                assert!(diff < 1e-12, "{workers} workers: {diff}");
            }
        }
    }

    #[test]
    fn result_is_invariant_to_worker_thread_count() {
        let (donn, data) = setup(16, 6, 13);
        let batch: Vec<usize> = (0..6).collect();
        let base = {
            let parts = in_process_shard_grads(&donn, &data, &batch, None, 3, 1);
            all_reduce(parts, donn.masks(), None)
        };
        for threads in [2usize, 4] {
            let parts = in_process_shard_grads(&donn, &data, &batch, None, 3, threads);
            let got = all_reduce(parts, donn.masks(), None);
            assert_eq!(got, base, "{threads} threads per worker");
        }
    }
}
