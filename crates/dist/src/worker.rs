//! The in-process worker pool: one scoped thread per shard, each owning
//! its own batched tape, plus the all-reduce that folds the per-shard
//! buffers back into one optimizer-ready gradient.

use photonn_autodiff::MaskGrads;
use photonn_datasets::Dataset;
use photonn_donn::train::shard_gradients;
use photonn_donn::Donn;
use photonn_math::Grid;
use std::sync::Arc;

use crate::shard::shard_batch;
use crate::train::DistError;

/// Renders a worker thread's panic payload for [`DistError::ShardPanicked`]
/// — `&str` and `String` payloads verbatim (the overwhelmingly common
/// case: `assert!`/`panic!` messages), anything else by type opacity.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Computes every shard's [`MaskGrads`] for one mini-batch on in-process
/// worker threads — one thread per shard, each building its own tape with
/// the global batch size as the loss denominator, each spreading its FFT
/// work over `threads_per_worker` chunk threads. Results come back in
/// shard order regardless of completion order, so the downstream reduce is
/// deterministic.
///
/// # Errors
///
/// A worker thread that panics (a shape mismatch surfacing inside the
/// tape, say) is reported as [`DistError::ShardPanicked`] naming the shard
/// and carrying the panic message — every other worker is still joined
/// first, so no thread outlives the call.
///
/// # Panics
///
/// Panics if `batch` is empty.
pub fn in_process_shard_grads(
    donn: &Donn,
    data: &Dataset,
    batch: &[usize],
    freeze: Option<&[Arc<Grid>]>,
    workers: usize,
    threads_per_worker: usize,
) -> Result<Vec<MaskGrads>, DistError> {
    assert!(!batch.is_empty(), "empty batch");
    let shards = shard_batch(batch, workers);
    let denom = batch.len();
    if shards.len() == 1 {
        // Degenerate pool: no thread spawn, identical arithmetic.
        let _span = photonn_trace::span("dist.shard_compute");
        return Ok(vec![shard_gradients(
            donn,
            data,
            shards[0],
            freeze,
            threads_per_worker,
            denom,
        )]);
    }
    let joined: Vec<Result<MaskGrads, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|&shard| {
                scope.spawn(move || {
                    let _span = photonn_trace::span("dist.shard_compute");
                    shard_gradients(donn, data, shard, freeze, threads_per_worker, denom)
                })
            })
            .collect();
        // The join is the all-reduce wait: rank 0 idles here until the
        // slowest shard finishes. Every handle is joined even when an
        // early one panicked, so a failure never leaves threads running
        // (and `scope` never sees an unconsumed panic to re-raise).
        let _wait = photonn_trace::span("dist.allreduce_wait");
        handles
            .into_iter()
            .map(|h| h.join().map_err(panic_message))
            .collect()
    });
    joined
        .into_iter()
        .enumerate()
        .map(|(shard, r)| r.map_err(|message| DistError::ShardPanicked { shard, message }))
        .collect()
}

/// The all-reduce: combines per-shard buffers (in shard order) with the
/// tape's midpoint tree and projects the total to real phase gradients.
/// Returns `(per-layer gradients, batch mean loss)` in the
/// [`photonn_donn::train::batched_gradients`] contract. Because every
/// shard was built against the global denominator, the weighted-by-shard-
/// size mean is exactly this plain sum — no reweighting step exists to
/// introduce extra rounding.
///
/// # Panics
///
/// Panics if `parts` is empty or shapes mismatch.
pub fn all_reduce(
    parts: Vec<MaskGrads>,
    masks: &[Grid],
    freeze: Option<&[Arc<Grid>]>,
) -> (Vec<Grid>, f64) {
    let _span = photonn_trace::span("dist.apply");
    let total = MaskGrads::tree_reduce(parts);
    let grads = total.phase_gradients(masks, freeze);
    (grads, total.loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_datasets::Family;
    use photonn_donn::train::batched_gradients;
    use photonn_donn::DonnConfig;
    use photonn_math::Rng;

    fn setup(n: usize, samples: usize, seed: u64) -> (Donn, Dataset) {
        let donn = Donn::random(DonnConfig::scaled(n), &mut Rng::seed_from(seed));
        let data = Dataset::synthetic(Family::Mnist, samples, seed).resized(n);
        (donn, data)
    }

    #[test]
    fn two_equal_shards_are_bit_identical_to_single_tape() {
        let (donn, data) = setup(16, 8, 11);
        let batch: Vec<usize> = (0..8).collect();
        let (reference, ref_loss) = batched_gradients(&donn, &data, &batch, None, 1);
        for workers in [1usize, 2, 4, 8] {
            let parts = in_process_shard_grads(&donn, &data, &batch, None, workers, 1)
                .expect("healthy shards");
            let (grads, loss) = all_reduce(parts, donn.masks(), None);
            assert_eq!(grads, reference, "{workers} equal power-of-two shards");
            // The loss scalar is a diagnostic: each shard folds its own
            // rows before the cross-shard sum, so it is reassociation-equal
            // only — the determinism contract covers the gradients.
            assert!((loss - ref_loss).abs() < 1e-12, "{workers} workers loss");
        }
    }

    #[test]
    fn ragged_shards_match_single_tape_to_tolerance() {
        let (donn, data) = setup(16, 7, 12);
        let batch: Vec<usize> = (0..7).collect();
        let (reference, ref_loss) = batched_gradients(&donn, &data, &batch, None, 1);
        for workers in [2usize, 3, 5, 7, 9] {
            let parts = in_process_shard_grads(&donn, &data, &batch, None, workers, 1)
                .expect("healthy shards");
            let (grads, loss) = all_reduce(parts, donn.masks(), None);
            assert!((loss - ref_loss).abs() < 1e-12, "{workers} workers");
            for (g, r) in grads.iter().zip(&reference) {
                let diff = g.max_abs_diff(r);
                assert!(diff < 1e-12, "{workers} workers: {diff}");
            }
        }
    }

    #[test]
    fn result_is_invariant_to_worker_thread_count() {
        let (donn, data) = setup(16, 6, 13);
        let batch: Vec<usize> = (0..6).collect();
        let base = {
            let parts =
                in_process_shard_grads(&donn, &data, &batch, None, 3, 1).expect("healthy shards");
            all_reduce(parts, donn.masks(), None)
        };
        for threads in [2usize, 4] {
            let parts = in_process_shard_grads(&donn, &data, &batch, None, 3, threads)
                .expect("healthy shards");
            let got = all_reduce(parts, donn.masks(), None);
            assert_eq!(got, base, "{threads} threads per worker");
        }
    }

    #[test]
    fn shard_panic_surfaces_as_typed_error_naming_the_shard() {
        // An out-of-range dataset index makes exactly one worker panic;
        // the pool must report it as ShardPanicked, not a nested panic.
        let (donn, data) = setup(16, 4, 14);
        let batch: Vec<usize> = vec![0, 1, 2, 999];
        let err = in_process_shard_grads(&donn, &data, &batch, None, 2, 1)
            .expect_err("shard 1 holds the bad index");
        match err {
            DistError::ShardPanicked { shard, message } => {
                assert_eq!(shard, 1, "bad index lives in the second shard");
                assert!(!message.is_empty(), "panic message captured");
            }
            other => panic!("expected ShardPanicked, got {other:?}"),
        }
    }
}
