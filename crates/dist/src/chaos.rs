//! Deterministic fault injection for the TCP transport: a frame-aware
//! proxy that sits between rank 0 and one peer and misbehaves on cue.
//!
//! Tests spawn one [`ChaosProxy`] per peer and hand rank 0 the proxy
//! addresses instead of the real ones. The proxy forwards whole protocol
//! frames (it understands the 4-byte length prefix and sniffs the JSON
//! `"type"` field, nothing more) and consults a [`ChaosSchedule`] before
//! forwarding each one. Because events are keyed on *(direction, message
//! type, occurrence)* rather than raw frame counts, a schedule keeps
//! targeting the same protocol moment even when recovery traffic (extra
//! init handshakes after a reconnect) shifts the absolute frame sequence —
//! which is what makes chaos runs reproducible enough to assert
//! bit-identical masks.
//!
//! Failure is injected exclusively through *closed connections and closed
//! sessions*, never through timers racing the transport's timeouts, so a
//! chaos test's outcome does not depend on scheduler timing:
//!
//! * [`ChaosAction::DropConnection`] / [`ChaosAction::Truncate`] sever one
//!   connection (the latter after leaking a torn frame); rank 0 sees an
//!   immediate EOF/decode error and its reconnect succeeds on the first
//!   re-dial because the proxy keeps listening.
//! * [`ChaosAction::KillPeer`] additionally poisons the proxy: every later
//!   accepted connection is shut down on sight. The port stays *bound* (so
//!   the OS cannot recycle it for an unrelated test listener) but no
//!   session can ever be re-established — reconnects fail deterministically
//!   and the peer is confirmed lost as soon as the reconnect window closes.
//! * [`ChaosAction::DelayMs`] holds a frame briefly — exercising the
//!   heartbeat/timeout plumbing without approaching any deadline.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use photonn_math::Rng;

/// Which way a frame is travelling through the proxy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Rank 0 → peer (init, step, shutdown frames).
    ToPeer,
    /// Peer → rank 0 (ready, heartbeat, grads frames).
    FromPeer,
}

/// What to do to a matched frame instead of forwarding it faithfully.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Sever this connection without forwarding the frame. Recoverable:
    /// the proxy keeps listening, so rank 0's first re-dial restores the
    /// session.
    DropConnection,
    /// Hold the frame for this many milliseconds, then forward it intact.
    DelayMs(u64),
    /// Forward the length prefix and half the payload, then sever the
    /// connection — the receiver sees a torn frame (mid-frame EOF).
    /// Recoverable, like [`ChaosAction::DropConnection`].
    Truncate,
    /// Sever the connection *and* refuse every future session: the peer
    /// is gone for good as far as rank 0 can ever observe.
    KillPeer,
}

/// One scheduled misbehavior: fires on the `occurrence`-th frame (0-based,
/// counted over the proxy's whole lifetime, across reconnections) of the
/// given type travelling in the given direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Frame direction to match.
    pub direction: Direction,
    /// Protocol message type to match (`"step"`, `"grads"`, `"init"`, …),
    /// as sniffed from the frame's JSON `"type"` field.
    pub message_type: String,
    /// Which matching frame fires the event, 0-based.
    pub occurrence: usize,
    /// What happens to that frame.
    pub action: ChaosAction,
}

/// A full injection schedule. Each event fires at most once; unmatched
/// frames pass through untouched.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ChaosSchedule {
    /// The events, in no particular order (matching is by key, not rank).
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// A schedule with the given events.
    pub fn new(events: Vec<ChaosEvent>) -> Self {
        ChaosSchedule { events }
    }

    /// The empty schedule: a faithful byte-for-byte proxy.
    pub fn passthrough() -> Self {
        ChaosSchedule::default()
    }

    /// Draws `events` *recoverable* misbehaviors (drops, delays,
    /// truncations aimed at step/grads traffic — never [`KillPeer`]) from
    /// a seeded [`photonn_math::Rng`]. The same seed always yields the
    /// same schedule, and because every drawn action is recoverable, a
    /// training run behind any seeded schedule must still produce
    /// bit-identical masks to an undisturbed run.
    ///
    /// [`KillPeer`]: ChaosAction::KillPeer
    pub fn seeded(seed: u64, events: usize) -> Self {
        let mut rng = Rng::seed_from(seed);
        let drawn = (0..events)
            .map(|_| {
                let (direction, message_type) = if rng.below(2) == 0 {
                    (Direction::ToPeer, "step")
                } else {
                    (Direction::FromPeer, "grads")
                };
                let action = match rng.below(3) {
                    0 => ChaosAction::DropConnection,
                    1 => ChaosAction::DelayMs(5 + 5 * rng.below(4) as u64),
                    _ => ChaosAction::Truncate,
                };
                ChaosEvent {
                    direction,
                    message_type: message_type.to_string(),
                    occurrence: rng.below(6),
                    action,
                }
            })
            .collect();
        ChaosSchedule { events: drawn }
    }
}

/// Occurrence counters plus the not-yet-fired events, shared by the pump
/// threads of every connection the proxy ever accepts.
struct ScheduleState {
    counts: HashMap<(Direction, String), usize>,
    events: Vec<(ChaosEvent, bool)>,
}

impl ScheduleState {
    fn new(schedule: ChaosSchedule) -> Self {
        ScheduleState {
            counts: HashMap::new(),
            events: schedule.events.into_iter().map(|e| (e, false)).collect(),
        }
    }

    /// Counts one frame and returns the action of the first unfired event
    /// it matches, marking that event fired.
    fn action_for(&mut self, direction: Direction, message_type: &str) -> Option<ChaosAction> {
        let count = self
            .counts
            .entry((direction, message_type.to_string()))
            .or_insert(0);
        let occurrence = *count;
        *count += 1;
        for (event, fired) in &mut self.events {
            if !*fired
                && event.direction == direction
                && event.message_type == message_type
                && event.occurrence == occurrence
            {
                *fired = true;
                return Some(event.action.clone());
            }
        }
        None
    }
}

/// A chaos proxy for one peer: listens on an ephemeral loopback port,
/// relays framed traffic to `upstream`, and applies its schedule. Dropping
/// the proxy stops the accept loop and releases the port.
pub struct ChaosProxy {
    addr: SocketAddr,
    killed: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a fresh loopback port and starts proxying to `upstream`
    /// (the real peer's `host:port`).
    ///
    /// # Errors
    ///
    /// Returns errors from binding the listener.
    pub fn spawn(upstream: String, schedule: ChaosSchedule) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let killed = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new(ScheduleState::new(schedule)));
        let accept_thread = {
            let (killed, stop) = (Arc::clone(&killed), Arc::clone(&stop));
            std::thread::spawn(move || accept_loop(listener, upstream, state, killed, stop))
        };
        Ok(ChaosProxy {
            addr,
            killed,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address rank 0 should dial instead of the real peer.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// `true` once a [`ChaosAction::KillPeer`] event has fired.
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Accepts connections until stopped. A killed proxy keeps the port bound
/// but shuts every new connection on sight, so re-dials fail immediately
/// and deterministically (and the port cannot be recycled mid-test).
fn accept_loop(
    listener: TcpListener,
    upstream: String,
    state: Arc<Mutex<ScheduleState>>,
    killed: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                if killed.load(Ordering::SeqCst) {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                if let Err(e) = serve_connection(client, &upstream, &state, &killed) {
                    eprintln!("chaos proxy: connection setup failed: {e}");
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("chaos proxy: accept failed: {e}");
                return;
            }
        }
    }
}

/// Dials upstream for a freshly accepted client and starts the two pump
/// threads (one per direction). The pumps own stream clones and exit when
/// either side closes or an action severs the connection.
fn serve_connection(
    client: TcpStream,
    upstream: &str,
    state: &Arc<Mutex<ScheduleState>>,
    killed: &Arc<AtomicBool>,
) -> io::Result<()> {
    client.set_nonblocking(false)?;
    client.set_nodelay(true)?;
    let peer = TcpStream::connect(upstream)?;
    peer.set_nodelay(true)?;
    for (direction, src, dst) in [
        (Direction::ToPeer, client.try_clone()?, peer.try_clone()?),
        (Direction::FromPeer, peer, client),
    ] {
        let state = Arc::clone(state);
        let killed = Arc::clone(killed);
        std::thread::spawn(move || pump(src, dst, direction, state, killed));
    }
    Ok(())
}

/// Reads one raw frame (length prefix + payload). `Ok(None)` means the
/// stream closed cleanly at a frame boundary.
fn read_raw_frame(src: &mut TcpStream) -> io::Result<Option<([u8; 4], Vec<u8>)>> {
    let mut prefix = [0u8; 4];
    match src.read(&mut prefix)? {
        0 => return Ok(None),
        n => src.read_exact(&mut prefix[n..])?,
    }
    let len = u32::from_le_bytes(prefix) as usize;
    let mut payload = vec![0u8; len];
    src.read_exact(&mut payload)?;
    Ok(Some((prefix, payload)))
}

/// Extracts the protocol message type from a frame's JSON payload. The
/// proxy only needs the `"type"` field, so a substring scan is enough —
/// no full JSON parse, no dependency on field order.
fn sniff_type(payload: &[u8]) -> String {
    let text = String::from_utf8_lossy(payload);
    if let Some(at) = text.find("\"type\":\"") {
        let rest = &text[at + 8..];
        if let Some(end) = rest.find('"') {
            return rest[..end].to_string();
        }
    }
    "unknown".to_string()
}

/// Forwards frames from `src` to `dst`, applying scheduled actions.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    direction: Direction,
    state: Arc<Mutex<ScheduleState>>,
    killed: Arc<AtomicBool>,
) {
    let sever = |a: &TcpStream, b: &TcpStream| {
        let _ = a.shutdown(Shutdown::Both);
        let _ = b.shutdown(Shutdown::Both);
    };
    loop {
        let (prefix, payload) = match read_raw_frame(&mut src) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => {
                // One side hung up (or was severed by the other pump):
                // propagate the close and retire.
                sever(&src, &dst);
                return;
            }
        };
        let message_type = sniff_type(&payload);
        let action = state
            .lock()
            .expect("chaos schedule lock")
            .action_for(direction, &message_type);
        match action {
            None => {}
            Some(ChaosAction::DelayMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(ChaosAction::DropConnection) => {
                sever(&src, &dst);
                return;
            }
            Some(ChaosAction::Truncate) => {
                let _ = dst.write_all(&prefix);
                let _ = dst.write_all(&payload[..payload.len() / 2]);
                sever(&src, &dst);
                return;
            }
            Some(ChaosAction::KillPeer) => {
                killed.store(true, Ordering::SeqCst);
                sever(&src, &dst);
                return;
            }
        }
        if dst.write_all(&prefix).is_err() || dst.write_all(&payload).is_err() {
            sever(&src, &dst);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedules_are_reproducible_and_seed_sensitive() {
        let a = ChaosSchedule::seeded(42, 5);
        let b = ChaosSchedule::seeded(42, 5);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.events.len(), 5);
        let c = ChaosSchedule::seeded(43, 5);
        assert_ne!(a, c, "different seed, different schedule");
        for event in &a.events {
            assert_ne!(
                event.action,
                ChaosAction::KillPeer,
                "seeded schedules draw only recoverable actions"
            );
        }
    }

    #[test]
    fn occurrence_matching_is_keyed_not_positional() {
        let mut state = ScheduleState::new(ChaosSchedule::new(vec![ChaosEvent {
            direction: Direction::ToPeer,
            message_type: "step".to_string(),
            occurrence: 1,
            action: ChaosAction::DropConnection,
        }]));
        // Interleaved inits and grads do not advance the step counter.
        assert_eq!(state.action_for(Direction::ToPeer, "init"), None);
        assert_eq!(state.action_for(Direction::ToPeer, "step"), None);
        assert_eq!(state.action_for(Direction::FromPeer, "grads"), None);
        assert_eq!(state.action_for(Direction::ToPeer, "init"), None);
        assert_eq!(
            state.action_for(Direction::ToPeer, "step"),
            Some(ChaosAction::DropConnection),
            "second step frame fires the event"
        );
        // Events fire at most once.
        assert_eq!(state.action_for(Direction::ToPeer, "step"), None);
    }

    #[test]
    fn type_sniffing_reads_the_json_type_field() {
        assert_eq!(sniff_type(br#"{"type":"step","denom":8}"#), "step");
        assert_eq!(sniff_type(br#"{"protocol":2,"type":"grads"}"#), "grads");
        assert_eq!(sniff_type(b"not json at all"), "unknown");
    }
}
