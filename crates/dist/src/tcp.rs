//! Multi-process mode: rank 0 coordinates peer worker processes over
//! loopback TCP.
//!
//! Rank 0 opens one connection per peer, ships the immutable session state
//! once ([`proto::Message::Init`]), then per optimizer step sends every
//! peer its shard *before* computing its own shard locally — peers overlap
//! with rank 0 — and collects the per-shard [`MaskGrads`] replies in shard
//! order. The peer side ([`serve_peer_once`]) is a plain blocking loop:
//! rebuild the model from the shipped config, then
//! `read step → tape → backward → write grads` until shutdown.
//!
//! There is deliberately **no fault tolerance** in this revision: a peer
//! that dies mid-session aborts the training run with an error rather than
//! silently retraining on fewer shards (which would change the gradient
//! stream and violate the determinism contract).

use photonn_autodiff::MaskGrads;
use photonn_datasets::Dataset;
use photonn_donn::train::shard_gradients;
use photonn_donn::{Donn, DonnConfig};
use photonn_math::Grid;
use photonn_wire::{read_frame, write_frame, FrameError};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

use crate::proto::{decode, encode, Message};

fn protocol_error(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

fn expect_message(text: &str, grid: Option<usize>) -> io::Result<Message> {
    decode(text, grid).map_err(protocol_error)
}

/// One buffered, nodelay connection speaking framed protocol messages.
struct Framed {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Framed {
    fn new(stream: TcpStream) -> io::Result<Framed> {
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Framed {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, msg: &Message) -> io::Result<()> {
        write_frame(&mut self.writer, &encode(msg))
    }

    fn recv(&mut self, grid: Option<usize>) -> io::Result<Message> {
        let text = read_frame(&mut self.reader).map_err(io::Error::from)?;
        expect_message(&text, grid)
    }
}

/// Rank 0's handle on a set of connected, initialized peer workers.
pub struct TcpPool {
    peers: Vec<Framed>,
    grid: usize,
}

impl TcpPool {
    /// Connects to every peer address and runs the init handshake: full
    /// model configuration, the training set, and optional freeze masks.
    /// Returns once every peer has answered `ready`.
    ///
    /// # Errors
    ///
    /// Returns connect/transport errors, or `InvalidData` when a peer
    /// answers with anything but `ready`.
    pub fn connect<A: ToSocketAddrs + std::fmt::Display>(
        peer_addrs: &[A],
        config: &DonnConfig,
        data: &Dataset,
        freeze: Option<&[Arc<Grid>]>,
    ) -> io::Result<TcpPool> {
        let init = Message::Init {
            config: *config,
            images: (0..data.len()).map(|i| data.image(i).clone()).collect(),
            labels: (0..data.len()).map(|i| data.label(i)).collect(),
            freeze: freeze.map(|fz| fz.iter().map(|k| k.as_ref().clone()).collect()),
        };
        let text = encode(&init);
        let mut peers = Vec::with_capacity(peer_addrs.len());
        for addr in peer_addrs {
            let stream = TcpStream::connect(addr)?;
            let mut framed = Framed::new(stream)?;
            write_frame(&mut framed.writer, &text)?;
            match framed.recv(Some(config.grid()))? {
                Message::Ready => peers.push(framed),
                other => {
                    return Err(protocol_error(format!(
                        "peer {addr} answered {other:?} instead of ready"
                    )))
                }
            }
        }
        Ok(TcpPool {
            peers,
            grid: config.grid(),
        })
    }

    /// Number of connected peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// `true` when no peers are connected.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Sends shard `i` to peer `i` (current masks + indices + global
    /// denominator), serializing the shared mask payload once for all
    /// peers ([`crate::proto::encode_steps`]). `shards.len()` may be
    /// smaller than the pool on a degenerate batch — the surplus peers
    /// simply sit this step out.
    ///
    /// # Errors
    ///
    /// Returns transport errors; panics if more shards than peers.
    pub fn send_steps(
        &mut self,
        masks: &[Grid],
        shards: &[&[usize]],
        denom: usize,
    ) -> io::Result<()> {
        assert!(shards.len() <= self.peers.len(), "more shards than peers");
        let texts = crate::proto::encode_steps(masks, shards, denom);
        for (peer, text) in self.peers.iter_mut().zip(&texts) {
            write_frame(&mut peer.writer, text)?;
        }
        Ok(())
    }

    /// Collects one [`MaskGrads`] from each of the first `count` peers, in
    /// peer (= shard) order, so the downstream tree reduce sees a
    /// deterministic sequence no matter which peer finished first.
    ///
    /// # Errors
    ///
    /// Returns transport errors, or `InvalidData` when a peer answers with
    /// anything but `grads`.
    pub fn collect_grads(&mut self, count: usize) -> io::Result<Vec<MaskGrads>> {
        assert!(count <= self.peers.len(), "more shards than peers");
        let grid = self.grid;
        self.peers[..count]
            .iter_mut()
            .map(|peer| match peer.recv(Some(grid))? {
                Message::Grads(mg) => Ok(mg),
                other => Err(protocol_error(format!(
                    "peer answered {other:?} instead of grads"
                ))),
            })
            .collect()
    }

    /// Tells every peer the session is over. Transport errors are ignored
    /// — the peers' frame reader treats a vanished coordinator the same
    /// way.
    pub fn shutdown(mut self) {
        for peer in &mut self.peers {
            let _ = peer.send(&Message::Shutdown);
        }
    }
}

/// Serves exactly one coordinator session on an already-bound listener:
/// accepts one connection, answers its init handshake, then computes shard
/// gradients (FFT work on `threads` chunk threads) until the coordinator
/// sends `shutdown` or disconnects. Used by `photonn dist-worker` and the
/// `dist_digits` example's self-spawned peers.
///
/// # Errors
///
/// Returns transport errors and `InvalidData` on protocol violations.
pub fn serve_peer_once(listener: &TcpListener, threads: usize) -> io::Result<()> {
    let (stream, _) = listener.accept()?;
    let mut framed = Framed::new(stream)?;
    let (config, data, freeze) = match framed.recv(None)? {
        Message::Init {
            config,
            images,
            labels,
            freeze,
        } => (
            config,
            Dataset::new("shipped", images, labels),
            freeze.map(|fz| fz.into_iter().map(Arc::new).collect::<Vec<Arc<Grid>>>()),
        ),
        other => {
            return Err(protocol_error(format!(
                "coordinator opened with {other:?} instead of init"
            )))
        }
    };
    let mut donn = Donn::new(config);
    framed.send(&Message::Ready)?;
    loop {
        let text = match read_frame(&mut framed.reader) {
            Ok(text) => text,
            Err(FrameError::Closed) => return Ok(()), // coordinator hung up
            Err(e) => return Err(e.into()),
        };
        match expect_message(&text, Some(config.grid()))? {
            Message::Step {
                masks,
                shard,
                denom,
            } => {
                donn.set_masks(masks);
                let mg = shard_gradients(&donn, &data, &shard, freeze.as_deref(), threads, denom);
                framed.send(&Message::Grads(mg))?;
            }
            Message::Shutdown => return Ok(()),
            other => {
                return Err(protocol_error(format!(
                    "coordinator sent {other:?} mid-session"
                )))
            }
        }
    }
}

/// [`serve_peer_once`] in a loop: the worker stays up and serves
/// coordinator sessions back to back (the `photonn dist-worker
/// --keep-alive` mode). Session-level protocol errors are logged to stderr
/// and the worker keeps accepting; only listener-level errors return.
///
/// # Errors
///
/// Returns errors from `TcpListener::accept` itself.
pub fn serve_peer_forever(listener: &TcpListener, threads: usize) -> io::Result<()> {
    loop {
        if let Err(e) = serve_peer_once(listener, threads) {
            eprintln!("photonn-dist peer: session ended with error: {e}");
        }
    }
}
