//! Multi-process mode: rank 0 coordinates peer worker processes over TCP,
//! with bounded-time failure detection and elastic membership.
//!
//! Rank 0 opens one connection per peer, ships the immutable session state
//! once ([`proto::Message::Init`]), then per optimizer step sends every
//! peer its shard *before* computing its own shard locally — peers overlap
//! with rank 0 — and collects the per-shard [`MaskGrads`] replies in shard
//! order. The peer side ([`serve_peer_once`]) rebuilds the model from the
//! shipped config, then loops `read step → tape → backward → write grads`
//! until shutdown, emitting [`proto::Message::Heartbeat`] frames on the
//! coordinator-dictated cadence while a tape is in flight.
//!
//! ## Failure model
//!
//! Every rank-0 socket carries a read/write timeout of
//! [`FaultConfig::peer_timeout_ms`], so no peer can hang the coordinator
//! on a blocking read: a peer that is alive but slow keeps heartbeating
//! (each heartbeat resets the clock), while one that is dead, partitioned
//! or wedged is *detected* within one timeout. A detected failure first
//! enters a bounded reconnect window ([`FaultConfig::reconnect_window_ms`],
//! exponential backoff from [`FaultConfig::reconnect_backoff_ms`]): the
//! peer address is re-dialed and the init handshake re-run, which restores
//! the session against a `photonn dist-worker --keep-alive` process that
//! merely dropped a connection. Only when the window closes without a
//! session is the peer *confirmed lost*; [`TcpPool::elastic_step`] then
//! removes it and recomputes the interrupted step from scratch over the
//! survivors — `shard_batch` with `N−1` workers and the unchanged global
//! denominator, which is exactly the split a fresh `N−1`-worker run would
//! use, so every post-loss gradient (and therefore the rest of the run) is
//! bit-identical to that fresh run. A floor of `min_workers` turns further
//! losses into a loud [`DistError::BelowMinWorkers`] instead of a silent
//! crawl.
//!
//! [`DistError::BelowMinWorkers`]: crate::DistError::BelowMinWorkers

use photonn_autodiff::MaskGrads;
use photonn_datasets::Dataset;
use photonn_donn::train::shard_gradients;
use photonn_donn::{Donn, DonnConfig};
use photonn_math::Grid;
use photonn_wire::{is_timeout, read_frame, write_frame, FrameError};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::proto::{decode, encode, Message};
use crate::shard::shard_batch;
use crate::train::DistError;
use crate::worker::all_reduce;

/// Timeout, heartbeat and reconnect tuning for the TCP transport. All
/// durations are milliseconds so the struct stays `Eq` and CLI-friendly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Cadence of peer heartbeats while a shard tape is in flight; shipped
    /// to peers in the init handshake. `0` disables heartbeats.
    pub heartbeat_ms: u64,
    /// Read/write timeout on every rank-0 peer socket, and the silence
    /// threshold after which a peer is *detected* as failed. Must comfortably
    /// exceed `heartbeat_ms`. `0` means wait forever (fail-stop-by-hang;
    /// only for debugging).
    pub peer_timeout_ms: u64,
    /// Total wall-clock budget for re-dialing a detected-failed peer
    /// before it is *confirmed lost* and its shard re-split. `0` disables
    /// reconnection: first detection is confirmation.
    pub reconnect_window_ms: u64,
    /// First reconnect backoff; doubles per attempt within the window.
    pub reconnect_backoff_ms: u64,
}

impl Default for FaultConfig {
    /// 500 ms heartbeats, 10 s silence threshold, 8 s reconnect window
    /// starting at 100 ms backoff.
    fn default() -> Self {
        FaultConfig {
            heartbeat_ms: 500,
            peer_timeout_ms: 10_000,
            reconnect_window_ms: 8_000,
            reconnect_backoff_ms: 100,
        }
    }
}

impl FaultConfig {
    fn peer_timeout(&self) -> Option<Duration> {
        (self.peer_timeout_ms > 0).then(|| Duration::from_millis(self.peer_timeout_ms))
    }
}

/// Write timeout on peer-side sockets: a heartbeat or gradients write into
/// a vanished coordinator's full socket buffer must fail in bounded time
/// so the serve loop can move on to the next session.
const PEER_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

fn protocol_error(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

fn expect_message(text: &str, grid: Option<usize>) -> io::Result<Message> {
    decode(text, grid).map_err(protocol_error)
}

/// One buffered, nodelay connection speaking framed protocol messages.
struct Framed {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Framed {
    fn new(
        stream: TcpStream,
        read_timeout: Option<Duration>,
        write_timeout: Option<Duration>,
    ) -> io::Result<Framed> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        stream.set_write_timeout(write_timeout)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Framed {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, msg: &Message) -> io::Result<()> {
        write_frame(&mut self.writer, &encode(msg))
    }

    fn recv(&mut self, grid: Option<usize>) -> io::Result<Message> {
        let text = read_frame(&mut self.reader).map_err(io::Error::from)?;
        expect_message(&text, grid)
    }
}

/// One connected peer: its dial address (for reconnection), the live
/// connection, and how many step frames are in flight on it (sent but not
/// yet answered with gradients) — the bookkeeping that lets an aborted
/// step attempt drain stale replies instead of desyncing the stream.
struct Peer {
    addr: String,
    framed: Framed,
    pending: usize,
}

/// Rank 0's handle on a set of connected, initialized peer workers.
pub struct TcpPool {
    peers: Vec<Peer>,
    grid: usize,
    /// The serialized init handshake, kept so a reconnect can re-run it.
    init_text: String,
    fault: FaultConfig,
}

impl TcpPool {
    /// Connects to every peer address and runs the init handshake: full
    /// model configuration, the training set, optional freeze masks and
    /// the heartbeat cadence. Returns once every peer has answered
    /// `ready`. The initial connect is strict — a hostfile peer that is
    /// down at launch fails the run loudly rather than starting degraded.
    ///
    /// # Errors
    ///
    /// Returns connect/transport errors, or `InvalidData` when a peer
    /// answers with anything but `ready`.
    pub fn connect<A: ToSocketAddrs + std::fmt::Display>(
        peer_addrs: &[A],
        config: &DonnConfig,
        data: &Dataset,
        freeze: Option<&[Arc<Grid>]>,
        fault: FaultConfig,
    ) -> io::Result<TcpPool> {
        let init = Message::Init {
            config: *config,
            images: (0..data.len()).map(|i| data.image(i).clone()).collect(),
            labels: (0..data.len()).map(|i| data.label(i)).collect(),
            freeze: freeze.map(|fz| fz.iter().map(|k| k.as_ref().clone()).collect()),
            heartbeat_ms: fault.heartbeat_ms,
        };
        let init_text = encode(&init);
        let grid = config.grid();
        let mut peers = Vec::with_capacity(peer_addrs.len());
        for addr in peer_addrs {
            let addr = addr.to_string();
            let framed = dial(&addr, &fault, &init_text, grid, None)
                .map_err(|e| io::Error::new(e.kind(), format!("peer {addr}: {e}")))?;
            peers.push(Peer {
                addr,
                framed,
                pending: 0,
            });
        }
        Ok(TcpPool {
            peers,
            grid,
            init_text,
            fault,
        })
    }

    /// Number of connected peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// `true` when no peers are connected.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The dial addresses of the currently connected peers, in shard
    /// order — shrinks as peers are confirmed lost.
    pub fn peer_addrs(&self) -> Vec<String> {
        self.peers.iter().map(|p| p.addr.clone()).collect()
    }

    /// Sends shard `i` to peer `i` (current masks + indices + global
    /// denominator), serializing the shared mask payload once for all
    /// peers ([`crate::proto::encode_steps`]). `shards.len()` may be
    /// smaller than the pool on a degenerate batch — the surplus peers
    /// simply sit this step out.
    ///
    /// # Errors
    ///
    /// Returns transport errors; panics if more shards than peers.
    pub fn send_steps(
        &mut self,
        masks: &[Grid],
        shards: &[&[usize]],
        denom: usize,
    ) -> io::Result<()> {
        assert!(shards.len() <= self.peers.len(), "more shards than peers");
        let texts = crate::proto::encode_steps(masks, shards, denom);
        for (peer, text) in self.peers.iter_mut().zip(&texts) {
            write_frame(&mut peer.framed.writer, text)?;
            peer.pending += 1;
        }
        Ok(())
    }

    /// Collects one [`MaskGrads`] from each of the first `count` peers, in
    /// peer (= shard) order, so the downstream tree reduce sees a
    /// deterministic sequence no matter which peer finished first.
    /// Heartbeat frames are consumed transparently.
    ///
    /// # Errors
    ///
    /// Returns transport errors (a `TimedOut` kind means the peer went
    /// silent past the fault config's threshold), or `InvalidData` when a
    /// peer answers with anything but `grads`.
    pub fn collect_grads(&mut self, count: usize) -> io::Result<Vec<MaskGrads>> {
        assert!(count <= self.peers.len(), "more shards than peers");
        (0..count).map(|i| self.recv_grads(i)).collect()
    }

    /// Reads frames from peer `i` until its gradients arrive, treating
    /// heartbeats as liveness (each one restarts the socket's read
    /// timeout, since a fresh blocking read begins).
    fn recv_grads(&mut self, i: usize) -> io::Result<MaskGrads> {
        let grid = self.grid;
        let peer = &mut self.peers[i];
        loop {
            let text = read_frame(&mut peer.framed.reader).map_err(|e| {
                let e = io::Error::from(e);
                if is_timeout(&e) {
                    io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "peer {} silent for {} ms (no heartbeat, no gradients)",
                            peer.addr, self.fault.peer_timeout_ms
                        ),
                    )
                } else {
                    e
                }
            })?;
            match expect_message(&text, Some(grid))? {
                Message::Heartbeat => continue,
                Message::Grads(mg) => {
                    peer.pending = peer.pending.saturating_sub(1);
                    return Ok(mg);
                }
                other => {
                    return Err(protocol_error(format!(
                        "peer {} answered {other:?} instead of grads",
                        peer.addr
                    )))
                }
            }
        }
    }

    /// Discards stale gradients left in flight by an aborted step attempt,
    /// so the next attempt's replies pair with the next attempt's sends.
    fn drain_pending(&mut self, i: usize) -> io::Result<()> {
        while self.peers[i].pending > 0 {
            let _ = self.recv_grads(i)?;
        }
        Ok(())
    }

    /// One *elastic* optimizer step: drain stale replies, ship the remote
    /// shards, compute shard 0 locally, collect — and on any peer failure,
    /// reconnect-or-resplit and retry the whole step on the surviving
    /// membership. Each retry recomputes the step as a pure function of
    /// `(masks, batch, surviving worker count)`, so the returned gradient
    /// is always exactly what a fresh run with the final membership would
    /// produce.
    ///
    /// # Errors
    ///
    /// [`DistError::BelowMinWorkers`] when a confirmed loss would shrink
    /// the run under `min_workers`. Transport errors never escape directly
    /// — they are what the reconnect/resplit machinery consumes.
    pub fn elastic_step(
        &mut self,
        donn: &Donn,
        data: &Dataset,
        batch: &[usize],
        freeze: Option<&[Arc<Grid>]>,
        threads: usize,
        min_workers: usize,
    ) -> Result<(Vec<Grid>, f64), DistError> {
        loop {
            match self.step_attempt(donn, data, batch, freeze, threads) {
                Ok(parts) => return Ok(all_reduce(parts, donn.masks(), freeze)),
                Err((idx, err)) => self.recover_peer(idx, &err, min_workers)?,
            }
        }
    }

    /// One send/compute/collect pass over the current membership. On
    /// failure returns the index of the offending peer alongside the
    /// error.
    fn step_attempt(
        &mut self,
        donn: &Donn,
        data: &Dataset,
        batch: &[usize],
        freeze: Option<&[Arc<Grid>]>,
        threads: usize,
    ) -> Result<Vec<MaskGrads>, (usize, io::Error)> {
        let denom = batch.len();
        let shards = shard_batch(batch, self.peers.len() + 1);
        for i in 0..self.peers.len() {
            self.drain_pending(i).map_err(|e| (i, e))?;
        }
        {
            let _span = photonn_trace::span("dist.wire_serialize");
            let texts = crate::proto::encode_steps(donn.masks(), &shards[1..], denom);
            for (i, text) in texts.iter().enumerate() {
                write_frame(&mut self.peers[i].framed.writer, text).map_err(|e| (i, e))?;
                self.peers[i].pending += 1;
            }
        }
        let local = {
            let _span = photonn_trace::span("dist.shard_compute");
            shard_gradients(donn, data, shards[0], freeze, threads, denom)
        };
        let mut parts = vec![local];
        {
            let _span = photonn_trace::span("dist.allreduce_wait");
            for i in 0..shards.len() - 1 {
                parts.push(self.recv_grads(i).map_err(|e| (i, e))?);
            }
        }
        Ok(parts)
    }

    /// Recovery ladder for a failed peer: bounded reconnect-with-backoff,
    /// then confirmed loss and membership shrink, then the `min_workers`
    /// floor.
    fn recover_peer(
        &mut self,
        idx: usize,
        err: &io::Error,
        min_workers: usize,
    ) -> Result<(), DistError> {
        eprintln!(
            "photonn-dist: peer {} failed ({err}); reconnecting for up to {} ms",
            self.peers[idx].addr, self.fault.reconnect_window_ms
        );
        let reconnected = {
            let _span = photonn_trace::span("dist.reconnect");
            self.try_reconnect(idx)
        };
        if reconnected {
            eprintln!(
                "photonn-dist: peer {} session restored",
                self.peers[idx].addr
            );
            return Ok(());
        }
        let _span = photonn_trace::span("dist.resplit");
        let lost = self.peers.remove(idx);
        let survivors = self.peers.len() + 1;
        if survivors < min_workers {
            return Err(DistError::BelowMinWorkers {
                addr: lost.addr,
                survivors,
                min_workers,
            });
        }
        eprintln!(
            "photonn-dist: peer {} confirmed lost; re-splitting over {survivors} worker(s)",
            lost.addr
        );
        Ok(())
    }

    /// Re-dials peer `idx` with exponential backoff inside the fault
    /// config's reconnect window, re-running the full init handshake on
    /// success (the peer side treats every accepted connection as a fresh
    /// session). Returns `false` once the window closes.
    fn try_reconnect(&mut self, idx: usize) -> bool {
        if self.fault.reconnect_window_ms == 0 {
            return false;
        }
        let deadline = Instant::now() + Duration::from_millis(self.fault.reconnect_window_ms);
        let mut backoff = Duration::from_millis(self.fault.reconnect_backoff_ms.max(1));
        let addr = self.peers[idx].addr.clone();
        loop {
            match dial(
                &addr,
                &self.fault,
                &self.init_text,
                self.grid,
                Some(deadline),
            ) {
                Ok(framed) => {
                    let peer = &mut self.peers[idx];
                    peer.framed = framed;
                    peer.pending = 0;
                    return true;
                }
                Err(e) => {
                    let now = Instant::now();
                    if now + backoff >= deadline {
                        eprintln!("photonn-dist: reconnect window for {addr} closed: {e}");
                        return false;
                    }
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
            }
        }
    }

    /// Tells every peer the session is over. Transport errors are ignored
    /// — the peers' frame reader treats a vanished coordinator the same
    /// way.
    pub fn shutdown(mut self) {
        for peer in &mut self.peers {
            let _ = peer.framed.send(&Message::Shutdown);
        }
    }
}

/// Dials `addr`, applies the fault config's socket timeouts, and runs the
/// init handshake. `deadline` (when reconnecting) bounds the connect
/// attempt itself; the handshake read is bounded by the peer timeout.
fn dial(
    addr: &str,
    fault: &FaultConfig,
    init_text: &str,
    grid: usize,
    deadline: Option<Instant>,
) -> io::Result<Framed> {
    let stream = match deadline {
        None => TcpStream::connect(addr)?,
        Some(deadline) => {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "reconnect window exhausted",
                ));
            }
            let sock = addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| protocol_error(format!("peer address {addr} did not resolve")))?;
            TcpStream::connect_timeout(&sock, remaining)?
        }
    };
    let mut framed = Framed::new(stream, fault.peer_timeout(), fault.peer_timeout())?;
    write_frame(&mut framed.writer, init_text)?;
    match framed.recv(Some(grid))? {
        Message::Ready => Ok(framed),
        other => Err(protocol_error(format!(
            "peer {addr} answered {other:?} instead of ready"
        ))),
    }
}

/// Runs one shard tape while keeping the coordinator's failure detector
/// fed: the tape runs on a scoped thread and this thread emits a
/// heartbeat frame every `heartbeat_ms` until the gradients are ready.
/// With heartbeats disabled (`heartbeat_ms == 0`) the tape runs inline.
#[allow(clippy::too_many_arguments)]
fn compute_with_heartbeats(
    framed: &mut Framed,
    donn: &Donn,
    data: &Dataset,
    shard: &[usize],
    freeze: Option<&[Arc<Grid>]>,
    threads: usize,
    denom: usize,
    heartbeat_ms: u64,
) -> io::Result<MaskGrads> {
    if heartbeat_ms == 0 {
        return Ok(shard_gradients(donn, data, shard, freeze, threads, denom));
    }
    let interval = Duration::from_millis(heartbeat_ms);
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel();
        scope.spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shard_gradients(donn, data, shard, freeze, threads, denom)
            }));
            // The receiver only disappears if the session already failed;
            // nothing to report to in that case.
            let _ = tx.send(result);
        });
        loop {
            match rx.recv_timeout(interval) {
                Ok(Ok(mg)) => return Ok(mg),
                Ok(Err(_panic)) => {
                    return Err(io::Error::other(
                        "shard tape panicked on this peer (mask/dataset shape mismatch?)",
                    ))
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    let _hb = photonn_trace::span("dist.heartbeat");
                    framed.send(&Message::Heartbeat)?;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::other("shard tape thread vanished"));
                }
            }
        }
    })
}

/// Serves exactly one coordinator session on an already-bound listener:
/// accepts one connection, answers its init handshake, then computes shard
/// gradients (FFT work on `threads` chunk threads) until the coordinator
/// sends `shutdown` or disconnects, heartbeating on the cadence the init
/// dictated. Used by `photonn dist-worker` and the `dist_digits` example's
/// self-spawned peers.
///
/// # Errors
///
/// Returns transport errors and `InvalidData` on protocol violations.
pub fn serve_peer_once(listener: &TcpListener, threads: usize) -> io::Result<()> {
    let (stream, _) = listener.accept()?;
    let mut framed = Framed::new(stream, None, Some(PEER_WRITE_TIMEOUT))?;
    let (config, data, freeze, heartbeat_ms) = match framed.recv(None)? {
        Message::Init {
            config,
            images,
            labels,
            freeze,
            heartbeat_ms,
        } => (
            config,
            Dataset::new("shipped", images, labels),
            freeze.map(|fz| fz.into_iter().map(Arc::new).collect::<Vec<Arc<Grid>>>()),
            heartbeat_ms,
        ),
        other => {
            return Err(protocol_error(format!(
                "coordinator opened with {other:?} instead of init"
            )))
        }
    };
    let mut donn = Donn::new(config);
    framed.send(&Message::Ready)?;
    loop {
        let text = match read_frame(&mut framed.reader) {
            Ok(text) => text,
            Err(FrameError::Closed) => return Ok(()), // coordinator hung up
            Err(e) => return Err(e.into()),
        };
        match expect_message(&text, Some(config.grid()))? {
            Message::Step {
                masks,
                shard,
                denom,
            } => {
                donn.set_masks(masks);
                let mg = compute_with_heartbeats(
                    &mut framed,
                    &donn,
                    &data,
                    &shard,
                    freeze.as_deref(),
                    threads,
                    denom,
                    heartbeat_ms,
                )?;
                framed.send(&Message::Grads(mg))?;
            }
            Message::Shutdown => return Ok(()),
            other => {
                return Err(protocol_error(format!(
                    "coordinator sent {other:?} mid-session"
                )))
            }
        }
    }
}

/// [`serve_peer_once`] in a loop: the worker stays up and serves
/// coordinator sessions back to back (the `photonn dist-worker
/// --keep-alive` mode) — which is also what makes it *reconnectable*: a
/// coordinator whose connection dropped re-dials and gets a fresh session.
/// Session-level protocol errors are logged to stderr and the worker keeps
/// accepting; only listener-level errors return.
///
/// # Errors
///
/// Returns errors from `TcpListener::accept` itself.
pub fn serve_peer_forever(listener: &TcpListener, threads: usize) -> io::Result<()> {
    loop {
        if let Err(e) = serve_peer_once(listener, threads) {
            eprintln!("photonn-dist peer: session ended with error: {e}");
        }
    }
}
