//! Minimal offline stand-in for the subset of the `criterion` benchmarking
//! API that `photonn-bench` uses.
//!
//! The build environment for this workspace has no crates.io access, so the
//! real `criterion` cannot be vendored. This crate keeps the bench sources
//! compiling and runnable (`cargo bench`) with wall-clock timing instead of
//! criterion's statistical machinery: each benchmark is warmed up once and
//! then timed over a fixed number of iterations, reporting mean time per
//! iteration. Swap the workspace dependency back to crates.io `criterion`
//! to get real statistics — the bench sources need no changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Number of timed iterations per benchmark (after one warm-up call).
/// Override with the `PHOTONN_BENCH_ITERS` environment variable.
fn iterations() -> u32 {
    std::env::var("PHOTONN_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup { _parent: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&name.into(), f);
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in ignores measurement time.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&name.into(), f);
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Per-benchmark timing handle, mirroring `criterion::Bencher`.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Calls `routine` once to warm up, then times `iterations()` calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        let iters = iterations();
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(iters);
    }
}

fn run_one(name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        nanos_per_iter: f64::NAN,
    };
    f(&mut b);
    if b.nanos_per_iter.is_nan() {
        println!("  {name}: no measurement (b.iter never called)");
    } else if b.nanos_per_iter >= 1e6 {
        println!("  {name}: {:.3} ms/iter", b.nanos_per_iter / 1e6);
    } else {
        println!("  {name}: {:.1} ns/iter", b.nanos_per_iter);
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
