//! # photonn-fft
//!
//! From-scratch FFT engines for the `photonn` workspace (the DAC'23
//! roughness-optimization reproduction). Free-space diffraction is computed
//! in the frequency domain (paper Eq. 1), so the FFT is the innermost hot
//! loop of every DONN forward and backward pass.
//!
//! Three scalar 1-D engines are selected automatically by [`Fft::new`]:
//!
//! * **radix-2** — iterative in-place for powers of two (the padded path);
//! * **mixed-radix** — recursive Cooley–Tukey for smooth composites such as
//!   the paper's native 200 = 2³·5² (every prime factor ≤ 61);
//! * **Bluestein** — chirp-z fallback for lengths with larger prime
//!   factors (the planner reroutes automatically; no length errors out).
//!
//! On top of them, [`Fft2`]'s batched execute paths
//! ([`Fft2::forward_batch`], [`Fft2::apply_transfer_batch`]) carry a
//! fourth, *planar vectorized* engine for square grids of side
//! `n = 2^a·5^b`: a self-sorting Stockham pipeline of radix-8/4/2/5 stages
//! whose butterflies combine whole rows of split re/im `f64` planes —
//! contiguous, shuffle-free arithmetic the compiler autovectorizes. It
//! covers every power of two **and** the paper's native 200 grid (plus its
//! double-padded 400), so paper-scale batches never fall back to the
//! scalar per-sample path. Setting the `PHOTONN_FFT_NO_VEC` environment
//! variable before planning disables it (the benchmark baseline switch).
//!
//! Conventions: forward is the unnormalized engineering DFT
//! `X[k] = Σ x[j]·e^{-2πi jk/n}`; [`Fft::inverse`] carries the `1/n`. The
//! unnormalized inverse (exact adjoint of forward) is exposed separately for
//! reverse-mode autodiff.
//!
//! # Examples
//!
//! ```
//! use photonn_fft::{fft2, ifft2};
//! use photonn_math::{CGrid, Complex64};
//!
//! let field = CGrid::from_fn(8, 8, |r, c| Complex64::new((r + c) as f64, 0.0));
//! let back = ifft2(&fft2(&field));
//! assert!(back.max_abs_diff(&field) < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bluestein;
mod fft2;
mod mixed;
mod plan;
mod radix2;
mod shift;
#[cfg(test)]
mod testing;
mod vecmixed;

pub use fft2::{fft2, ifft2, Fft2};
pub use mixed::factorize;
pub use plan::{Fft, Planner};
pub use shift::{fftfreq, fftshift, fftshift_real, ifftshift};
