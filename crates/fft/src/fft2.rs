//! Planned 2-D FFT over [`CGrid`] by row-column decomposition, with batched
//! execute paths over [`BatchCGrid`] for the mini-batch training engine.

use photonn_math::planar::{deinterleave, hadamard, hadamard_scale, interleave, transpose_plane};
use photonn_math::{BatchCGrid, CGrid, Complex64};
use std::sync::Arc;

use crate::vecmixed::VecMixed2d;
use crate::{Fft, Planner};

/// A reusable 2-D FFT plan for a fixed `rows × cols` shape.
///
/// Forward is unnormalized; [`Fft2::inverse`] divides by `rows·cols` so the
/// pair round-trips. [`Fft2::inverse_unnormalized`] is the exact adjoint of
/// [`Fft2::forward`] (needed by reverse-mode AD).
///
/// # Examples
///
/// ```
/// use photonn_fft::Fft2;
/// use photonn_math::{CGrid, Complex64};
///
/// let plan = Fft2::new(4, 8);
/// let mut field = CGrid::full(4, 8, Complex64::ONE);
/// plan.forward(&mut field);
/// // DC bin collects everything.
/// assert!((field[(0, 0)].re - 32.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Fft2 {
    rows: usize,
    cols: usize,
    row_plan: Arc<Fft>,
    col_plan: Arc<Fft>,
    /// Vectorized square mixed-radix engine for the batched execute paths
    /// (`None` for shapes it cannot handle — non-square, or a side length
    /// with a prime factor other than 2 or 5).
    vec2d: Option<Arc<VecMixed2d>>,
}

impl Fft2 {
    /// Plans a 2-D transform for `rows × cols` grids.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        let planner = Planner::new();
        Self::with_planner(rows, cols, &planner)
    }

    /// Plans using (and populating) a shared [`Planner`] cache.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_planner(rows: usize, cols: usize, planner: &Planner) -> Self {
        assert!(rows > 0 && cols > 0, "FFT2 dimensions must be positive");
        // Square 2^a·5^b shapes (every power of two, plus the paper's
        // native 200 and its padded companions) get the planar vectorized
        // engine; engaging PHOTONN_FFT_NO_VEC (shared switch vocabulary —
        // case-insensitive, falsy values leave vectorization on) forces
        // the scalar per-sample path (the benchmark baseline).
        let vec_enabled = !photonn_math::envswitch::engaged("PHOTONN_FFT_NO_VEC", false);
        let vec2d = (rows == cols && vec_enabled && VecMixed2d::supports(rows))
            .then(|| Arc::new(VecMixed2d::new(rows)));
        Fft2 {
            rows,
            cols,
            row_plan: planner.plan(cols),
            col_plan: planner.plan(rows),
            vec2d,
        }
    }

    /// Planned shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// In-place unnormalized forward 2-D DFT.
    ///
    /// # Panics
    ///
    /// Panics if `grid` does not have the planned shape.
    pub fn forward(&self, grid: &mut CGrid) {
        self.check(grid);
        for r in 0..self.rows {
            self.row_plan.forward(grid.row_mut(r));
        }
        self.columns(grid, |plan, buf| plan.forward(buf));
    }

    /// In-place inverse 2-D DFT including the `1/(rows·cols)` factor.
    ///
    /// # Panics
    ///
    /// Panics if `grid` does not have the planned shape.
    pub fn inverse(&self, grid: &mut CGrid) {
        self.inverse_unnormalized(grid);
        grid.scale_inplace(1.0 / (self.rows * self.cols) as f64);
    }

    /// In-place inverse 2-D DFT without normalization — the adjoint of
    /// [`Fft2::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `grid` does not have the planned shape.
    pub fn inverse_unnormalized(&self, grid: &mut CGrid) {
        self.check(grid);
        for r in 0..self.rows {
            self.row_plan.inverse_unnormalized(grid.row_mut(r));
        }
        self.columns(grid, |plan, buf| plan.inverse_unnormalized(buf));
    }

    fn check(&self, grid: &CGrid) {
        assert_eq!(
            grid.shape(),
            (self.rows, self.cols),
            "grid shape {:?} != planned {:?}",
            grid.shape(),
            (self.rows, self.cols)
        );
    }

    /// Applies `f` to every column through a gather/scatter buffer.
    fn columns(&self, grid: &mut CGrid, f: impl Fn(&Fft, &mut [Complex64])) {
        let mut buf = vec![Complex64::ZERO; self.rows];
        for c in 0..self.cols {
            for (r, b) in buf.iter_mut().enumerate() {
                *b = grid[(r, c)];
            }
            f(&self.col_plan, &mut buf);
            for (r, &b) in buf.iter().enumerate() {
                grid[(r, c)] = b;
            }
        }
    }

    // ------------------------------------------------------------ batched

    /// In-place unnormalized forward 2-D DFT of every sample, with batch
    /// chunks distributed over `threads` worker threads.
    ///
    /// The batch's split re/im planes are the native working set: on
    /// shapes with a vectorized engine the butterflies run directly on
    /// per-sample plane views — no layout conversion anywhere. Results are
    /// deterministic — independent of the thread count and of what else
    /// shares the batch — because batch work is chunked, never raced. The
    /// vectorized stage schedule (radix-8/4/2/5 Stockham) differs from the
    /// scalar 1-D engines, so per-sample results agree with
    /// [`Fft2::forward`] to rounding error (~1e-13 relative) rather than
    /// bit-for-bit; on other shapes the same 1-D engines run (through an
    /// interleave shim at the engine boundary) and results are
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the per-sample shape does not match the plan.
    pub fn forward_batch(&self, batch: &mut BatchCGrid, threads: usize) {
        let _span = photonn_trace::span("fft.forward_batch");
        self.batch_apply(batch, threads, |ctx, re, im| ctx.forward(re, im));
    }

    /// In-place normalized inverse 2-D DFT of every sample (batched
    /// [`Fft2::inverse`]).
    ///
    /// # Panics
    ///
    /// Panics if the per-sample shape does not match the plan.
    pub fn inverse_batch(&self, batch: &mut BatchCGrid, threads: usize) {
        self.inverse_unnormalized_batch(batch, threads);
        batch.scale_inplace(1.0 / (self.rows * self.cols) as f64);
    }

    /// In-place unnormalized inverse 2-D DFT of every sample — the adjoint
    /// of [`Fft2::forward_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the per-sample shape does not match the plan.
    pub fn inverse_unnormalized_batch(&self, batch: &mut BatchCGrid, threads: usize) {
        let _span = photonn_trace::span("fft.inverse_batch");
        self.batch_apply(batch, threads, |ctx, re, im| {
            ctx.inverse_unnormalized(re, im)
        });
    }

    /// One frequency-domain transfer application for a whole batch:
    /// `crop(ifft2(fft2(pad(x)) ⊙ K))` per sample, sharing this plan and
    /// one kernel. `inner` is the native (pre-pad / post-crop) side length;
    /// when it equals the planned size the pad/crop are skipped.
    ///
    /// This is the fused hot path of the batched propagation engine: one
    /// scratch pipeline instead of five tape-visible intermediates.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not square, `kernel` does not match the
    /// planned shape, or the batch samples are not `inner × inner`.
    pub fn apply_transfer_batch(
        &self,
        field: &BatchCGrid,
        kernel: &CGrid,
        inner: usize,
        threads: usize,
    ) -> BatchCGrid {
        self.apply_transfer_batch_owned(field.clone(), kernel, inner, threads)
    }

    /// Like [`Fft2::apply_transfer_batch`] but consumes the batch,
    /// avoiding the defensive copy when the caller owns a scratch batch
    /// (the fused modulate-propagate op of the autodiff layer).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Fft2::apply_transfer_batch`].
    pub fn apply_transfer_batch_owned(
        &self,
        work: BatchCGrid,
        kernel: &CGrid,
        inner: usize,
        threads: usize,
    ) -> BatchCGrid {
        let _span = photonn_trace::span("hop.transfer");
        assert_eq!(
            self.rows, self.cols,
            "transfer application needs a square plan"
        );
        assert_eq!(
            kernel.shape(),
            (self.rows, self.cols),
            "kernel shape {:?} != planned {:?}",
            kernel.shape(),
            (self.rows, self.cols)
        );
        assert_eq!(
            (work.rows(), work.cols()),
            (inner, inner),
            "batch sample shape {:?} != ({inner}, {inner})",
            (work.rows(), work.cols()),
        );
        let mut work = if inner == self.rows {
            work
        } else {
            work.pad_centered(self.rows, self.cols)
        };
        // The 1/N normalization is folded into the kernel-multiply pass
        // (linearity lets it commute with the inverse transform), saving a
        // full sweep over the batch per hop.
        let scale = 1.0 / (self.rows * self.cols) as f64;
        if self.vec2d.is_some() {
            // Planar fast path: the batch's own re/im planes are the
            // working set — no layout conversion anywhere in the hop, and
            // only two plane transposes (the kernel is applied
            // pre-transposed while the planes sit in column-major
            // orientation).
            let kt = kernel.transpose();
            let (kr, ki): (Vec<f64>, Vec<f64>) = kt.as_slice().iter().map(|z| (z.re, z.im)).unzip();
            self.batch_apply(&mut work, threads, |ctx, re, im| {
                ctx.planar_transfer(re, im, &kr, &ki, scale);
            });
        } else {
            self.batch_apply(&mut work, threads, |ctx, re, im| {
                ctx.scalar_transfer(re, im, kernel, scale);
            });
        }
        if inner == self.rows {
            work
        } else {
            work.crop_centered(inner, inner)
        }
    }

    /// One fused diffractive-layer hop for a whole batch:
    /// `crop(ifft2(fft2(pad(x_b ⊙ m)) ⊙ K))` with a single mask shared
    /// across the batch. The broadcast modulation runs *inside* the
    /// per-sample worker pass, immediately before the sample's planes
    /// enter the butterflies — elementwise-identical to
    /// `hadamard_bcast_inplace` followed by
    /// [`Fft2::apply_transfer_batch_owned`], but it saves one full-batch
    /// memory sweep per layer (the modulation touches each sample while
    /// its planes are cache-hot anyway).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Fft2::apply_transfer_batch`], plus `mask` must
    /// be `inner × inner`.
    pub fn modulate_transfer_batch_owned(
        &self,
        mut work: BatchCGrid,
        mask: &CGrid,
        kernel: &CGrid,
        inner: usize,
        threads: usize,
    ) -> BatchCGrid {
        let _span = photonn_trace::span("hop.fused");
        assert_eq!(
            mask.shape(),
            (inner, inner),
            "mask shape {:?} != ({inner}, {inner})",
            mask.shape(),
        );
        if inner != self.rows {
            // Padded hop: the modulation applies at the native size, so it
            // cannot ride inside the padded per-sample pass.
            work.hadamard_bcast_inplace(mask);
            return self.apply_transfer_batch_owned(work, kernel, inner, threads);
        }
        assert_eq!(
            kernel.shape(),
            (self.rows, self.cols),
            "kernel shape {:?} != planned {:?}",
            kernel.shape(),
            (self.rows, self.cols)
        );
        assert_eq!(
            (work.rows(), work.cols()),
            (inner, inner),
            "batch sample shape {:?} != ({inner}, {inner})",
            (work.rows(), work.cols()),
        );
        let (mr, mi): (Vec<f64>, Vec<f64>) = mask.as_slice().iter().map(|z| (z.re, z.im)).unzip();
        let scale = 1.0 / (self.rows * self.cols) as f64;
        if self.vec2d.is_some() {
            let kt = kernel.transpose();
            let (kr, ki): (Vec<f64>, Vec<f64>) = kt.as_slice().iter().map(|z| (z.re, z.im)).unzip();
            self.batch_apply(&mut work, threads, |ctx, re, im| {
                hadamard(re, im, &mr, &mi);
                ctx.planar_transfer(re, im, &kr, &ki, scale);
            });
        } else {
            self.batch_apply(&mut work, threads, |ctx, re, im| {
                hadamard(re, im, &mr, &mi);
                ctx.scalar_transfer(re, im, kernel, scale);
            });
        }
        work
    }

    /// Runs `f` over every sample's re/im plane pair, chunking samples
    /// across scoped worker threads. `f` receives a [`SampleFft`] bound to
    /// this plan plus the sample's row-major plane views.
    fn batch_apply(
        &self,
        batch: &mut BatchCGrid,
        threads: usize,
        f: impl Fn(&mut SampleFft<'_>, &mut [f64], &mut [f64]) + Sync,
    ) {
        assert_eq!(
            (batch.rows(), batch.cols()),
            (self.rows, self.cols),
            "batch sample shape {:?} != planned {:?}",
            (batch.rows(), batch.cols()),
            (self.rows, self.cols)
        );
        let sample_len = batch.sample_len();
        let threads = threads.max(1).min(batch.batch());
        if threads == 1 {
            let mut ctx = SampleFft::new(self);
            for (re, im) in batch.samples_mut() {
                f(&mut ctx, re, im);
            }
            return;
        }
        let chunk_samples = batch.batch().div_ceil(threads);
        let f = &f;
        let (re_all, im_all) = batch.planes_mut();
        std::thread::scope(|scope| {
            let chunk_len = chunk_samples * sample_len;
            for (re_chunk, im_chunk) in re_all
                .chunks_mut(chunk_len)
                .zip(im_all.chunks_mut(chunk_len))
            {
                scope.spawn(move || {
                    let mut ctx = SampleFft::new(self);
                    for (re, im) in re_chunk
                        .chunks_mut(sample_len)
                        .zip(im_chunk.chunks_mut(sample_len))
                    {
                        f(&mut ctx, re, im);
                    }
                });
            }
        });
    }
}

/// Per-worker execution context for one [`Fft2`] plan: owns the scratch
/// buffers so batched workers never contend. The sample's own re/im planes
/// (views into the planar `BatchCGrid`) are the primary working set; the
/// vectorized path needs only one spare plane pair for Stockham ping-pong
/// and transposes, and the scalar fallback an interleaved pair for the 1-D
/// engines' boundary shim.
struct SampleFft<'a> {
    plan: &'a Fft2,
    /// Interleaved scratch pair for the scalar-engine fallback path
    /// (`None` when the vectorized engine covers this shape).
    scalar: Option<ScalarScratch>,
    /// Spare plane pair for the vectorized path (`None` otherwise).
    planar: Option<PlanarScratch>,
}

/// Interleaved working pair for the scalar 1-D engines: `buf` holds the
/// sample (interleaved at the shim boundary), `t` its transpose.
struct ScalarScratch {
    buf: Vec<Complex64>,
    t: Vec<Complex64>,
}

/// The spare split re/im plane pair of the vectorized path. Together with
/// the sample's own planes it forms the two-buffer working set: Stockham
/// stages ping-pong between the pairs and every transpose writes into the
/// currently-dead pair. Callers track which pair is live by swapping their
/// `&mut` bindings — O(1), so parity never forces a plane copy.
struct PlanarScratch {
    sre: Vec<f64>,
    sim: Vec<f64>,
}

impl<'a> SampleFft<'a> {
    fn new(plan: &'a Fft2) -> Self {
        let len = plan.rows * plan.cols;
        if plan.vec2d.is_some() {
            SampleFft {
                plan,
                scalar: None,
                planar: Some(PlanarScratch {
                    sre: vec![0.0; len],
                    sim: vec![0.0; len],
                }),
            }
        } else {
            SampleFft {
                plan,
                scalar: Some(ScalarScratch {
                    buf: vec![Complex64::ZERO; len],
                    t: vec![Complex64::ZERO; len],
                }),
                planar: None,
            }
        }
    }

    /// Unnormalized forward 2-D DFT of one sample's plane pair.
    fn forward(&mut self, re: &mut [f64], im: &mut [f64]) {
        if self.plan.vec2d.is_some() {
            self.planar_transform(re, im, false);
        } else {
            self.apply_scalar(re, im, |plan, buf| plan.forward(buf));
        }
    }

    /// Unnormalized inverse 2-D DFT of one sample's plane pair.
    fn inverse_unnormalized(&mut self, re: &mut [f64], im: &mut [f64]) {
        if self.plan.vec2d.is_some() {
            self.planar_transform(re, im, true);
        } else {
            self.apply_scalar(re, im, |plan, buf| plan.inverse_unnormalized(buf));
        }
    }

    /// Unnormalized 2-D DFT through the vectorized engine, in place on the
    /// sample's planes: row transform as a column pass over the transposed
    /// planes, then the column transform directly (the same order as the
    /// scalar path). `inverse` computes the unnormalized adjoint.
    fn planar_transform(&mut self, re: &mut [f64], im: &mut [f64], inverse: bool) {
        let v = self.plan.vec2d.as_ref().expect("planar path");
        let p = self.planar.as_mut().expect("planar scratch");
        let n = v.n();
        let odd = v.odd_stages();
        let re_ptr = re.as_ptr();
        let (mut live_re, mut live_im): (&mut [f64], &mut [f64]) = (re, im);
        let (mut spare_re, mut spare_im): (&mut [f64], &mut [f64]) = (&mut p.sre, &mut p.sim);

        transpose_plane(live_re, n, spare_re);
        transpose_plane(live_im, n, spare_im);
        std::mem::swap(&mut live_re, &mut spare_re);
        std::mem::swap(&mut live_im, &mut spare_im);
        v.column_pass(live_re, live_im, spare_re, spare_im, inverse);
        if odd {
            std::mem::swap(&mut live_re, &mut spare_re);
            std::mem::swap(&mut live_im, &mut spare_im);
        }
        transpose_plane(live_re, n, spare_re);
        transpose_plane(live_im, n, spare_im);
        std::mem::swap(&mut live_re, &mut spare_re);
        std::mem::swap(&mut live_im, &mut spare_im);
        v.column_pass(live_re, live_im, spare_re, spare_im, inverse);
        if odd {
            std::mem::swap(&mut live_re, &mut spare_re);
            std::mem::swap(&mut live_im, &mut spare_im);
        }
        // Two transposes + 2·(odd stages) buffer flips — always an even
        // count, so the result is back in the sample's own planes. The
        // copy branch is a safety net for future stage schedules only.
        if !std::ptr::eq(live_re.as_ptr(), re_ptr) {
            spare_re.copy_from_slice(live_re);
            spare_im.copy_from_slice(live_im);
        }
    }

    /// Fused planar transfer application, in place on one sample's planes:
    /// `(re, im) ← ifft2(fft2(re, im) ⊙ K)·scale` with **zero** layout
    /// conversions and only two plane transposes. The 2-D DFT axes
    /// commute, so the hop is evaluated as
    /// `invF_cols ∘ T ∘ invF_rows ∘ Kᵀ ∘ F_rows ∘ T ∘ F_cols`: the row
    /// transforms and the kernel product all happen while the planes are
    /// in column-major orientation — `kr`/`ki` must therefore hold the
    /// **transposed** kernel.
    ///
    /// Only callable on plans with a vectorized engine.
    fn planar_transfer(
        &mut self,
        re: &mut [f64],
        im: &mut [f64],
        kr: &[f64],
        ki: &[f64],
        scale: f64,
    ) {
        let v = self.plan.vec2d.as_ref().expect("planar path");
        let p = self.planar.as_mut().expect("planar scratch");
        let n = v.n();
        let odd = v.odd_stages();
        let re_ptr = re.as_ptr();
        let (mut live_re, mut live_im): (&mut [f64], &mut [f64]) = (re, im);
        let (mut spare_re, mut spare_im): (&mut [f64], &mut [f64]) = (&mut p.sre, &mut p.sim);
        macro_rules! flip {
            () => {
                std::mem::swap(&mut live_re, &mut spare_re);
                std::mem::swap(&mut live_im, &mut spare_im);
            };
        }

        // Forward column transform in natural orientation.
        v.column_pass(live_re, live_im, spare_re, spare_im, false);
        if odd {
            flip!();
        }
        // Forward row transform on the transposed planes.
        transpose_plane(live_re, n, spare_re);
        transpose_plane(live_im, n, spare_im);
        flip!();
        v.column_pass(live_re, live_im, spare_re, spare_im, false);
        if odd {
            flip!();
        }
        // Kernel product (kernel pre-transposed to this orientation) with
        // the 1/N normalization folded in.
        hadamard_scale(live_re, live_im, kr, ki, scale);
        // Inverse row transform, back to natural orientation, inverse
        // column transform.
        v.column_pass(live_re, live_im, spare_re, spare_im, true);
        if odd {
            flip!();
        }
        transpose_plane(live_re, n, spare_re);
        transpose_plane(live_im, n, spare_im);
        flip!();
        v.column_pass(live_re, live_im, spare_re, spare_im, true);
        if odd {
            flip!();
        }
        // 2 transposes + 4·(odd stages) flips — even, so the result ends
        // in the sample's own planes; the copy is future-proofing only.
        if !std::ptr::eq(live_re.as_ptr(), re_ptr) {
            spare_re.copy_from_slice(live_re);
            spare_im.copy_from_slice(live_im);
        }
    }

    /// One full transfer hop through the scalar 1-D engines:
    /// interleave shim in, `forward → ⊙K·scale → inverse_unnormalized`,
    /// shim back out. This is the fallback for shapes the vectorized
    /// engine cannot cover (side lengths with prime factors other than 2
    /// and 5) and the `PHOTONN_FFT_NO_VEC` baseline.
    fn scalar_transfer(&mut self, re: &mut [f64], im: &mut [f64], kernel: &CGrid, scale: f64) {
        let scratch = self.scalar.as_mut().expect("scalar scratch");
        interleave(re, im, &mut scratch.buf);
        apply_interleaved(self.plan, scratch, |plan, buf| plan.forward(buf));
        for (z, &k) in scratch.buf.iter_mut().zip(kernel.as_slice()) {
            *z = (*z * k).scale(scale);
        }
        apply_interleaved(self.plan, scratch, |plan, buf| {
            plan.inverse_unnormalized(buf)
        });
        deinterleave(&scratch.buf, re, im);
    }

    /// One 2-D pass through the scalar 1-D engines with the interleave
    /// shim at the boundary.
    fn apply_scalar(&mut self, re: &mut [f64], im: &mut [f64], f: impl Fn(&Fft, &mut [Complex64])) {
        let scratch = self.scalar.as_mut().expect("scalar scratch");
        interleave(re, im, &mut scratch.buf);
        apply_interleaved(self.plan, scratch, f);
        deinterleave(&scratch.buf, re, im);
    }
}

/// Row pass, then the column pass as contiguous rows of the transposed
/// scratch buffer (cache-friendlier than per-column gather/scatter).
/// Operates in place on `scratch.buf`.
fn apply_interleaved(plan: &Fft2, scratch: &mut ScalarScratch, f: impl Fn(&Fft, &mut [Complex64])) {
    let (rows, cols) = (plan.rows, plan.cols);
    debug_assert_eq!(scratch.buf.len(), rows * cols);
    for row in scratch.buf.chunks_mut(cols) {
        f(&plan.row_plan, row);
    }
    transpose_into(&scratch.buf, rows, cols, &mut scratch.t);
    for col in scratch.t.chunks_mut(rows) {
        f(&plan.col_plan, col);
    }
    transpose_into(&scratch.t, cols, rows, &mut scratch.buf);
}

/// Transposes a row-major `rows × cols` buffer into a `cols × rows` one.
fn transpose_into(src: &[Complex64], rows: usize, cols: usize, dst: &mut [Complex64]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for r in 0..rows {
        let row = &src[r * cols..(r + 1) * cols];
        for (c, &v) in row.iter().enumerate() {
            dst[c * rows + r] = v;
        }
    }
}

/// Convenience one-shot forward 2-D FFT (plans internally).
pub fn fft2(grid: &CGrid) -> CGrid {
    let mut out = grid.clone();
    Fft2::new(grid.rows(), grid.cols()).forward(&mut out);
    out
}

/// Convenience one-shot normalized inverse 2-D FFT (plans internally).
pub fn ifft2(grid: &CGrid) -> CGrid {
    let mut out = grid.clone();
    Fft2::new(grid.rows(), grid.cols()).inverse(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_math::Grid;

    fn naive_dft2(g: &CGrid) -> CGrid {
        let (rows, cols) = g.shape();
        CGrid::from_fn(rows, cols, |kr, kc| {
            let mut acc = Complex64::ZERO;
            for r in 0..rows {
                for c in 0..cols {
                    let angle = -2.0
                        * std::f64::consts::PI
                        * (kr as f64 * r as f64 / rows as f64 + kc as f64 * c as f64 / cols as f64);
                    acc += g[(r, c)] * Complex64::cis(angle);
                }
            }
            acc
        })
    }

    #[test]
    fn matches_naive_2d_dft() {
        for (rows, cols) in [(4usize, 4usize), (8, 6), (5, 7), (10, 16)] {
            let g = CGrid::from_fn(rows, cols, |r, c| {
                Complex64::new((r as f64 * 0.8).sin(), (c as f64 * 1.7).cos())
            });
            let expected = naive_dft2(&g);
            let got = fft2(&g);
            assert!(
                got.max_abs_diff(&expected) < 1e-9,
                "({rows},{cols}): {}",
                got.max_abs_diff(&expected)
            );
        }
    }

    #[test]
    fn roundtrip() {
        let g = CGrid::from_fn(16, 12, |r, c| Complex64::new(r as f64, -(c as f64)));
        let back = ifft2(&fft2(&g));
        assert!(back.max_abs_diff(&g) < 1e-9);
    }

    #[test]
    fn parseval_2d() {
        // With unnormalized forward: Σ|X|² = N·Σ|x|².
        let g = CGrid::from_fn(8, 8, |r, c| Complex64::new((r + c) as f64, 1.0));
        let spec = fft2(&g);
        let n = 64.0;
        assert!((spec.total_power() - n * g.total_power()).abs() / (n * g.total_power()) < 1e-12);
    }

    #[test]
    fn adjoint_property_2d() {
        let x = CGrid::from_fn(6, 10, |r, c| Complex64::new(r as f64, c as f64));
        let y = CGrid::from_fn(6, 10, |r, c| Complex64::new(c as f64 - 1.0, r as f64 * 0.5));
        let plan = Fft2::new(6, 10);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fhy = y.clone();
        plan.inverse_unnormalized(&mut fhy);
        let inner = |a: &CGrid, b: &CGrid| -> Complex64 {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(p, q)| *p * q.conj())
                .sum()
        };
        let lhs = inner(&fx, &y);
        let rhs = inner(&x, &fhy);
        assert!((lhs - rhs).norm() < 1e-8);
    }

    #[test]
    fn separable_input_has_separable_spectrum() {
        // x[r,c] = f[r]·g[c] ⇒ X = F ⊗ G; check against 1-D transforms.
        let rows = 8;
        let cols = 5;
        let f: Vec<Complex64> = (0..rows).map(|r| Complex64::new(r as f64, 0.3)).collect();
        let gv: Vec<Complex64> = (0..cols).map(|c| Complex64::new(1.0, c as f64)).collect();
        let grid = CGrid::from_fn(rows, cols, |r, c| f[r] * gv[c]);
        let spec = fft2(&grid);
        let mut ff = f.clone();
        Fft::new(rows).forward(&mut ff);
        let mut fg = gv.clone();
        Fft::new(cols).forward(&mut fg);
        for r in 0..rows {
            for c in 0..cols {
                assert!((spec[(r, c)] - ff[r] * fg[c]).norm() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "grid shape")]
    fn shape_mismatch_panics() {
        let plan = Fft2::new(4, 4);
        let mut g = CGrid::zeros(4, 5);
        plan.forward(&mut g);
    }

    fn random_batch(batch: usize, n: usize) -> BatchCGrid {
        BatchCGrid::from_fn(batch, n, n, |b, r, c| {
            Complex64::new(
                ((b * 31 + r * 7 + c) as f64 * 0.37).sin(),
                ((b * 17 + r + c * 5) as f64 * 0.71).cos(),
            )
        })
    }

    #[test]
    fn forward_batch_matches_per_sample_forward() {
        for n in [8usize, 6, 5] {
            let plan = Fft2::new(n, n);
            let mut batch = random_batch(5, n);
            let expected: Vec<CGrid> = (0..5)
                .map(|b| {
                    let mut g = batch.to_cgrid(b);
                    plan.forward(&mut g);
                    g
                })
                .collect();
            plan.forward_batch(&mut batch, 1);
            for (b, e) in expected.iter().enumerate() {
                assert!(
                    batch.to_cgrid(b).max_abs_diff(e) < 1e-12,
                    "n {n} sample {b}: {}",
                    batch.to_cgrid(b).max_abs_diff(e)
                );
            }
        }
    }

    #[test]
    fn batch_threading_is_deterministic() {
        let plan = Fft2::new(8, 8);
        let mut serial = random_batch(7, 8);
        let mut threaded = serial.clone();
        plan.forward_batch(&mut serial, 1);
        plan.forward_batch(&mut threaded, 4);
        assert_eq!(serial, threaded);
        plan.inverse_batch(&mut serial, 1);
        plan.inverse_batch(&mut threaded, 3);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn batch_roundtrip() {
        let plan = Fft2::new(10, 10);
        let original = random_batch(4, 10);
        let mut batch = original.clone();
        plan.forward_batch(&mut batch, 2);
        plan.inverse_batch(&mut batch, 2);
        assert!(batch.max_abs_diff(&original) < 1e-9);
    }

    #[test]
    fn inverse_unnormalized_batch_is_adjoint_scale() {
        let plan = Fft2::new(6, 6);
        let original = random_batch(3, 6);
        let mut batch = original.clone();
        plan.forward_batch(&mut batch, 2);
        plan.inverse_unnormalized_batch(&mut batch, 2);
        batch.scale_inplace(1.0 / 36.0);
        assert!(batch.max_abs_diff(&original) < 1e-9);
    }

    #[test]
    fn apply_transfer_batch_matches_manual_pipeline() {
        for (n, padded) in [(8usize, 8usize), (8, 16)] {
            let plan = Fft2::new(padded, padded);
            let kernel = CGrid::from_fn(padded, padded, |r, c| {
                Complex64::cis((r as f64 * 0.3 - c as f64 * 0.5).sin())
            });
            let batch = random_batch(4, n);
            let out = plan.apply_transfer_batch(&batch, &kernel, n, 2);
            for b in 0..4 {
                let mut manual = if padded == n {
                    batch.to_cgrid(b)
                } else {
                    batch.to_cgrid(b).pad_centered(padded, padded)
                };
                plan.forward(&mut manual);
                manual.hadamard_inplace(&kernel);
                plan.inverse(&mut manual);
                if padded != n {
                    manual = manual.crop_centered(n, n);
                }
                assert!(
                    out.to_cgrid(b).max_abs_diff(&manual) < 1e-12,
                    "padded {padded} sample {b}"
                );
            }
        }
    }

    #[test]
    fn vectorized_cross_engine_parity_at_paper_sizes() {
        // The planar mixed-radix engine (batched path) against the scalar
        // 1-D engines (unbatched path) at the paper-relevant non-power-of-
        // two sizes, forward and round-trip. Spectral magnitudes grow like
        // n², so the absolute tolerance scales with the grid.
        for n in [20usize, 40, 100, 200] {
            let plan = Fft2::new(n, n);
            let original = random_batch(2, n);
            let mut batch = original.clone();
            let expected: Vec<CGrid> = (0..2)
                .map(|b| {
                    let mut g = batch.to_cgrid(b);
                    plan.forward(&mut g); // scalar mixed-radix engine
                    g
                })
                .collect();
            plan.forward_batch(&mut batch, 1); // vectorized engine
            let tol = 1e-11 * (n * n) as f64;
            for (b, e) in expected.iter().enumerate() {
                let diff = batch.to_cgrid(b).max_abs_diff(e);
                assert!(diff < tol, "n {n} sample {b}: {diff} > {tol}");
            }
            plan.inverse_batch(&mut batch, 1);
            let diff = batch.max_abs_diff(&original);
            assert!(diff < 1e-9, "n {n} roundtrip: {diff}");
        }
    }

    #[test]
    fn apply_transfer_batch_matches_manual_pipeline_on_mixed_radix_grids() {
        // The fused planar hop at the paper's native (unpadded) and
        // double-padded non-power-of-two shapes, against the scalar
        // pad → fft2 → ⊙K → ifft2 → crop pipeline.
        for (n, padded) in [(20usize, 20usize), (20, 40), (25, 50), (50, 50)] {
            let plan = Fft2::new(padded, padded);
            let kernel = CGrid::from_fn(padded, padded, |r, c| {
                Complex64::cis((r as f64 * 0.3 - c as f64 * 0.5).sin())
            });
            let batch = random_batch(3, n);
            let out = plan.apply_transfer_batch(&batch, &kernel, n, 2);
            for b in 0..3 {
                let mut manual = if padded == n {
                    batch.to_cgrid(b)
                } else {
                    batch.to_cgrid(b).pad_centered(padded, padded)
                };
                plan.forward(&mut manual);
                manual.hadamard_inplace(&kernel);
                plan.inverse(&mut manual);
                if padded != n {
                    manual = manual.crop_centered(n, n);
                }
                let diff = out.to_cgrid(b).max_abs_diff(&manual);
                assert!(diff < 1e-12, "inner {n} padded {padded} sample {b}: {diff}");
            }
        }
    }

    /// PR-3-style transfer hop on one interleaved sample: deinterleave,
    /// the identical column-pass/transpose/kernel pipeline with Vec-swap
    /// ping-pong, reinterleave. The planar-native path must reproduce this
    /// **bit-for-bit** — same arithmetic in the same order, only the
    /// storage layout changed.
    fn interleaved_reference_hop(
        n: usize,
        sample: &[Complex64],
        kr: &[f64],
        ki: &[f64],
        scale: f64,
    ) -> Vec<Complex64> {
        let v = VecMixed2d::new(n);
        let cp = |re: &mut Vec<f64>,
                  im: &mut Vec<f64>,
                  sre: &mut Vec<f64>,
                  sim: &mut Vec<f64>,
                  inverse: bool| {
            v.column_pass(re, im, sre, sim, inverse);
            if v.odd_stages() {
                std::mem::swap(re, sre);
                std::mem::swap(im, sim);
            }
        };
        let mut re = vec![0.0; n * n];
        let mut im = vec![0.0; n * n];
        deinterleave(sample, &mut re, &mut im);
        let mut sre = vec![0.0; n * n];
        let mut sim = vec![0.0; n * n];
        cp(&mut re, &mut im, &mut sre, &mut sim, false);
        transpose_plane(&re, n, &mut sre);
        transpose_plane(&im, n, &mut sim);
        std::mem::swap(&mut re, &mut sre);
        std::mem::swap(&mut im, &mut sim);
        cp(&mut re, &mut im, &mut sre, &mut sim, false);
        hadamard_scale(&mut re, &mut im, kr, ki, scale);
        cp(&mut re, &mut im, &mut sre, &mut sim, true);
        transpose_plane(&re, n, &mut sre);
        transpose_plane(&im, n, &mut sim);
        std::mem::swap(&mut re, &mut sre);
        std::mem::swap(&mut im, &mut sim);
        cp(&mut re, &mut im, &mut sre, &mut sim, true);
        let mut out = vec![Complex64::ZERO; n * n];
        interleave(&re, &im, &mut out);
        out
    }

    #[test]
    fn planar_hop_is_bit_identical_to_interleaved_reference() {
        // The planar-native storage refactor must not change a single bit
        // of the hop's output versus the PR-3 interleaved pipeline, at the
        // paper-relevant grids (20 mixed-radix miniature, 32 power of two,
        // 200 paper-native). The reference *is* the vectorized pipeline,
        // so the comparison is meaningless under the scalar kill switch.
        if photonn_math::envswitch::engaged("PHOTONN_FFT_NO_VEC", false) {
            return;
        }
        for n in [20usize, 32, 200] {
            let plan = Fft2::new(n, n);
            let kernel = CGrid::from_fn(n, n, |r, c| {
                Complex64::cis((r as f64 * 0.23 - c as f64 * 0.41).sin())
            });
            let batch = random_batch(3, n);
            let out = plan.apply_transfer_batch(&batch, &kernel, n, 2);

            let kt = kernel.transpose();
            let (kr, ki): (Vec<f64>, Vec<f64>) = kt.as_slice().iter().map(|z| (z.re, z.im)).unzip();
            let scale = 1.0 / (n * n) as f64;
            for b in 0..3 {
                let reference =
                    interleaved_reference_hop(n, batch.to_cgrid(b).as_slice(), &kr, &ki, scale);
                let got = out.to_cgrid(b);
                assert_eq!(
                    got.as_slice(),
                    &reference[..],
                    "grid {n} sample {b}: planar hop diverged from the interleaved reference"
                );
            }
        }
    }

    #[test]
    fn fused_modulate_hop_is_bit_identical_to_unfused() {
        // modulate_transfer_batch_owned must equal hadamard_bcast followed
        // by the plain hop bit-for-bit — the modulation is the identical
        // elementwise product, just moved inside the worker sweep.
        for (n, padded) in [(20usize, 20usize), (32, 32), (8, 16)] {
            let plan = Fft2::new(padded, padded);
            let kernel = CGrid::from_fn(padded, padded, |r, c| {
                Complex64::cis((r as f64 * 0.31 - c as f64 * 0.17).sin())
            });
            let mask = CGrid::from_fn(n, n, |r, c| Complex64::cis((r * 3 + c) as f64 * 0.9));
            let batch = random_batch(3, n);

            let mut unfused = batch.clone();
            unfused.hadamard_bcast_inplace(&mask);
            let unfused = plan.apply_transfer_batch_owned(unfused, &kernel, n, 2);
            let fused = plan.modulate_transfer_batch_owned(batch.clone(), &mask, &kernel, n, 2);
            assert_eq!(fused, unfused, "inner {n} padded {padded}");
        }
    }

    #[test]
    fn batched_hop_is_bit_identical_to_single_sample_hops() {
        // Batching must be a pure layout concern: the N-sample planar hop
        // and N single-sample hops produce bit-identical fields.
        for n in [20usize, 32] {
            let plan = Fft2::new(n, n);
            let kernel = CGrid::from_fn(n, n, |r, c| {
                Complex64::cis((r as f64 * 0.37 + c as f64 * 0.19).cos())
            });
            let batch = random_batch(4, n);
            let together = plan.apply_transfer_batch(&batch, &kernel, n, 2);
            for b in 0..4 {
                let single = BatchCGrid::from_samples(&[batch.to_cgrid(b)]);
                let alone = plan.apply_transfer_batch(&single, &kernel, n, 1);
                assert_eq!(
                    together.to_cgrid(b),
                    alone.to_cgrid(0),
                    "grid {n} sample {b}: batched hop != single-sample hop"
                );
            }
        }
    }

    #[test]
    fn batch_threading_is_deterministic_on_mixed_radix_grid() {
        let plan = Fft2::new(20, 20);
        let mut serial = random_batch(7, 20);
        let mut threaded = serial.clone();
        plan.forward_batch(&mut serial, 1);
        plan.forward_batch(&mut threaded, 4);
        assert_eq!(serial, threaded);
    }

    #[test]
    #[should_panic(expected = "batch sample shape")]
    fn batch_shape_mismatch_panics() {
        let plan = Fft2::new(4, 4);
        let mut batch = BatchCGrid::zeros(2, 4, 5);
        plan.forward_batch(&mut batch, 1);
    }

    #[test]
    fn real_even_input_gives_real_spectrum_dc() {
        let img = Grid::from_fn(8, 8, |r, c| ((r * 8 + c) % 5) as f64);
        let spec = fft2(&CGrid::from_amplitude(&img));
        assert!((spec[(0, 0)].re - img.sum()).abs() < 1e-9);
        assert!(spec[(0, 0)].im.abs() < 1e-9);
    }
}
