//! Planned 2-D FFT over [`CGrid`] by row-column decomposition.

use photonn_math::{CGrid, Complex64};
use std::sync::Arc;

use crate::{Fft, Planner};

/// A reusable 2-D FFT plan for a fixed `rows × cols` shape.
///
/// Forward is unnormalized; [`Fft2::inverse`] divides by `rows·cols` so the
/// pair round-trips. [`Fft2::inverse_unnormalized`] is the exact adjoint of
/// [`Fft2::forward`] (needed by reverse-mode AD).
///
/// # Examples
///
/// ```
/// use photonn_fft::Fft2;
/// use photonn_math::{CGrid, Complex64};
///
/// let plan = Fft2::new(4, 8);
/// let mut field = CGrid::full(4, 8, Complex64::ONE);
/// plan.forward(&mut field);
/// // DC bin collects everything.
/// assert!((field[(0, 0)].re - 32.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Fft2 {
    rows: usize,
    cols: usize,
    row_plan: Arc<Fft>,
    col_plan: Arc<Fft>,
}

impl Fft2 {
    /// Plans a 2-D transform for `rows × cols` grids.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        let planner = Planner::new();
        Self::with_planner(rows, cols, &planner)
    }

    /// Plans using (and populating) a shared [`Planner`] cache.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_planner(rows: usize, cols: usize, planner: &Planner) -> Self {
        assert!(rows > 0 && cols > 0, "FFT2 dimensions must be positive");
        Fft2 {
            rows,
            cols,
            row_plan: planner.plan(cols),
            col_plan: planner.plan(rows),
        }
    }

    /// Planned shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// In-place unnormalized forward 2-D DFT.
    ///
    /// # Panics
    ///
    /// Panics if `grid` does not have the planned shape.
    pub fn forward(&self, grid: &mut CGrid) {
        self.check(grid);
        for r in 0..self.rows {
            self.row_plan.forward(grid.row_mut(r));
        }
        self.columns(grid, |plan, buf| plan.forward(buf));
    }

    /// In-place inverse 2-D DFT including the `1/(rows·cols)` factor.
    ///
    /// # Panics
    ///
    /// Panics if `grid` does not have the planned shape.
    pub fn inverse(&self, grid: &mut CGrid) {
        self.inverse_unnormalized(grid);
        grid.scale_inplace(1.0 / (self.rows * self.cols) as f64);
    }

    /// In-place inverse 2-D DFT without normalization — the adjoint of
    /// [`Fft2::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `grid` does not have the planned shape.
    pub fn inverse_unnormalized(&self, grid: &mut CGrid) {
        self.check(grid);
        for r in 0..self.rows {
            self.row_plan.inverse_unnormalized(grid.row_mut(r));
        }
        self.columns(grid, |plan, buf| plan.inverse_unnormalized(buf));
    }

    fn check(&self, grid: &CGrid) {
        assert_eq!(
            grid.shape(),
            (self.rows, self.cols),
            "grid shape {:?} != planned {:?}",
            grid.shape(),
            (self.rows, self.cols)
        );
    }

    /// Applies `f` to every column through a gather/scatter buffer.
    fn columns(&self, grid: &mut CGrid, f: impl Fn(&Fft, &mut [Complex64])) {
        let mut buf = vec![Complex64::ZERO; self.rows];
        for c in 0..self.cols {
            for (r, b) in buf.iter_mut().enumerate() {
                *b = grid[(r, c)];
            }
            f(&self.col_plan, &mut buf);
            for (r, &b) in buf.iter().enumerate() {
                grid[(r, c)] = b;
            }
        }
    }
}

/// Convenience one-shot forward 2-D FFT (plans internally).
pub fn fft2(grid: &CGrid) -> CGrid {
    let mut out = grid.clone();
    Fft2::new(grid.rows(), grid.cols()).forward(&mut out);
    out
}

/// Convenience one-shot normalized inverse 2-D FFT (plans internally).
pub fn ifft2(grid: &CGrid) -> CGrid {
    let mut out = grid.clone();
    Fft2::new(grid.rows(), grid.cols()).inverse(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_math::Grid;

    fn naive_dft2(g: &CGrid) -> CGrid {
        let (rows, cols) = g.shape();
        CGrid::from_fn(rows, cols, |kr, kc| {
            let mut acc = Complex64::ZERO;
            for r in 0..rows {
                for c in 0..cols {
                    let angle = -2.0
                        * std::f64::consts::PI
                        * (kr as f64 * r as f64 / rows as f64
                            + kc as f64 * c as f64 / cols as f64);
                    acc += g[(r, c)] * Complex64::cis(angle);
                }
            }
            acc
        })
    }

    #[test]
    fn matches_naive_2d_dft() {
        for (rows, cols) in [(4usize, 4usize), (8, 6), (5, 7), (10, 16)] {
            let g = CGrid::from_fn(rows, cols, |r, c| {
                Complex64::new((r as f64 * 0.8).sin(), (c as f64 * 1.7).cos())
            });
            let expected = naive_dft2(&g);
            let got = fft2(&g);
            assert!(
                got.max_abs_diff(&expected) < 1e-9,
                "({rows},{cols}): {}",
                got.max_abs_diff(&expected)
            );
        }
    }

    #[test]
    fn roundtrip() {
        let g = CGrid::from_fn(16, 12, |r, c| Complex64::new(r as f64, -(c as f64)));
        let back = ifft2(&fft2(&g));
        assert!(back.max_abs_diff(&g) < 1e-9);
    }

    #[test]
    fn parseval_2d() {
        // With unnormalized forward: Σ|X|² = N·Σ|x|².
        let g = CGrid::from_fn(8, 8, |r, c| Complex64::new((r + c) as f64, 1.0));
        let spec = fft2(&g);
        let n = 64.0;
        assert!((spec.total_power() - n * g.total_power()).abs() / (n * g.total_power()) < 1e-12);
    }

    #[test]
    fn adjoint_property_2d() {
        let x = CGrid::from_fn(6, 10, |r, c| Complex64::new(r as f64, c as f64));
        let y = CGrid::from_fn(6, 10, |r, c| Complex64::new(c as f64 - 1.0, r as f64 * 0.5));
        let plan = Fft2::new(6, 10);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fhy = y.clone();
        plan.inverse_unnormalized(&mut fhy);
        let inner = |a: &CGrid, b: &CGrid| -> Complex64 {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(p, q)| *p * q.conj())
                .sum()
        };
        let lhs = inner(&fx, &y);
        let rhs = inner(&x, &fhy);
        assert!((lhs - rhs).norm() < 1e-8);
    }

    #[test]
    fn separable_input_has_separable_spectrum() {
        // x[r,c] = f[r]·g[c] ⇒ X = F ⊗ G; check against 1-D transforms.
        let rows = 8;
        let cols = 5;
        let f: Vec<Complex64> = (0..rows).map(|r| Complex64::new(r as f64, 0.3)).collect();
        let gv: Vec<Complex64> = (0..cols).map(|c| Complex64::new(1.0, c as f64)).collect();
        let grid = CGrid::from_fn(rows, cols, |r, c| f[r] * gv[c]);
        let spec = fft2(&grid);
        let mut ff = f.clone();
        Fft::new(rows).forward(&mut ff);
        let mut fg = gv.clone();
        Fft::new(cols).forward(&mut fg);
        for r in 0..rows {
            for c in 0..cols {
                assert!((spec[(r, c)] - ff[r] * fg[c]).norm() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "grid shape")]
    fn shape_mismatch_panics() {
        let plan = Fft2::new(4, 4);
        let mut g = CGrid::zeros(4, 5);
        plan.forward(&mut g);
    }

    #[test]
    fn real_even_input_gives_real_spectrum_dc() {
        let img = Grid::from_fn(8, 8, |r, c| ((r * 8 + c) % 5) as f64);
        let spec = fft2(&CGrid::from_amplitude(&img));
        assert!((spec[(0, 0)].re - img.sum()).abs() < 1e-9);
        assert!(spec[(0, 0)].im.abs() < 1e-9);
    }
}
