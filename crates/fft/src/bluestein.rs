//! Bluestein's chirp-z algorithm: O(n log n) DFT for *any* length,
//! including large primes, via a power-of-two circular convolution.

use photonn_math::Complex64;

use crate::radix2::Radix2;

/// Bluestein plan: chirp sequences and the precomputed spectrum of the
/// chirp filter, convolved through an inner radix-2 FFT of length
/// `M = next_pow2(2n-1)`.
#[derive(Debug)]
pub(crate) struct Bluestein {
    n: usize,
    m: usize,
    inner: Radix2,
    /// `exp(-iπ j²/n)` for `j < n`.
    chirp: Vec<Complex64>,
    /// Forward FFT of the wrapped conjugate chirp, length `m`.
    filter_spectrum: Vec<Complex64>,
}

impl Bluestein {
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub(crate) fn new(n: usize) -> Self {
        assert!(n >= 2, "bluestein needs n >= 2");
        let m = (2 * n - 1).next_power_of_two();
        let inner = Radix2::new(m);
        // j² mod 2n keeps the phase argument exact for huge n.
        let chirp: Vec<Complex64> = (0..n)
            .map(|j| {
                let q = (j * j) % (2 * n);
                Complex64::cis(-std::f64::consts::PI * q as f64 / n as f64)
            })
            .collect();
        let mut filter = vec![Complex64::ZERO; m];
        filter[0] = chirp[0].conj();
        for j in 1..n {
            let b = chirp[j].conj();
            filter[j] = b;
            filter[m - j] = b; // circular wrap: b_{-j} = b_j
        }
        inner.process(&mut filter);
        Bluestein {
            n,
            m,
            inner,
            chirp,
            filter_spectrum: filter,
        }
    }

    pub(crate) fn process(&self, data: &mut [Complex64]) {
        debug_assert_eq!(data.len(), self.n);
        // a_j = x_j · chirp_j, zero-padded to M.
        let mut a = vec![Complex64::ZERO; self.m];
        for j in 0..self.n {
            a[j] = data[j] * self.chirp[j];
        }
        // Circular convolution with the chirp filter.
        self.inner.process(&mut a);
        for (z, f) in a.iter_mut().zip(&self.filter_spectrum) {
            *z *= *f;
        }
        // Inverse inner FFT via conjugation, including 1/M.
        for z in a.iter_mut() {
            *z = z.conj();
        }
        self.inner.process(&mut a);
        let s = 1.0 / self.m as f64;
        for (k, out) in data.iter_mut().enumerate() {
            *out = a[k].conj().scale(s) * self.chirp[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_spectra_close, naive_dft};

    #[test]
    fn matches_naive_dft_on_primes() {
        for n in [2usize, 3, 67, 97, 101, 127, 251] {
            let input: Vec<Complex64> = (0..n)
                .map(|j| Complex64::new((j as f64 * 0.9).sin(), (j as f64 * 0.23).cos()))
                .collect();
            let expected = naive_dft(&input);
            let mut got = input;
            Bluestein::new(n).process(&mut got);
            assert_spectra_close(&got, &expected, 1e-8, &format!("bluestein n={n}"));
        }
    }

    #[test]
    fn matches_naive_dft_on_composites_too() {
        // Bluestein is valid for any n, not just primes.
        for n in [12usize, 100, 200] {
            let input: Vec<Complex64> = (0..n).map(|j| Complex64::new(j as f64, -1.0)).collect();
            let expected = naive_dft(&input);
            let mut got = input;
            Bluestein::new(n).process(&mut got);
            assert_spectra_close(&got, &expected, 1e-8, &format!("bluestein n={n}"));
        }
    }

    #[test]
    fn dc_input_concentrates_in_bin_zero() {
        let n = 53;
        let mut data = vec![Complex64::ONE; n];
        Bluestein::new(n).process(&mut data);
        assert!((data[0].re - n as f64).abs() < 1e-8);
        for z in &data[1..] {
            assert!(z.norm() < 1e-8);
        }
    }
}
