//! Iterative in-place radix-2 Cooley–Tukey FFT (power-of-two lengths).

use photonn_math::Complex64;

/// Precomputed state for a power-of-two FFT: bit-reversal permutation and
/// the half-length twiddle table `exp(-2πi·k/n)`.
#[derive(Debug)]
pub(crate) struct Radix2 {
    n: usize,
    rev: Vec<u32>,
    twiddles: Vec<Complex64>,
}

impl Radix2 {
    /// # Panics
    ///
    /// Panics unless `n` is a power of two with `n >= 2`.
    pub(crate) fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "radix-2 needs a power of two"
        );
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        let twiddles = (0..n / 2)
            .map(|k| {
                let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                Complex64::cis(angle)
            })
            .collect();
        Radix2 { n, rev, twiddles }
    }

    /// In-place decimation-in-time butterfly network.
    pub(crate) fn process(&self, data: &mut [Complex64]) {
        debug_assert_eq!(data.len(), self.n);
        // Bit-reversal permutation.
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies: stage lengths 2, 4, ..., n.
        let mut len = 2;
        while len <= self.n {
            let half = len / 2;
            let step = self.n / len; // twiddle stride into the n/2 table
            for start in (0..self.n).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * step];
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_spectra_close, naive_dft};

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            let input: Vec<Complex64> = (0..n)
                .map(|j| Complex64::new((j as f64).sin(), (j as f64 * 0.7).cos()))
                .collect();
            let expected = naive_dft(&input);
            let mut got = input;
            Radix2::new(n).process(&mut got);
            assert_spectra_close(&got, &expected, 1e-9, &format!("radix2 n={n}"));
        }
    }

    #[test]
    fn single_tone_bins_correctly() {
        // x[j] = exp(2πi·3j/16) puts all energy in bin 3 (forward is e^{-}).
        let n = 16;
        let mut data: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64))
            .collect();
        Radix2::new(n).process(&mut data);
        for (k, z) in data.iter().enumerate() {
            let expected = if k == 3 { n as f64 } else { 0.0 };
            assert!((z.norm() - expected).abs() < 1e-9, "bin {k}: {}", z.norm());
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Radix2::new(6);
    }
}
