//! Planar vectorized mixed-radix column-transform engine (radix-8/4/2/5).
//!
//! This is the batched hot-loop engine behind [`crate::Fft2`]'s planar
//! execute paths. It computes `n` simultaneous length-`n` DFTs along the
//! *column axis* of a square `n × n` plane pair (split re/im `f64`
//! planes): a butterfly combines whole rows elementwise, so every complex
//! operation is shuffle-free `f64` arithmetic over contiguous lanes that
//! the compiler autovectorizes. The row pass of a 2-D transform runs as a
//! column pass over transposed planes (see `Fft2`).
//!
//! Where the old power-of-two-only engine used bit-reversal plus iterative
//! radix-2 stages, this one is a **self-sorting Stockham** pipeline:
//! every stage reads one plane pair and writes a second (ping-pong), and
//! the inter-stage permutation is folded into the write pattern, so no
//! digit-reversal pass exists and non-power-of-two lengths need no extra
//! machinery. A length decomposes greedily into radix-8 stages (triples
//! of twos — every stage is one full memory pass over the planes, so
//! fewer, fatter stages win on bandwidth-bound grids), one radix-4 or
//! radix-2 stage for the leftover twos, and radix-5 stages — covering
//! every `n = 2^a·5^b`, in particular the paper's native mask size
//! `200 = 2³·5²` (one radix-8 + two radix-5 passes) and its double-padded
//! companion `400`, which previously fell back to the scalar recursive
//! mixed-radix engine per sample.
//!
//! One Stockham stage with radix `p`, `l` remaining groups and `m`
//! already-combined transforms (invariant `p·l·m = n`) maps, for
//! `j ∈ [0,l)`, `s ∈ [0,p)`:
//!
//! ```text
//! dst[(p·j + s)·m .. +m] = ω_{p·l}^{j·s} · Σ_q ω_p^{q·s} · src[(j + q·l)·m .. +m]
//! ```
//!
//! where the `m`-row blocks are contiguous `m·n`-lane ranges of the plane
//! — the butterfly is a handful of elementwise passes over whole blocks,
//! and the per-(j,s) twiddle is a scalar held in registers across the
//! sweep. The inverse transform uses conjugated twiddles and butterfly
//! constants directly (monomorphized via a const-generic flag) instead of
//! the scalar engines' conjugate–forward–conjugate detour.

use photonn_math::Complex64;

/// One self-sorting Stockham stage: radix plus its twiddle table.
#[derive(Debug)]
struct Stage {
    /// Butterfly radix (2, 4, 5 or 8).
    p: usize,
    /// Number of butterfly groups at this stage.
    l: usize,
    /// Transform length already combined before this stage.
    m: usize,
    /// Forward twiddles `ω_{p·l}^{j·s}` for `j ∈ [0,l)`, `s ∈ [1,p)`,
    /// flattened as `[j·(p-1) + (s-1)]`. Inverse negates the imaginary
    /// part at use.
    twr: Vec<f64>,
    twi: Vec<f64>,
}

/// Planar vectorized mixed-radix engine for square 2-D transforms of side
/// `n = 2^a·5^b` (see the module docs).
#[derive(Debug)]
pub(crate) struct VecMixed2d {
    n: usize,
    stages: Vec<Stage>,
}

impl VecMixed2d {
    /// `true` if this engine can transform side length `n`: at least 2,
    /// with no prime factor other than 2 and 5 (the radices it emits).
    pub(crate) fn supports(n: usize) -> bool {
        if n < 2 {
            return false;
        }
        let mut n = n;
        for p in [2usize, 5] {
            while n.is_multiple_of(p) {
                n /= p;
            }
        }
        n == 1
    }

    /// The radix schedule for length `n`: greedy radix-8 stages (every
    /// stage is one full memory pass over the planes, so fewer, fatter
    /// stages win on the bandwidth-bound grids), a radix-4 or radix-2 for
    /// the remaining twos, then the radix-5 stages.
    /// `schedule(200) == [8, 5, 5]`, `schedule(32) == [8, 4]`.
    ///
    /// # Panics
    ///
    /// Panics if [`VecMixed2d::supports`] is false for `n`.
    pub(crate) fn schedule(n: usize) -> Vec<usize> {
        assert!(Self::supports(n), "unsupported vectorized length {n}");
        let (mut twos, mut fives, mut rest) = (0usize, 0usize, n);
        while rest.is_multiple_of(2) {
            twos += 1;
            rest /= 2;
        }
        while rest.is_multiple_of(5) {
            fives += 1;
            rest /= 5;
        }
        let mut radices = vec![8; twos / 3];
        match twos % 3 {
            1 => radices.push(2),
            2 => radices.push(4),
            _ => {}
        }
        radices.extend(std::iter::repeat_n(5, fives));
        radices
    }

    /// Plans the stage pipeline for side length `n`.
    ///
    /// # Panics
    ///
    /// Panics if [`VecMixed2d::supports`] is false for `n`.
    pub(crate) fn new(n: usize) -> Self {
        let radices = Self::schedule(n);
        let mut stages = Vec::with_capacity(radices.len());
        let mut m = 1;
        for p in radices {
            let l = n / (m * p);
            let mut twr = Vec::with_capacity(l * (p - 1));
            let mut twi = Vec::with_capacity(l * (p - 1));
            for j in 0..l {
                for s in 1..p {
                    let w = Complex64::cis(
                        -2.0 * std::f64::consts::PI * (j * s) as f64 / (p * l) as f64,
                    );
                    twr.push(w.re);
                    twi.push(w.im);
                }
            }
            stages.push(Stage { p, l, m, twr, twi });
            m *= p;
        }
        debug_assert_eq!(m, n);
        VecMixed2d { n, stages }
    }

    /// Side length this engine was planned for.
    #[inline]
    pub(crate) fn n(&self) -> usize {
        self.n
    }

    /// `true` if the stage pipeline has an odd number of stages — i.e.
    /// [`VecMixed2d::column_pass`] leaves its result in the scratch pair
    /// instead of the primary pair. Callers juggle which buffer is "live"
    /// by swapping their own `&mut` bindings (an O(1) pointer move), so no
    /// plane is ever copied to compensate for parity.
    #[inline]
    pub(crate) fn odd_stages(&self) -> bool {
        self.stages.len() % 2 == 1
    }

    /// Unnormalized DFT along the column axis of the `n × n` plane pair
    /// `(re, im)`, vectorized across each row. `(sre, sim)` is same-sized
    /// ping-pong scratch. Stages alternate between the two pairs, so the
    /// result lands in `(re, im)` for an even stage count and in
    /// `(sre, sim)` for an odd one (see [`VecMixed2d::odd_stages`]);
    /// operating on plain slices keeps the pass usable directly on plane
    /// views into a planar `BatchCGrid`, where a buffer swap is
    /// impossible. `inverse` computes the unnormalized adjoint.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any plane is not `n²` long.
    pub(crate) fn column_pass(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        sre: &mut [f64],
        sim: &mut [f64],
        inverse: bool,
    ) {
        let n = self.n;
        debug_assert_eq!(re.len(), n * n);
        debug_assert_eq!(im.len(), n * n);
        debug_assert_eq!(sre.len(), n * n);
        debug_assert_eq!(sim.len(), n * n);
        let mut in_primary = true;
        for stage in &self.stages {
            if in_primary {
                run_stage(stage, re, im, sre, sim, n, inverse);
            } else {
                run_stage(stage, sre, sim, re, im, n, inverse);
            }
            in_primary = !in_primary;
        }
    }
}

/// Dispatches one stage from `(sr, si)` into `(dr, di)`.
fn run_stage(
    stage: &Stage,
    sr: &[f64],
    si: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
    n: usize,
    inverse: bool,
) {
    match (stage.p, inverse) {
        (2, false) => stage_radix2::<false>(stage, sr, si, dr, di, n),
        (2, true) => stage_radix2::<true>(stage, sr, si, dr, di, n),
        (4, false) => stage_radix4::<false>(stage, sr, si, dr, di, n),
        (4, true) => stage_radix4::<true>(stage, sr, si, dr, di, n),
        (5, false) => stage_radix5::<false>(stage, sr, si, dr, di, n),
        (5, true) => stage_radix5::<true>(stage, sr, si, dr, di, n),
        (8, false) => stage_radix8::<false>(stage, sr, si, dr, di, n),
        (8, true) => stage_radix8::<true>(stage, sr, si, dr, di, n),
        (p, _) => unreachable!("unsupported radix {p}"),
    }
}

impl Stage {
    /// Twiddle `ω_{p·l}^{j·s}` (conjugated when `INV`), `s ≥ 1`.
    #[inline]
    fn tw<const INV: bool>(&self, j: usize, s: usize) -> (f64, f64) {
        let idx = j * (self.p - 1) + (s - 1);
        let wi = self.twi[idx];
        (self.twr[idx], if INV { -wi } else { wi })
    }
}

fn stage_radix2<const INV: bool>(
    st: &Stage,
    sr: &[f64],
    si: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
    n: usize,
) {
    let (l, m) = (st.l, st.m);
    let mn = m * n;
    for j in 0..l {
        let x0r = &sr[j * mn..][..mn];
        let x0i = &si[j * mn..][..mn];
        let x1r = &sr[(j + l) * mn..][..mn];
        let x1i = &si[(j + l) * mn..][..mn];
        let (w1r, w1i) = st.tw::<INV>(j, 1);
        let (y0r, y1r) = dr[2 * j * mn..][..2 * mn].split_at_mut(mn);
        let (y0i, y1i) = di[2 * j * mn..][..2 * mn].split_at_mut(mn);
        for i in 0..mn {
            let (ar, ai) = (x0r[i], x0i[i]);
            let (br, bi) = (x1r[i], x1i[i]);
            y0r[i] = ar + br;
            y0i[i] = ai + bi;
            let (ur, ui) = (ar - br, ai - bi);
            y1r[i] = ur * w1r - ui * w1i;
            y1i[i] = ur * w1i + ui * w1r;
        }
    }
}

fn stage_radix4<const INV: bool>(
    st: &Stage,
    sr: &[f64],
    si: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
    n: usize,
) {
    let (l, m) = (st.l, st.m);
    let mn = m * n;
    // Forward uses ω₄ = -i; the inverse conjugates it.
    let sgn = if INV { -1.0 } else { 1.0 };
    for j in 0..l {
        let x0r = &sr[j * mn..][..mn];
        let x0i = &si[j * mn..][..mn];
        let x1r = &sr[(j + l) * mn..][..mn];
        let x1i = &si[(j + l) * mn..][..mn];
        let x2r = &sr[(j + 2 * l) * mn..][..mn];
        let x2i = &si[(j + 2 * l) * mn..][..mn];
        let x3r = &sr[(j + 3 * l) * mn..][..mn];
        let x3i = &si[(j + 3 * l) * mn..][..mn];
        let (w1r, w1i) = st.tw::<INV>(j, 1);
        let (w2r, w2i) = st.tw::<INV>(j, 2);
        let (w3r, w3i) = st.tw::<INV>(j, 3);
        let group = &mut dr[4 * j * mn..][..4 * mn];
        let (y0r, rest) = group.split_at_mut(mn);
        let (y1r, rest) = rest.split_at_mut(mn);
        let (y2r, y3r) = rest.split_at_mut(mn);
        let group = &mut di[4 * j * mn..][..4 * mn];
        let (y0i, rest) = group.split_at_mut(mn);
        let (y1i, rest) = rest.split_at_mut(mn);
        let (y2i, y3i) = rest.split_at_mut(mn);
        for i in 0..mn {
            let (t0r, t0i) = (x0r[i] + x2r[i], x0i[i] + x2i[i]);
            let (t1r, t1i) = (x0r[i] - x2r[i], x0i[i] - x2i[i]);
            let (t2r, t2i) = (x1r[i] + x3r[i], x1i[i] + x3i[i]);
            // t3 multiplied by ∓i (forward: -i): (r, i) ↦ ±(i, -r).
            let (t3r, t3i) = (sgn * (x1i[i] - x3i[i]), sgn * (x3r[i] - x1r[i]));
            y0r[i] = t0r + t2r;
            y0i[i] = t0i + t2i;
            let (d1r, d1i) = (t1r + t3r, t1i + t3i);
            y1r[i] = d1r * w1r - d1i * w1i;
            y1i[i] = d1r * w1i + d1i * w1r;
            let (d2r, d2i) = (t0r - t2r, t0i - t2i);
            y2r[i] = d2r * w2r - d2i * w2i;
            y2i[i] = d2r * w2i + d2i * w2r;
            let (d3r, d3i) = (t1r - t3r, t1i - t3i);
            y3r[i] = d3r * w3r - d3i * w3i;
            y3i[i] = d3r * w3i + d3i * w3r;
        }
    }
}

fn stage_radix5<const INV: bool>(
    st: &Stage,
    sr: &[f64],
    si: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
    n: usize,
) {
    let (l, m) = (st.l, st.m);
    let mn = m * n;
    // 5-point DFT via the conjugate-pair split: real constants
    // cos/sin(2π/5) and cos/sin(4π/5); the `±i` recombination flips sign
    // between forward and inverse.
    let th = 2.0 * std::f64::consts::PI / 5.0;
    let (c1, s1) = (th.cos(), th.sin());
    let (c2, s2) = ((2.0 * th).cos(), (2.0 * th).sin());
    let sgn = if INV { -1.0 } else { 1.0 };
    for j in 0..l {
        let x0r = &sr[j * mn..][..mn];
        let x0i = &si[j * mn..][..mn];
        let x1r = &sr[(j + l) * mn..][..mn];
        let x1i = &si[(j + l) * mn..][..mn];
        let x2r = &sr[(j + 2 * l) * mn..][..mn];
        let x2i = &si[(j + 2 * l) * mn..][..mn];
        let x3r = &sr[(j + 3 * l) * mn..][..mn];
        let x3i = &si[(j + 3 * l) * mn..][..mn];
        let x4r = &sr[(j + 4 * l) * mn..][..mn];
        let x4i = &si[(j + 4 * l) * mn..][..mn];
        let (w1r, w1i) = st.tw::<INV>(j, 1);
        let (w2r, w2i) = st.tw::<INV>(j, 2);
        let (w3r, w3i) = st.tw::<INV>(j, 3);
        let (w4r, w4i) = st.tw::<INV>(j, 4);
        let group = &mut dr[5 * j * mn..][..5 * mn];
        let (y0r, rest) = group.split_at_mut(mn);
        let (y1r, rest) = rest.split_at_mut(mn);
        let (y2r, rest) = rest.split_at_mut(mn);
        let (y3r, y4r) = rest.split_at_mut(mn);
        let group = &mut di[5 * j * mn..][..5 * mn];
        let (y0i, rest) = group.split_at_mut(mn);
        let (y1i, rest) = rest.split_at_mut(mn);
        let (y2i, rest) = rest.split_at_mut(mn);
        let (y3i, y4i) = rest.split_at_mut(mn);
        for i in 0..mn {
            // Conjugate-pair sums/differences of the outer inputs.
            let (t1r, t1i) = (x1r[i] + x4r[i], x1i[i] + x4i[i]);
            let (t2r, t2i) = (x2r[i] + x3r[i], x2i[i] + x3i[i]);
            let (t3r, t3i) = (x1r[i] - x4r[i], x1i[i] - x4i[i]);
            let (t4r, t4i) = (x2r[i] - x3r[i], x2i[i] - x3i[i]);
            let (ar, ai) = (x0r[i], x0i[i]);
            y0r[i] = ar + t1r + t2r;
            y0i[i] = ai + t1i + t2i;
            let (m1r, m1i) = (ar + c1 * t1r + c2 * t2r, ai + c1 * t1i + c2 * t2i);
            let (m2r, m2i) = (ar + c2 * t1r + c1 * t2r, ai + c2 * t1i + c1 * t2i);
            let (m3r, m3i) = (s1 * t3r + s2 * t4r, s1 * t3i + s2 * t4i);
            let (m4r, m4i) = (s2 * t3r - s1 * t4r, s2 * t3i - s1 * t4i);
            // d1/d4 = m1 ∓ i·m3, d2/d3 = m2 ∓ i·m4 (forward signs).
            let (d1r, d1i) = (m1r + sgn * m3i, m1i - sgn * m3r);
            let (d4r, d4i) = (m1r - sgn * m3i, m1i + sgn * m3r);
            let (d2r, d2i) = (m2r + sgn * m4i, m2i - sgn * m4r);
            let (d3r, d3i) = (m2r - sgn * m4i, m2i + sgn * m4r);
            y1r[i] = d1r * w1r - d1i * w1i;
            y1i[i] = d1r * w1i + d1i * w1r;
            y2r[i] = d2r * w2r - d2i * w2i;
            y2i[i] = d2r * w2i + d2i * w2r;
            y3r[i] = d3r * w3r - d3i * w3i;
            y3i[i] = d3r * w3i + d3i * w3r;
            y4r[i] = d4r * w4r - d4i * w4i;
            y4i[i] = d4r * w4i + d4i * w4r;
        }
    }
}

fn stage_radix8<const INV: bool>(
    st: &Stage,
    sr: &[f64],
    si: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
    n: usize,
) {
    let (l, m) = (st.l, st.m);
    let mn = m * n;
    // Radix-8 as two nested radix-4/2 splits: a 4-point DFT of the even
    // inputs, a 4-point DFT of the odds, and the ω₈-rotated recombination.
    // ω₈ = (1 − i)/√2 forward; `sgn` conjugates everything for the
    // inverse. One radix-8 stage replaces a radix-4 + radix-2 pair — one
    // full plane pass instead of two on the bandwidth-bound grids.
    let c = std::f64::consts::FRAC_1_SQRT_2;
    let sgn = if INV { -1.0 } else { 1.0 };
    for j in 0..l {
        let x0r = &sr[j * mn..][..mn];
        let x0i = &si[j * mn..][..mn];
        let x1r = &sr[(j + l) * mn..][..mn];
        let x1i = &si[(j + l) * mn..][..mn];
        let x2r = &sr[(j + 2 * l) * mn..][..mn];
        let x2i = &si[(j + 2 * l) * mn..][..mn];
        let x3r = &sr[(j + 3 * l) * mn..][..mn];
        let x3i = &si[(j + 3 * l) * mn..][..mn];
        let x4r = &sr[(j + 4 * l) * mn..][..mn];
        let x4i = &si[(j + 4 * l) * mn..][..mn];
        let x5r = &sr[(j + 5 * l) * mn..][..mn];
        let x5i = &si[(j + 5 * l) * mn..][..mn];
        let x6r = &sr[(j + 6 * l) * mn..][..mn];
        let x6i = &si[(j + 6 * l) * mn..][..mn];
        let x7r = &sr[(j + 7 * l) * mn..][..mn];
        let x7i = &si[(j + 7 * l) * mn..][..mn];
        let (w1r, w1i) = st.tw::<INV>(j, 1);
        let (w2r, w2i) = st.tw::<INV>(j, 2);
        let (w3r, w3i) = st.tw::<INV>(j, 3);
        let (w4r, w4i) = st.tw::<INV>(j, 4);
        let (w5r, w5i) = st.tw::<INV>(j, 5);
        let (w6r, w6i) = st.tw::<INV>(j, 6);
        let (w7r, w7i) = st.tw::<INV>(j, 7);
        let [y0r, y1r, y2r, y3r, y4r, y5r, y6r, y7r] = split8(&mut dr[8 * j * mn..][..8 * mn], mn);
        let [y0i, y1i, y2i, y3i, y4i, y5i, y6i, y7i] = split8(&mut di[8 * j * mn..][..8 * mn], mn);
        for i in 0..mn {
            // 4-point DFT of the even inputs (x0, x2, x4, x6).
            let (t0r, t0i) = (x0r[i] + x4r[i], x0i[i] + x4i[i]);
            let (t1r, t1i) = (x0r[i] - x4r[i], x0i[i] - x4i[i]);
            let (t2r, t2i) = (x2r[i] + x6r[i], x2i[i] + x6i[i]);
            let (t3r, t3i) = (sgn * (x2i[i] - x6i[i]), sgn * (x6r[i] - x2r[i]));
            let (e0r, e0i) = (t0r + t2r, t0i + t2i);
            let (e1r, e1i) = (t1r + t3r, t1i + t3i);
            let (e2r, e2i) = (t0r - t2r, t0i - t2i);
            let (e3r, e3i) = (t1r - t3r, t1i - t3i);
            // 4-point DFT of the odd inputs (x1, x3, x5, x7).
            let (u0r, u0i) = (x1r[i] + x5r[i], x1i[i] + x5i[i]);
            let (u1r, u1i) = (x1r[i] - x5r[i], x1i[i] - x5i[i]);
            let (u2r, u2i) = (x3r[i] + x7r[i], x3i[i] + x7i[i]);
            let (u3r, u3i) = (sgn * (x3i[i] - x7i[i]), sgn * (x7r[i] - x3r[i]));
            let (o0r, o0i) = (u0r + u2r, u0i + u2i);
            let (o1r, o1i) = (u1r + u3r, u1i + u3i);
            let (o2r, o2i) = (u0r - u2r, u0i - u2i);
            let (o3r, o3i) = (u1r - u3r, u1i - u3i);
            // Rotate the odd outputs by ω₈^s (s = 0..3):
            // ω₈⁰ = 1, ω₈¹ = (1 ∓ i)/√2, ω₈² = ∓i, ω₈³ = −(1 ± i)/√2.
            let (v1r, v1i) = (c * (o1r + sgn * o1i), c * (o1i - sgn * o1r));
            let (v2r, v2i) = (sgn * o2i, -sgn * o2r);
            let (v3r, v3i) = (c * (sgn * o3i - o3r), -c * (sgn * o3r + o3i));
            // Recombine, then apply the stage twiddles.
            y0r[i] = e0r + o0r;
            y0i[i] = e0i + o0i;
            let (d1r, d1i) = (e1r + v1r, e1i + v1i);
            y1r[i] = d1r * w1r - d1i * w1i;
            y1i[i] = d1r * w1i + d1i * w1r;
            let (d2r, d2i) = (e2r + v2r, e2i + v2i);
            y2r[i] = d2r * w2r - d2i * w2i;
            y2i[i] = d2r * w2i + d2i * w2r;
            let (d3r, d3i) = (e3r + v3r, e3i + v3i);
            y3r[i] = d3r * w3r - d3i * w3i;
            y3i[i] = d3r * w3i + d3i * w3r;
            let (d4r, d4i) = (e0r - o0r, e0i - o0i);
            y4r[i] = d4r * w4r - d4i * w4i;
            y4i[i] = d4r * w4i + d4i * w4r;
            let (d5r, d5i) = (e1r - v1r, e1i - v1i);
            y5r[i] = d5r * w5r - d5i * w5i;
            y5i[i] = d5r * w5i + d5i * w5r;
            let (d6r, d6i) = (e2r - v2r, e2i - v2i);
            y6r[i] = d6r * w6r - d6i * w6i;
            y6i[i] = d6r * w6i + d6i * w6r;
            let (d7r, d7i) = (e3r - v3r, e3i - v3i);
            y7r[i] = d7r * w7r - d7i * w7i;
            y7i[i] = d7r * w7i + d7i * w7r;
        }
    }
}

/// Splits one contiguous `8·mn` group into its eight `mn`-row blocks.
fn split8(buf: &mut [f64], mn: usize) -> [&mut [f64]; 8] {
    debug_assert_eq!(buf.len(), 8 * mn);
    let (y0, rest) = buf.split_at_mut(mn);
    let (y1, rest) = rest.split_at_mut(mn);
    let (y2, rest) = rest.split_at_mut(mn);
    let (y3, rest) = rest.split_at_mut(mn);
    let (y4, rest) = rest.split_at_mut(mn);
    let (y5, rest) = rest.split_at_mut(mn);
    let (y6, y7) = rest.split_at_mut(mn);
    [y0, y1, y2, y3, y4, y5, y6, y7]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::naive_dft;
    use photonn_math::planar::{deinterleave, interleave};

    /// Sizes the engine supports, spanning every radix combination.
    const SIZES: [usize; 16] = [
        2, 4, 5, 8, 10, 16, 20, 25, 32, 40, 50, 64, 100, 125, 200, 400,
    ];

    #[test]
    fn supports_exactly_two_five_smooth_lengths() {
        for n in SIZES {
            assert!(VecMixed2d::supports(n), "{n} should be supported");
        }
        for n in [0usize, 1, 3, 6, 7, 12, 48, 97, 127, 200 * 3] {
            assert!(!VecMixed2d::supports(n), "{n} should not be supported");
        }
    }

    #[test]
    fn schedule_shapes() {
        assert_eq!(VecMixed2d::schedule(2), vec![2]);
        assert_eq!(VecMixed2d::schedule(4), vec![4]);
        assert_eq!(VecMixed2d::schedule(5), vec![5]);
        assert_eq!(VecMixed2d::schedule(8), vec![8]);
        assert_eq!(VecMixed2d::schedule(20), vec![4, 5]);
        assert_eq!(VecMixed2d::schedule(32), vec![8, 4]);
        assert_eq!(VecMixed2d::schedule(40), vec![8, 5]);
        assert_eq!(VecMixed2d::schedule(64), vec![8, 8]);
        assert_eq!(VecMixed2d::schedule(100), vec![4, 5, 5]);
        // The paper's native grid: 200 = 2³·5² → one radix-8 and two
        // radix-5 stages (three full plane passes, down from four).
        assert_eq!(VecMixed2d::schedule(200), vec![8, 5, 5]);
        assert_eq!(VecMixed2d::schedule(256), vec![8, 8, 4]);
        for n in SIZES {
            assert_eq!(
                VecMixed2d::schedule(n).iter().product::<usize>(),
                n,
                "schedule({n}) must multiply back to n"
            );
        }
    }

    /// Test convenience: a column pass whose result always ends in the
    /// primary Vec pair (swapping the Vecs when the stage count is odd).
    fn column_pass_vecs(
        engine: &VecMixed2d,
        re: &mut Vec<f64>,
        im: &mut Vec<f64>,
        sre: &mut Vec<f64>,
        sim: &mut Vec<f64>,
        inverse: bool,
    ) {
        engine.column_pass(re, im, sre, sim, inverse);
        if engine.odd_stages() {
            std::mem::swap(re, sre);
            std::mem::swap(im, sim);
        }
    }

    /// Runs the engine's column pass on a plane whose every column is an
    /// independent signal, and checks each column against the naive DFT.
    fn check_column_pass(n: usize, inverse: bool) {
        let engine = VecMixed2d::new(n);
        // Column c carries signal x_c[r] (distinct per column).
        let data: Vec<Complex64> = (0..n * n)
            .map(|idx| {
                let (r, c) = (idx / n, idx % n);
                Complex64::new(
                    ((r * 13 + c * 7) as f64 * 0.61).sin(),
                    ((r * 3 + c * 11) as f64 * 0.29).cos(),
                )
            })
            .collect();
        let mut re = vec![0.0; n * n];
        let mut im = vec![0.0; n * n];
        deinterleave(&data, &mut re, &mut im);
        let mut sre = vec![0.0; n * n];
        let mut sim = vec![0.0; n * n];
        column_pass_vecs(&engine, &mut re, &mut im, &mut sre, &mut sim, inverse);
        let mut got = vec![Complex64::ZERO; n * n];
        interleave(&re, &im, &mut got);

        for c in 0..n.min(7) {
            let column: Vec<Complex64> = (0..n).map(|r| data[r * n + c]).collect();
            let expected = if inverse {
                // Unnormalized adjoint = conj ∘ forward ∘ conj.
                let conj: Vec<Complex64> = column.iter().map(|z| z.conj()).collect();
                naive_dft(&conj).iter().map(|z| z.conj()).collect()
            } else {
                naive_dft(&column)
            };
            for (r, e) in expected.iter().enumerate() {
                let g = got[r * n + c];
                assert!(
                    (g - *e).norm() < 1e-9 * n as f64,
                    "n={n} inverse={inverse} col {c} row {r}: {:?} vs {:?}",
                    g,
                    e
                );
            }
        }
    }

    #[test]
    fn column_pass_matches_naive_dft() {
        for n in SIZES {
            check_column_pass(n, false);
        }
    }

    #[test]
    fn column_pass_inverse_is_adjoint() {
        for n in SIZES {
            check_column_pass(n, true);
        }
    }

    #[test]
    fn forward_then_inverse_roundtrips() {
        for n in [8usize, 20, 40, 100, 200] {
            let engine = VecMixed2d::new(n);
            let orig_re: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.13).sin()).collect();
            let orig_im: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.41).cos()).collect();
            let mut re = orig_re.clone();
            let mut im = orig_im.clone();
            let mut sre = vec![0.0; n * n];
            let mut sim = vec![0.0; n * n];
            column_pass_vecs(&engine, &mut re, &mut im, &mut sre, &mut sim, false);
            column_pass_vecs(&engine, &mut re, &mut im, &mut sre, &mut sim, true);
            let scale = 1.0 / n as f64;
            for i in 0..n * n {
                assert!(
                    (re[i] * scale - orig_re[i]).abs() < 1e-9
                        && (im[i] * scale - orig_im[i]).abs() < 1e-9,
                    "n={n} roundtrip failed at {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported vectorized length")]
    fn unsupported_length_panics() {
        let _ = VecMixed2d::new(6);
    }
}
