//! Planar vectorized mixed-radix column-transform engine (radix-8/4/2/5).
//!
//! This is the batched hot-loop engine behind [`crate::Fft2`]'s planar
//! execute paths. It computes `n` simultaneous length-`n` DFTs along the
//! *column axis* of a square `n × n` plane pair (split re/im `f64`
//! planes): a butterfly combines whole rows elementwise, so every complex
//! operation is shuffle-free `f64` arithmetic over contiguous lanes. The
//! inner loops are the radix kernels of the process-wide
//! [`photonn_math::simd`] kernel table — explicit AVX2+FMA or NEON where
//! the CPU has them, the scalar expression trees otherwise — bound once at
//! plan time. The row pass of a 2-D transform runs as a column pass over
//! transposed planes (see `Fft2`).
//!
//! Where the old power-of-two-only engine used bit-reversal plus iterative
//! radix-2 stages, this one is a **self-sorting Stockham** pipeline:
//! every stage reads one plane pair and writes a second (ping-pong), and
//! the inter-stage permutation is folded into the write pattern, so no
//! digit-reversal pass exists and non-power-of-two lengths need no extra
//! machinery. A length decomposes greedily into radix-8 stages (triples
//! of twos — every stage is one full memory pass over the planes, so
//! fewer, fatter stages win on bandwidth-bound grids), one radix-4 or
//! radix-2 stage for the leftover twos, and radix-5 stages — covering
//! every `n = 2^a·5^b`, in particular the paper's native mask size
//! `200 = 2³·5²` (one radix-8 + two radix-5 passes) and its double-padded
//! companion `400`, which previously fell back to the scalar recursive
//! mixed-radix engine per sample.
//!
//! One Stockham stage with radix `p`, `l` remaining groups and `m`
//! already-combined transforms (invariant `p·l·m = n`) maps, for
//! `j ∈ [0,l)`, `s ∈ [0,p)`:
//!
//! ```text
//! dst[(p·j + s)·m .. +m] = ω_{p·l}^{j·s} · Σ_q ω_p^{q·s} · src[(j + q·l)·m .. +m]
//! ```
//!
//! where the `m`-row blocks are contiguous `m·n`-lane ranges of the plane
//! — the butterfly is a handful of elementwise passes over whole blocks,
//! and the per-(j,s) twiddle is a scalar held in registers across the
//! sweep. The inverse transform uses conjugated twiddles and butterfly
//! constants directly (via the kernel `sgn` argument) instead of the
//! scalar engines' conjugate–forward–conjugate detour.
//!
//! # Cache-blocked stage fusion
//!
//! A butterfly permutes *row* indices only: column `c` of the output
//! depends exclusively on column `c` of the input, at every stage. The
//! column pass can therefore be strip-mined — split the planes into
//! column strips of width `W` and run **all** stages on one strip while
//! it is cache-resident, instead of round-tripping each full plane pair
//! through DRAM once per stage. At the training grid's padded side
//! `n = 400`, the four ping-pong planes total 5 MB (far beyond a 1–2 MB
//! L2) while one 80-column strip's working set is 1 MB, cutting DRAM
//! traffic roughly 4× across the 4-stage pipeline. Because no lane ever
//! crosses a column and strip widths stay multiples of the SIMD width,
//! the result is **bit-identical** to the unfused pass (covered by a
//! test). `PHOTONN_FFT_STRIP` overrides the width (`0` disables fusion);
//! strips are only used when `n` is a multiple of 4 so SIMD remainder
//! tails cannot differ between fused and unfused sweeps.

use photonn_math::simd::{self, KernelTable};
use photonn_math::Complex64;

/// One self-sorting Stockham stage: radix plus its twiddle table.
#[derive(Debug)]
struct Stage {
    /// Butterfly radix (2, 4, 5 or 8).
    p: usize,
    /// Number of butterfly groups at this stage.
    l: usize,
    /// Transform length already combined before this stage.
    m: usize,
    /// Forward twiddles `ω_{p·l}^{j·s}` for `j ∈ [0,l)`, `s ∈ [1,p)`,
    /// flattened as `[j·(p-1) + (s-1)]`. Inverse negates the imaginary
    /// part at use.
    twr: Vec<f64>,
    twi: Vec<f64>,
}

/// Planar vectorized mixed-radix engine for square 2-D transforms of side
/// `n = 2^a·5^b` (see the module docs).
#[derive(Debug)]
pub(crate) struct VecMixed2d {
    n: usize,
    stages: Vec<Stage>,
    /// Column-strip width for cache-blocked stage fusion; `0` = run each
    /// stage over the full plane (small grids, or fusion disabled).
    strip: usize,
    /// The kernel table every butterfly dispatches through, bound at plan
    /// time (one table per process — see [`photonn_math::simd::active`]).
    kernels: &'static KernelTable,
}

impl VecMixed2d {
    /// `true` if this engine can transform side length `n`: at least 2,
    /// with no prime factor other than 2 and 5 (the radices it emits).
    pub(crate) fn supports(n: usize) -> bool {
        if n < 2 {
            return false;
        }
        let mut n = n;
        for p in [2usize, 5] {
            while n.is_multiple_of(p) {
                n /= p;
            }
        }
        n == 1
    }

    /// The radix schedule for length `n`: greedy radix-8 stages (every
    /// stage is one full memory pass over the planes, so fewer, fatter
    /// stages win on the bandwidth-bound grids), a radix-4 or radix-2 for
    /// the remaining twos, then the radix-5 stages.
    /// `schedule(200) == [8, 5, 5]`, `schedule(32) == [8, 4]`.
    ///
    /// # Panics
    ///
    /// Panics if [`VecMixed2d::supports`] is false for `n`.
    pub(crate) fn schedule(n: usize) -> Vec<usize> {
        assert!(Self::supports(n), "unsupported vectorized length {n}");
        let (mut twos, mut fives, mut rest) = (0usize, 0usize, n);
        while rest.is_multiple_of(2) {
            twos += 1;
            rest /= 2;
        }
        while rest.is_multiple_of(5) {
            fives += 1;
            rest /= 5;
        }
        let mut radices = vec![8; twos / 3];
        match twos % 3 {
            1 => radices.push(2),
            2 => radices.push(4),
            _ => {}
        }
        radices.extend(std::iter::repeat_n(5, fives));
        radices
    }

    /// The column-strip width used for stage fusion at side `n`: `0`
    /// (fusion off) unless the four ping-pong planes overflow L2 and `n`
    /// is a multiple of 4, in which case a width that keeps one strip's
    /// working set near 1 MB, rounded to a multiple of 8 lanes.
    /// `PHOTONN_FFT_STRIP` overrides (`0` or a falsy switch value like
    /// `off` disables; other numbers are rounded up to a multiple of 4
    /// and ignored when `n % 4 != 0`, so fused and unfused sweeps can
    /// never split SIMD tails differently).
    fn default_strip(n: usize) -> usize {
        let heuristic = |n: usize| -> usize {
            // 4 planes × n² lanes × 8 bytes per full ping-pong pass.
            if !n.is_multiple_of(4) || 32 * n * n <= 1_500_000 {
                0
            } else {
                // ~1 MB strip working set: 4 planes × n rows × W × 8 B.
                ((32768 / n) & !7).max(16)
            }
        };
        match std::env::var("PHOTONN_FFT_STRIP") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) => 0,
                Ok(w) if n.is_multiple_of(4) => w.div_ceil(4) * 4,
                Ok(_) => heuristic(n),
                // Not a number: accept the shared switch vocabulary, so
                // `PHOTONN_FFT_STRIP=off` (any case) disables fusion just
                // like `0` instead of being silently ignored.
                Err(_) => match photonn_math::envswitch::parse(&v) {
                    Some(false) => 0,
                    _ => heuristic(n),
                },
            },
            Err(_) => heuristic(n),
        }
    }

    /// Plans the stage pipeline for side length `n`.
    ///
    /// # Panics
    ///
    /// Panics if [`VecMixed2d::supports`] is false for `n`.
    pub(crate) fn new(n: usize) -> Self {
        Self::with_config(n, Self::default_strip(n), simd::active())
    }

    /// Plans with an explicit strip width and kernel table (the
    /// building block behind [`VecMixed2d::new`]; tests use it to pin
    /// configurations).
    fn with_config(n: usize, strip: usize, kernels: &'static KernelTable) -> Self {
        let radices = Self::schedule(n);
        let mut stages = Vec::with_capacity(radices.len());
        let mut m = 1;
        for p in radices {
            let l = n / (m * p);
            let mut twr = Vec::with_capacity(l * (p - 1));
            let mut twi = Vec::with_capacity(l * (p - 1));
            for j in 0..l {
                for s in 1..p {
                    let w = Complex64::cis(
                        -2.0 * std::f64::consts::PI * (j * s) as f64 / (p * l) as f64,
                    );
                    twr.push(w.re);
                    twi.push(w.im);
                }
            }
            stages.push(Stage { p, l, m, twr, twi });
            m *= p;
        }
        debug_assert_eq!(m, n);
        VecMixed2d {
            n,
            stages,
            strip,
            kernels,
        }
    }

    /// Side length this engine was planned for.
    #[inline]
    pub(crate) fn n(&self) -> usize {
        self.n
    }

    /// `true` if the stage pipeline has an odd number of stages — i.e.
    /// [`VecMixed2d::column_pass`] leaves its result in the scratch pair
    /// instead of the primary pair. Callers juggle which buffer is "live"
    /// by swapping their own `&mut` bindings (an O(1) pointer move), so no
    /// plane is ever copied to compensate for parity.
    #[inline]
    pub(crate) fn odd_stages(&self) -> bool {
        self.stages.len() % 2 == 1
    }

    /// Unnormalized DFT along the column axis of the `n × n` plane pair
    /// `(re, im)`, vectorized across each row. `(sre, sim)` is same-sized
    /// ping-pong scratch. Stages alternate between the two pairs, so the
    /// result lands in `(re, im)` for an even stage count and in
    /// `(sre, sim)` for an odd one (see [`VecMixed2d::odd_stages`]);
    /// operating on plain slices keeps the pass usable directly on plane
    /// views into a planar `BatchCGrid`, where a buffer swap is
    /// impossible. `inverse` computes the unnormalized adjoint.
    ///
    /// When stage fusion is active the plane is walked in column strips,
    /// each strip running the whole stage pipeline while cache-resident —
    /// bit-identical to the unfused sweep (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any plane is not `n²` long.
    pub(crate) fn column_pass(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        sre: &mut [f64],
        sim: &mut [f64],
        inverse: bool,
    ) {
        let _span = photonn_trace::span("fft.column_pass");
        let n = self.n;
        debug_assert_eq!(re.len(), n * n);
        debug_assert_eq!(im.len(), n * n);
        debug_assert_eq!(sre.len(), n * n);
        debug_assert_eq!(sim.len(), n * n);
        if self.strip == 0 || self.strip >= n {
            self.strip_pass(re, im, sre, sim, inverse, 0, n);
        } else {
            let mut c0 = 0;
            while c0 < n {
                let w = self.strip.min(n - c0);
                self.strip_pass(re, im, sre, sim, inverse, c0, w);
                c0 += w;
            }
        }
    }

    /// Runs every stage over columns `c0 .. c0 + w` of the plane pair.
    #[allow(clippy::too_many_arguments)]
    fn strip_pass(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        sre: &mut [f64],
        sim: &mut [f64],
        inverse: bool,
        c0: usize,
        w: usize,
    ) {
        let ctx = StripCtx {
            n: self.n,
            c0,
            w,
            kt: self.kernels,
        };
        let mut in_primary = true;
        for stage in &self.stages {
            if in_primary {
                run_stage(stage, re, im, sre, sim, ctx, inverse);
            } else {
                run_stage(stage, sre, sim, re, im, ctx, inverse);
            }
            in_primary = !in_primary;
        }
    }
}

/// Per-call context of one stage sweep: plane side, the column strip to
/// process, and the kernel table the butterflies dispatch through.
#[derive(Clone, Copy)]
struct StripCtx<'a> {
    n: usize,
    c0: usize,
    w: usize,
    kt: &'a KernelTable,
}

impl StripCtx<'_> {
    /// The `(offset, len)` row-runs a butterfly visits inside one
    /// contiguous `m`-row block: the whole block when the strip spans
    /// every column, else `m` runs of `w` lanes at stride `n`.
    #[inline]
    fn runs(&self, m: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let full = self.w == self.n;
        let count = if full { 1 } else { m };
        let mn = m * self.n;
        (0..count).map(move |r| {
            if full {
                (0, mn)
            } else {
                (r * self.n + self.c0, self.w)
            }
        })
    }
}

// Stage-sweep dispatch counters (`fft.radixN_stage` in the trace
// inventory): one increment per stage sweep over a strip, showing which
// butterfly radices a workload's schedule actually exercises.
static CTR_RADIX2: photonn_trace::Counter = photonn_trace::Counter::new("fft.radix2_stage");
static CTR_RADIX4: photonn_trace::Counter = photonn_trace::Counter::new("fft.radix4_stage");
static CTR_RADIX5: photonn_trace::Counter = photonn_trace::Counter::new("fft.radix5_stage");
static CTR_RADIX8: photonn_trace::Counter = photonn_trace::Counter::new("fft.radix8_stage");

/// Dispatches one stage from `(sr, si)` into `(dr, di)`.
fn run_stage(
    stage: &Stage,
    sr: &[f64],
    si: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
    ctx: StripCtx<'_>,
    inverse: bool,
) {
    match stage.p {
        2 => CTR_RADIX2.add(1),
        4 => CTR_RADIX4.add(1),
        5 => CTR_RADIX5.add(1),
        _ => CTR_RADIX8.add(1),
    }
    match (stage.p, inverse) {
        (2, false) => stage_radix2::<false>(stage, sr, si, dr, di, ctx),
        (2, true) => stage_radix2::<true>(stage, sr, si, dr, di, ctx),
        (4, false) => stage_radix4::<false>(stage, sr, si, dr, di, ctx),
        (4, true) => stage_radix4::<true>(stage, sr, si, dr, di, ctx),
        (5, false) => stage_radix5::<false>(stage, sr, si, dr, di, ctx),
        (5, true) => stage_radix5::<true>(stage, sr, si, dr, di, ctx),
        (8, false) => stage_radix8::<false>(stage, sr, si, dr, di, ctx),
        (8, true) => stage_radix8::<true>(stage, sr, si, dr, di, ctx),
        (p, _) => unreachable!("unsupported radix {p}"),
    }
}

impl Stage {
    /// Twiddle `ω_{p·l}^{j·s}` (conjugated when `INV`), `s ≥ 1`.
    #[inline]
    fn tw<const INV: bool>(&self, j: usize, s: usize) -> (f64, f64) {
        let idx = j * (self.p - 1) + (s - 1);
        let wi = self.twi[idx];
        (self.twr[idx], if INV { -wi } else { wi })
    }
}

/// The forward/inverse `±i` recombination sign the radix kernels take.
#[inline]
fn sgn<const INV: bool>() -> f64 {
    if INV {
        -1.0
    } else {
        1.0
    }
}

/// Splits one contiguous `P·mn` group into its `P` `mn`-row blocks.
fn split_rows<const P: usize>(buf: &mut [f64], mn: usize) -> [&mut [f64]; P] {
    debug_assert_eq!(buf.len(), P * mn);
    let mut rest = buf;
    std::array::from_fn(|_| {
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(mn);
        rest = tail;
        head
    })
}

fn stage_radix2<const INV: bool>(
    st: &Stage,
    sr: &[f64],
    si: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
    ctx: StripCtx<'_>,
) {
    let (l, m) = (st.l, st.m);
    let mn = m * ctx.n;
    for j in 0..l {
        let x0r = &sr[j * mn..][..mn];
        let x0i = &si[j * mn..][..mn];
        let x1r = &sr[(j + l) * mn..][..mn];
        let x1i = &si[(j + l) * mn..][..mn];
        let w = [st.tw::<INV>(j, 1)];
        let [y0r, y1r] = split_rows::<2>(&mut dr[2 * j * mn..][..2 * mn], mn);
        let [y0i, y1i] = split_rows::<2>(&mut di[2 * j * mn..][..2 * mn], mn);
        for (o, len) in ctx.runs(m) {
            (ctx.kt.radix2)(
                [
                    &x0r[o..o + len],
                    &x0i[o..o + len],
                    &x1r[o..o + len],
                    &x1i[o..o + len],
                ],
                [
                    &mut y0r[o..o + len],
                    &mut y0i[o..o + len],
                    &mut y1r[o..o + len],
                    &mut y1i[o..o + len],
                ],
                &w,
            );
        }
    }
}

fn stage_radix4<const INV: bool>(
    st: &Stage,
    sr: &[f64],
    si: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
    ctx: StripCtx<'_>,
) {
    let (l, m) = (st.l, st.m);
    let mn = m * ctx.n;
    for j in 0..l {
        let x0r = &sr[j * mn..][..mn];
        let x0i = &si[j * mn..][..mn];
        let x1r = &sr[(j + l) * mn..][..mn];
        let x1i = &si[(j + l) * mn..][..mn];
        let x2r = &sr[(j + 2 * l) * mn..][..mn];
        let x2i = &si[(j + 2 * l) * mn..][..mn];
        let x3r = &sr[(j + 3 * l) * mn..][..mn];
        let x3i = &si[(j + 3 * l) * mn..][..mn];
        let w = [st.tw::<INV>(j, 1), st.tw::<INV>(j, 2), st.tw::<INV>(j, 3)];
        let [y0r, y1r, y2r, y3r] = split_rows::<4>(&mut dr[4 * j * mn..][..4 * mn], mn);
        let [y0i, y1i, y2i, y3i] = split_rows::<4>(&mut di[4 * j * mn..][..4 * mn], mn);
        for (o, len) in ctx.runs(m) {
            (ctx.kt.radix4)(
                [
                    &x0r[o..o + len],
                    &x0i[o..o + len],
                    &x1r[o..o + len],
                    &x1i[o..o + len],
                    &x2r[o..o + len],
                    &x2i[o..o + len],
                    &x3r[o..o + len],
                    &x3i[o..o + len],
                ],
                [
                    &mut y0r[o..o + len],
                    &mut y0i[o..o + len],
                    &mut y1r[o..o + len],
                    &mut y1i[o..o + len],
                    &mut y2r[o..o + len],
                    &mut y2i[o..o + len],
                    &mut y3r[o..o + len],
                    &mut y3i[o..o + len],
                ],
                &w,
                sgn::<INV>(),
            );
        }
    }
}

fn stage_radix5<const INV: bool>(
    st: &Stage,
    sr: &[f64],
    si: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
    ctx: StripCtx<'_>,
) {
    let (l, m) = (st.l, st.m);
    let mn = m * ctx.n;
    for j in 0..l {
        let x0r = &sr[j * mn..][..mn];
        let x0i = &si[j * mn..][..mn];
        let x1r = &sr[(j + l) * mn..][..mn];
        let x1i = &si[(j + l) * mn..][..mn];
        let x2r = &sr[(j + 2 * l) * mn..][..mn];
        let x2i = &si[(j + 2 * l) * mn..][..mn];
        let x3r = &sr[(j + 3 * l) * mn..][..mn];
        let x3i = &si[(j + 3 * l) * mn..][..mn];
        let x4r = &sr[(j + 4 * l) * mn..][..mn];
        let x4i = &si[(j + 4 * l) * mn..][..mn];
        let w = [
            st.tw::<INV>(j, 1),
            st.tw::<INV>(j, 2),
            st.tw::<INV>(j, 3),
            st.tw::<INV>(j, 4),
        ];
        let [y0r, y1r, y2r, y3r, y4r] = split_rows::<5>(&mut dr[5 * j * mn..][..5 * mn], mn);
        let [y0i, y1i, y2i, y3i, y4i] = split_rows::<5>(&mut di[5 * j * mn..][..5 * mn], mn);
        for (o, len) in ctx.runs(m) {
            (ctx.kt.radix5)(
                [
                    &x0r[o..o + len],
                    &x0i[o..o + len],
                    &x1r[o..o + len],
                    &x1i[o..o + len],
                    &x2r[o..o + len],
                    &x2i[o..o + len],
                    &x3r[o..o + len],
                    &x3i[o..o + len],
                    &x4r[o..o + len],
                    &x4i[o..o + len],
                ],
                [
                    &mut y0r[o..o + len],
                    &mut y0i[o..o + len],
                    &mut y1r[o..o + len],
                    &mut y1i[o..o + len],
                    &mut y2r[o..o + len],
                    &mut y2i[o..o + len],
                    &mut y3r[o..o + len],
                    &mut y3i[o..o + len],
                    &mut y4r[o..o + len],
                    &mut y4i[o..o + len],
                ],
                &w,
                sgn::<INV>(),
            );
        }
    }
}

fn stage_radix8<const INV: bool>(
    st: &Stage,
    sr: &[f64],
    si: &[f64],
    dr: &mut [f64],
    di: &mut [f64],
    ctx: StripCtx<'_>,
) {
    let (l, m) = (st.l, st.m);
    let mn = m * ctx.n;
    for j in 0..l {
        let x0r = &sr[j * mn..][..mn];
        let x0i = &si[j * mn..][..mn];
        let x1r = &sr[(j + l) * mn..][..mn];
        let x1i = &si[(j + l) * mn..][..mn];
        let x2r = &sr[(j + 2 * l) * mn..][..mn];
        let x2i = &si[(j + 2 * l) * mn..][..mn];
        let x3r = &sr[(j + 3 * l) * mn..][..mn];
        let x3i = &si[(j + 3 * l) * mn..][..mn];
        let x4r = &sr[(j + 4 * l) * mn..][..mn];
        let x4i = &si[(j + 4 * l) * mn..][..mn];
        let x5r = &sr[(j + 5 * l) * mn..][..mn];
        let x5i = &si[(j + 5 * l) * mn..][..mn];
        let x6r = &sr[(j + 6 * l) * mn..][..mn];
        let x6i = &si[(j + 6 * l) * mn..][..mn];
        let x7r = &sr[(j + 7 * l) * mn..][..mn];
        let x7i = &si[(j + 7 * l) * mn..][..mn];
        let w = [
            st.tw::<INV>(j, 1),
            st.tw::<INV>(j, 2),
            st.tw::<INV>(j, 3),
            st.tw::<INV>(j, 4),
            st.tw::<INV>(j, 5),
            st.tw::<INV>(j, 6),
            st.tw::<INV>(j, 7),
        ];
        let [y0r, y1r, y2r, y3r, y4r, y5r, y6r, y7r] =
            split_rows::<8>(&mut dr[8 * j * mn..][..8 * mn], mn);
        let [y0i, y1i, y2i, y3i, y4i, y5i, y6i, y7i] =
            split_rows::<8>(&mut di[8 * j * mn..][..8 * mn], mn);
        for (o, len) in ctx.runs(m) {
            (ctx.kt.radix8)(
                [
                    &x0r[o..o + len],
                    &x0i[o..o + len],
                    &x1r[o..o + len],
                    &x1i[o..o + len],
                    &x2r[o..o + len],
                    &x2i[o..o + len],
                    &x3r[o..o + len],
                    &x3i[o..o + len],
                    &x4r[o..o + len],
                    &x4i[o..o + len],
                    &x5r[o..o + len],
                    &x5i[o..o + len],
                    &x6r[o..o + len],
                    &x6i[o..o + len],
                    &x7r[o..o + len],
                    &x7i[o..o + len],
                ],
                [
                    &mut y0r[o..o + len],
                    &mut y0i[o..o + len],
                    &mut y1r[o..o + len],
                    &mut y1i[o..o + len],
                    &mut y2r[o..o + len],
                    &mut y2i[o..o + len],
                    &mut y3r[o..o + len],
                    &mut y3i[o..o + len],
                    &mut y4r[o..o + len],
                    &mut y4i[o..o + len],
                    &mut y5r[o..o + len],
                    &mut y5i[o..o + len],
                    &mut y6r[o..o + len],
                    &mut y6i[o..o + len],
                    &mut y7r[o..o + len],
                    &mut y7i[o..o + len],
                ],
                &w,
                sgn::<INV>(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::naive_dft;
    use photonn_math::planar::{deinterleave, interleave};

    /// Sizes the engine supports, spanning every radix combination.
    const SIZES: [usize; 16] = [
        2, 4, 5, 8, 10, 16, 20, 25, 32, 40, 50, 64, 100, 125, 200, 400,
    ];

    #[test]
    fn supports_exactly_two_five_smooth_lengths() {
        for n in SIZES {
            assert!(VecMixed2d::supports(n), "{n} should be supported");
        }
        for n in [0usize, 1, 3, 6, 7, 12, 48, 97, 127, 200 * 3] {
            assert!(!VecMixed2d::supports(n), "{n} should not be supported");
        }
    }

    #[test]
    fn schedule_shapes() {
        assert_eq!(VecMixed2d::schedule(2), vec![2]);
        assert_eq!(VecMixed2d::schedule(4), vec![4]);
        assert_eq!(VecMixed2d::schedule(5), vec![5]);
        assert_eq!(VecMixed2d::schedule(8), vec![8]);
        assert_eq!(VecMixed2d::schedule(20), vec![4, 5]);
        assert_eq!(VecMixed2d::schedule(32), vec![8, 4]);
        assert_eq!(VecMixed2d::schedule(40), vec![8, 5]);
        assert_eq!(VecMixed2d::schedule(64), vec![8, 8]);
        assert_eq!(VecMixed2d::schedule(100), vec![4, 5, 5]);
        // The paper's native grid: 200 = 2³·5² → one radix-8 and two
        // radix-5 stages (three full plane passes, down from four).
        assert_eq!(VecMixed2d::schedule(200), vec![8, 5, 5]);
        assert_eq!(VecMixed2d::schedule(256), vec![8, 8, 4]);
        for n in SIZES {
            assert_eq!(
                VecMixed2d::schedule(n).iter().product::<usize>(),
                n,
                "schedule({n}) must multiply back to n"
            );
        }
    }

    /// Test convenience: a column pass whose result always ends in the
    /// primary Vec pair (swapping the Vecs when the stage count is odd).
    fn column_pass_vecs(
        engine: &VecMixed2d,
        re: &mut Vec<f64>,
        im: &mut Vec<f64>,
        sre: &mut Vec<f64>,
        sim: &mut Vec<f64>,
        inverse: bool,
    ) {
        engine.column_pass(re, im, sre, sim, inverse);
        if engine.odd_stages() {
            std::mem::swap(re, sre);
            std::mem::swap(im, sim);
        }
    }

    /// Runs the engine's column pass on a plane whose every column is an
    /// independent signal, and checks each column against the naive DFT.
    fn check_column_pass(n: usize, inverse: bool) {
        let engine = VecMixed2d::new(n);
        // Column c carries signal x_c[r] (distinct per column).
        let data: Vec<Complex64> = (0..n * n)
            .map(|idx| {
                let (r, c) = (idx / n, idx % n);
                Complex64::new(
                    ((r * 13 + c * 7) as f64 * 0.61).sin(),
                    ((r * 3 + c * 11) as f64 * 0.29).cos(),
                )
            })
            .collect();
        let mut re = vec![0.0; n * n];
        let mut im = vec![0.0; n * n];
        deinterleave(&data, &mut re, &mut im);
        let mut sre = vec![0.0; n * n];
        let mut sim = vec![0.0; n * n];
        column_pass_vecs(&engine, &mut re, &mut im, &mut sre, &mut sim, inverse);
        let mut got = vec![Complex64::ZERO; n * n];
        interleave(&re, &im, &mut got);

        for c in 0..n.min(7) {
            let column: Vec<Complex64> = (0..n).map(|r| data[r * n + c]).collect();
            let expected = if inverse {
                // Unnormalized adjoint = conj ∘ forward ∘ conj.
                let conj: Vec<Complex64> = column.iter().map(|z| z.conj()).collect();
                naive_dft(&conj).iter().map(|z| z.conj()).collect()
            } else {
                naive_dft(&column)
            };
            for (r, e) in expected.iter().enumerate() {
                let g = got[r * n + c];
                assert!(
                    (g - *e).norm() < 1e-9 * n as f64,
                    "n={n} inverse={inverse} col {c} row {r}: {:?} vs {:?}",
                    g,
                    e
                );
            }
        }
    }

    #[test]
    fn column_pass_matches_naive_dft() {
        for n in SIZES {
            check_column_pass(n, false);
        }
    }

    #[test]
    fn column_pass_inverse_is_adjoint() {
        for n in SIZES {
            check_column_pass(n, true);
        }
    }

    #[test]
    fn forward_then_inverse_roundtrips() {
        for n in [8usize, 20, 40, 100, 200] {
            let engine = VecMixed2d::new(n);
            let orig_re: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.13).sin()).collect();
            let orig_im: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.41).cos()).collect();
            let mut re = orig_re.clone();
            let mut im = orig_im.clone();
            let mut sre = vec![0.0; n * n];
            let mut sim = vec![0.0; n * n];
            column_pass_vecs(&engine, &mut re, &mut im, &mut sre, &mut sim, false);
            column_pass_vecs(&engine, &mut re, &mut im, &mut sre, &mut sim, true);
            let scale = 1.0 / n as f64;
            for i in 0..n * n {
                assert!(
                    (re[i] * scale - orig_re[i]).abs() < 1e-9
                        && (im[i] * scale - orig_im[i]).abs() < 1e-9,
                    "n={n} roundtrip failed at {i}"
                );
            }
        }
    }

    /// Strip-mined stage fusion must be bit-identical to the unfused
    /// sweep: butterflies never cross columns, and strip widths are
    /// multiples of the SIMD width so vector/tail splits agree.
    #[test]
    fn strip_fusion_is_bit_identical_to_full_pass() {
        for (n, strip) in [(40usize, 8usize), (100, 20), (400, 80)] {
            let kt = simd::active();
            let full = VecMixed2d::with_config(n, 0, kt);
            let fused = VecMixed2d::with_config(n, strip, kt);
            let orig_re: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.37).sin()).collect();
            let orig_im: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.23).cos()).collect();
            for inverse in [false, true] {
                let mut re_a = orig_re.clone();
                let mut im_a = orig_im.clone();
                let mut sre_a = vec![0.0; n * n];
                let mut sim_a = vec![0.0; n * n];
                column_pass_vecs(&full, &mut re_a, &mut im_a, &mut sre_a, &mut sim_a, inverse);
                let mut re_b = orig_re.clone();
                let mut im_b = orig_im.clone();
                let mut sre_b = vec![0.0; n * n];
                let mut sim_b = vec![0.0; n * n];
                column_pass_vecs(
                    &fused, &mut re_b, &mut im_b, &mut sre_b, &mut sim_b, inverse,
                );
                for i in 0..n * n {
                    assert!(
                        re_a[i].to_bits() == re_b[i].to_bits()
                            && im_a[i].to_bits() == im_b[i].to_bits(),
                        "n={n} strip={strip} inverse={inverse}: fused differs at {i}"
                    );
                }
            }
        }
    }

    /// The default strip heuristic: off below the L2 threshold or when
    /// `n % 4 != 0`, a multiple of 8 that bounds the working set above it.
    #[test]
    fn default_strip_heuristic_shapes() {
        assert_eq!(VecMixed2d::default_strip(200), 0, "200 fits in L2");
        assert_eq!(VecMixed2d::default_strip(64), 0);
        let w400 = VecMixed2d::default_strip(400);
        assert!(
            w400 > 0 && w400.is_multiple_of(8),
            "400 should strip (got {w400})"
        );
        assert!(32 * 400 * w400 <= 1 << 20, "strip working set ≤ 1 MB");
        assert_eq!(VecMixed2d::default_strip(250), 0, "250 % 4 != 0");
    }

    #[test]
    #[should_panic(expected = "unsupported vectorized length")]
    fn unsupported_length_panics() {
        let _ = VecMixed2d::new(6);
    }
}
