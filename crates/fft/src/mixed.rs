//! Recursive mixed-radix Cooley–Tukey FFT for smooth composite lengths
//! (all prime factors ≤ 61). Handles the paper's native 200×200 masks
//! (200 = 2³·5²) without zero-padding.

use photonn_math::Complex64;

/// Prime factorization by trial division, in non-decreasing order.
///
/// Drives every engine-selection decision in this crate: [`crate::Fft`]
/// picks the mixed-radix engine only when every factor is at most the
/// mixed-radix prime limit (61), and the vectorized 2-D path requires
/// factors in `{2, 5}`.
///
/// # Examples
///
/// ```
/// use photonn_fft::factorize;
///
/// assert_eq!(factorize(1), Vec::<usize>::new()); // 1 has no prime factors
/// assert_eq!(factorize(200), vec![2, 2, 2, 5, 5]); // the paper's grid
/// assert_eq!(factorize(97), vec![97]); // primes factor as themselves
/// assert_eq!(factorize(2 * 67), vec![2, 67]); // 67 > 61 → Bluestein
/// ```
pub fn factorize(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    let mut p = 2;
    while p * p <= n {
        while n.is_multiple_of(p) {
            factors.push(p);
            n /= p;
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

/// Recursive mixed-radix plan: prime factor schedule plus the full-length
/// forward root table `exp(-2πi·j/n)`.
#[derive(Debug)]
pub(crate) struct MixedRadix {
    n: usize,
    factors: Vec<usize>,
    roots: Vec<Complex64>,
}

impl MixedRadix {
    /// Largest butterfly radix the recursive engine emits; the
    /// stack-allocated combine buffer is sized to this. [`crate::Fft`]'s
    /// plan selection consults [`MixedRadix::supports`] so that lengths
    /// with a bigger prime factor fall back to Bluestein automatically —
    /// the constructor's own check is a defensive backstop, not a user
    ///-facing error path.
    pub(crate) const MAX_PRIME: usize = 61;

    /// `true` if the recursive engine can transform length `n` directly:
    /// `n ≥ 2` with every prime factor at most [`MixedRadix::MAX_PRIME`].
    pub(crate) fn supports(n: usize) -> bool {
        n >= 2 && factorize(n).iter().all(|&p| p <= Self::MAX_PRIME)
    }

    /// # Panics
    ///
    /// Panics if `n < 2` or some prime factor exceeds the engine limit
    /// ([`crate::Fft::new`] never lets either happen — it routes such
    /// lengths to Bluestein).
    pub(crate) fn new(n: usize) -> Self {
        assert!(n >= 2, "mixed-radix needs n >= 2");
        let factors = factorize(n);
        assert!(
            factors.iter().all(|&p| p <= Self::MAX_PRIME),
            "prime factor exceeds mixed-radix limit; use Bluestein"
        );
        let roots = (0..n)
            .map(|j| Complex64::cis(-2.0 * std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        MixedRadix { n, factors, roots }
    }

    pub(crate) fn process(&self, data: &mut [Complex64]) {
        debug_assert_eq!(data.len(), self.n);
        let input = data.to_vec();
        self.recurse(&input, 1, data, self.n, 1, &self.factors);
    }

    /// Decimation-in-time recursion.
    ///
    /// Computes the DFT of `input[0], input[stride], …` (length `n`) into
    /// `output[..n]`. `root_stride == N/n` maps local twiddles into the
    /// shared full-length root table.
    fn recurse(
        &self,
        input: &[Complex64],
        stride: usize,
        output: &mut [Complex64],
        n: usize,
        root_stride: usize,
        factors: &[usize],
    ) {
        if n == 1 {
            output[0] = input[0];
            return;
        }
        let p = factors[0];
        let m = n / p;
        // Sub-transforms of the p interleaved subsequences.
        for q in 0..p {
            self.recurse(
                &input[q * stride..],
                stride * p,
                &mut output[q * m..(q + 1) * m],
                m,
                root_stride * p,
                &factors[1..],
            );
        }
        // Combine: for each output column k, a p-point DFT across the
        // twiddled sub-results. X[s·m+k] = Σ_q ω_p^{qs} · ω_n^{qk} · Y_q[k].
        let mut t = [Complex64::ZERO; Self::MAX_PRIME];
        for k in 0..m {
            for (q, tq) in t.iter_mut().enumerate().take(p) {
                *tq = output[q * m + k] * self.roots[q * k * root_stride];
            }
            for s in 0..p {
                let mut acc = Complex64::ZERO;
                for (q, tq) in t.iter().enumerate().take(p) {
                    // ω_p^{qs} = ω_N^{(qs mod p)·(N/p)} with N/p = root_stride·m.
                    acc += *tq * self.roots[(q * s % p) * root_stride * m];
                }
                output[s * m + k] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_spectra_close, naive_dft};

    #[test]
    fn factorize_basics() {
        assert_eq!(factorize(1), Vec::<usize>::new());
        assert_eq!(factorize(2), vec![2]);
        assert_eq!(factorize(200), vec![2, 2, 2, 5, 5]);
        assert_eq!(factorize(97), vec![97]);
        assert_eq!(factorize(360), vec![2, 2, 2, 3, 3, 5]);
    }

    #[test]
    fn matches_naive_dft_on_composites() {
        for n in [6usize, 9, 10, 12, 15, 20, 25, 36, 48, 100, 200, 210] {
            let input: Vec<Complex64> = (0..n)
                .map(|j| Complex64::new((j as f64 * 1.3).cos(), (j as f64 * 0.41).sin()))
                .collect();
            let expected = naive_dft(&input);
            let mut got = input;
            MixedRadix::new(n).process(&mut got);
            assert_spectra_close(&got, &expected, 1e-9, &format!("mixed n={n}"));
        }
    }

    #[test]
    fn handles_single_large_prime_factor() {
        // 59 is prime but within the direct-radix limit.
        let n = 59;
        let input: Vec<Complex64> = (0..n).map(|j| Complex64::new(j as f64, 0.0)).collect();
        let expected = naive_dft(&input);
        let mut got = input;
        MixedRadix::new(n).process(&mut got);
        assert_spectra_close(&got, &expected, 1e-9, "mixed n=59");
    }

    #[test]
    fn linearity() {
        let n = 30;
        let a: Vec<Complex64> = (0..n).map(|j| Complex64::new(j as f64, 1.0)).collect();
        let b: Vec<Complex64> = (0..n).map(|j| Complex64::new(1.0, -(j as f64))).collect();
        let plan = MixedRadix::new(n);
        let mut fa = a.clone();
        plan.process(&mut fa);
        let mut fb = b.clone();
        plan.process(&mut fb);
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.process(&mut fab);
        for k in 0..n {
            assert!((fab[k] - (fa[k] + fb[k])).norm() < 1e-9);
        }
    }
}
