//! Shared test helpers: an O(n²) reference DFT and spectrum comparison.

use photonn_math::Complex64;

/// Direct O(n²) DFT with the same sign/normalization convention as
/// [`crate::Fft::forward`] — the ground truth the fast engines are tested
/// against.
pub(crate) fn naive_dft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let angle = -2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                acc += x * Complex64::cis(angle);
            }
            acc
        })
        .collect()
}

/// Asserts two spectra agree to `tol` *relative to the spectrum scale*
/// (absolute tolerance `tol · max(1, ‖expected‖∞)`).
pub(crate) fn assert_spectra_close(got: &[Complex64], expected: &[Complex64], tol: f64, ctx: &str) {
    assert_eq!(got.len(), expected.len(), "{ctx}: length mismatch");
    let scale = expected.iter().map(|z| z.norm()).fold(1.0f64, f64::max);
    for (k, (g, e)) in got.iter().zip(expected).enumerate() {
        let err = (*g - *e).norm();
        assert!(
            err <= tol * scale,
            "{ctx}: bin {k} differs by {err:.3e} (scale {scale:.3e}): got {g}, expected {e}"
        );
    }
}
