//! `fftshift` / `ifftshift` and FFT sample-frequency grids.

use photonn_math::{CGrid, Grid};

/// Rotates a length-`n` axis left by `k` (helper for the shift pair).
fn shifted_index(i: usize, n: usize, k: usize) -> usize {
    (i + k) % n
}

/// Moves the zero-frequency bin to the center of the grid (like
/// `numpy.fft.fftshift`). For odd lengths the DC bin lands at `n/2`
/// (integer division).
pub fn fftshift(grid: &CGrid) -> CGrid {
    let (rows, cols) = grid.shape();
    let (kr, kc) = (rows.div_ceil(2), cols.div_ceil(2));
    CGrid::from_fn(rows, cols, |r, c| {
        grid[(shifted_index(r, rows, kr), shifted_index(c, cols, kc))]
    })
}

/// Inverse of [`fftshift`]; identical for even lengths, differs for odd.
pub fn ifftshift(grid: &CGrid) -> CGrid {
    let (rows, cols) = grid.shape();
    let (kr, kc) = (rows / 2, cols / 2);
    CGrid::from_fn(rows, cols, |r, c| {
        grid[(shifted_index(r, rows, kr), shifted_index(c, cols, kc))]
    })
}

/// Real-grid version of [`fftshift`].
pub fn fftshift_real(grid: &Grid) -> Grid {
    let (rows, cols) = grid.shape();
    let (kr, kc) = (rows.div_ceil(2), cols.div_ceil(2));
    Grid::from_fn(rows, cols, |r, c| {
        grid[(shifted_index(r, rows, kr), shifted_index(c, cols, kc))]
    })
}

/// Sample frequencies of an `n`-point DFT with sample spacing `d`, in
/// standard FFT order: `[0, 1, …, n/2-1, -n/2, …, -1] / (n·d)` — the same
/// layout as `numpy.fft.fftfreq`. These are the spatial frequencies at which
/// free-space transfer functions are evaluated.
///
/// # Panics
///
/// Panics if `n == 0` or `d <= 0`.
pub fn fftfreq(n: usize, d: f64) -> Vec<f64> {
    assert!(n > 0, "fftfreq needs n > 0");
    assert!(d > 0.0, "sample spacing must be positive");
    let scale = 1.0 / (n as f64 * d);
    (0..n)
        .map(|i| {
            let k = if i < n.div_ceil(2) {
                i as isize
            } else {
                i as isize - n as isize
            };
            k as f64 * scale
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_math::Complex64;

    #[test]
    fn fftshift_even_is_self_inverse() {
        let g = CGrid::from_fn(4, 6, |r, c| Complex64::new((r * 6 + c) as f64, 0.0));
        assert_eq!(ifftshift(&fftshift(&g)), g);
        assert_eq!(fftshift(&fftshift(&g)), g); // even: shift twice = id
    }

    #[test]
    fn fftshift_odd_roundtrips_only_with_ifftshift() {
        let g = CGrid::from_fn(5, 5, |r, c| Complex64::new((r * 5 + c) as f64, 1.0));
        assert_eq!(ifftshift(&fftshift(&g)), g);
        assert_ne!(fftshift(&fftshift(&g)), g);
    }

    #[test]
    fn dc_moves_to_center() {
        let mut g = CGrid::zeros(4, 4);
        g[(0, 0)] = Complex64::ONE;
        let s = fftshift(&g);
        assert_eq!(s[(2, 2)], Complex64::ONE);
    }

    #[test]
    fn fftfreq_even_matches_numpy() {
        let f = fftfreq(4, 1.0);
        assert_eq!(f, vec![0.0, 0.25, -0.5, -0.25]);
    }

    #[test]
    fn fftfreq_odd_matches_numpy() {
        let f = fftfreq(5, 1.0);
        let expected = [0.0, 0.2, 0.4, -0.4, -0.2];
        for (a, b) in f.iter().zip(expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn fftfreq_spacing_scales() {
        let f = fftfreq(8, 36e-6); // the paper's 36 µm pixel pitch
        assert!((f[1] - 1.0 / (8.0 * 36e-6)).abs() < 1e-6);
    }

    #[test]
    fn fftshift_real_mirrors_complex() {
        let g = Grid::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let cg = CGrid::from_amplitude(&g);
        let a = fftshift_real(&g);
        let b = fftshift(&cg);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(a[(r, c)], b[(r, c)].re);
            }
        }
    }
}
