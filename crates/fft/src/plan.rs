//! FFT plans: per-length precomputation (twiddle factors, bit-reversal
//! permutations, Bluestein chirps) reused across many transforms.

use photonn_math::Complex64;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::bluestein::Bluestein;
use crate::mixed::MixedRadix;
use crate::radix2::Radix2;

#[derive(Debug)]
enum Engine {
    /// n == 1.
    Identity,
    /// Iterative in-place radix-2 for powers of two.
    Radix2(Radix2),
    /// Recursive mixed-radix Cooley–Tukey for smooth composites.
    Mixed(MixedRadix),
    /// Chirp-z transform for lengths with a large prime factor.
    Bluestein(Bluestein),
}

/// A reusable FFT plan for a fixed transform length.
///
/// Forward transforms use the engineering sign convention
/// `X[k] = Σ x[j]·exp(-2πi·jk/n)` (unnormalized); [`Fft::inverse`] applies
/// the `1/n` factor so `inverse(forward(x)) == x`.
///
/// # Examples
///
/// ```
/// use photonn_fft::Fft;
/// use photonn_math::Complex64;
///
/// let fft = Fft::new(8);
/// let mut data = vec![Complex64::ZERO; 8];
/// data[0] = Complex64::ONE; // unit impulse
/// fft.forward(&mut data);
/// // The spectrum of an impulse is flat.
/// assert!(data.iter().all(|z| (*z - Complex64::ONE).norm() < 1e-12));
/// ```
#[derive(Debug)]
pub struct Fft {
    n: usize,
    engine: Engine,
}

impl Fft {
    /// Plans a transform of length `n`, selecting the engine
    /// automatically: identity for `n == 1`, iterative radix-2 for powers
    /// of two, recursive mixed-radix for smooth composites (every prime
    /// factor ≤ 61), and Bluestein's chirp-z algorithm for anything with a
    /// larger prime factor — the fallback is automatic, so no length ever
    /// reaches the mixed-radix engine's internal prime limit.
    ///
    /// ```
    /// use photonn_fft::{Fft, Planner};
    /// use photonn_math::Complex64;
    ///
    /// // 134 = 2·67 has a prime factor past the mixed-radix limit; the
    /// // plan transparently uses Bluestein and still round-trips.
    /// let fft = Fft::new(134);
    /// let input: Vec<Complex64> = (0..134).map(|j| Complex64::new(j as f64, 0.0)).collect();
    /// let mut buf = input.clone();
    /// fft.forward(&mut buf);
    /// fft.inverse(&mut buf);
    /// assert!(buf.iter().zip(&input).all(|(a, b)| (*a - *b).norm() < 1e-9));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let engine = if n == 1 {
            Engine::Identity
        } else if n.is_power_of_two() {
            Engine::Radix2(Radix2::new(n))
        } else if MixedRadix::supports(n) {
            Engine::Mixed(MixedRadix::new(n))
        } else {
            Engine::Bluestein(Bluestein::new(n))
        };
        Fft { n, engine }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` only for the degenerate length-1 plan (provided for
    /// completeness; a length-1 FFT is the identity).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place unnormalized forward DFT.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "buffer length != plan length");
        match &self.engine {
            Engine::Identity => {}
            Engine::Radix2(r) => r.process(data),
            Engine::Mixed(m) => m.process(data),
            Engine::Bluestein(b) => b.process(data),
        }
    }

    /// In-place inverse DFT including the `1/n` normalization, so that
    /// `inverse ∘ forward` is the identity.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.inverse_unnormalized(data);
        let s = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(s);
        }
    }

    /// In-place inverse DFT *without* the `1/n` factor. This is exactly the
    /// adjoint (conjugate transpose) of [`Fft::forward`], which is what
    /// reverse-mode differentiation of an FFT needs.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn inverse_unnormalized(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "buffer length != plan length");
        // ifft(x) = conj(fft(conj(x))) — avoids a second twiddle table.
        for z in data.iter_mut() {
            *z = z.conj();
        }
        self.forward(data);
        for z in data.iter_mut() {
            *z = z.conj();
        }
    }
}

/// A thread-safe cache of [`Fft`] plans keyed by length.
///
/// # Examples
///
/// ```
/// use photonn_fft::Planner;
///
/// let planner = Planner::new();
/// let a = planner.plan(64);
/// let b = planner.plan(64);
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // cached
/// ```
#[derive(Debug, Default)]
pub struct Planner {
    cache: Mutex<HashMap<usize, Arc<Fft>>>,
}

impl Planner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached plan for length `n`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn plan(&self, n: usize) -> Arc<Fft> {
        let mut cache = self.cache.lock().expect("planner mutex poisoned");
        cache
            .entry(n)
            .or_insert_with(|| Arc::new(Fft::new(n)))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_spectra_close, naive_dft};

    #[test]
    fn plan_picks_engines() {
        assert!(matches!(Fft::new(1).engine, Engine::Identity));
        assert!(matches!(Fft::new(256).engine, Engine::Radix2(_)));
        assert!(matches!(Fft::new(200).engine, Engine::Mixed(_)));
        assert!(matches!(
            Fft::new(6),
            Fft {
                engine: Engine::Mixed(_),
                ..
            }
        ));
        // 127 is prime and > 61 → Bluestein.
        assert!(matches!(Fft::new(127).engine, Engine::Bluestein(_)));
        // 61 is exactly the mixed-radix prime limit; 67 is past it.
        assert!(matches!(Fft::new(61).engine, Engine::Mixed(_)));
        assert!(matches!(Fft::new(67).engine, Engine::Bluestein(_)));
    }

    #[test]
    fn large_prime_factors_fall_back_to_bluestein_automatically() {
        // Composite lengths with one factor past MixedRadix::MAX_PRIME
        // must never reach the mixed-radix constructor (whose internal
        // assert says "use Bluestein") — the planner does that rerouting.
        for n in [2 * 67, 3 * 71, 5 * 101, 2 * 2 * 127] {
            assert!(!MixedRadix::supports(n), "{n} should exceed the limit");
            let fft = Fft::new(n);
            assert!(
                matches!(fft.engine, Engine::Bluestein(_)),
                "{n} should plan as Bluestein"
            );
            // And the fallback engine is actually correct at that length.
            let input: Vec<Complex64> = (0..n)
                .map(|j| Complex64::new((j as f64 * 0.77).sin(), (j as f64 * 0.13).cos()))
                .collect();
            let mut got = input.clone();
            fft.forward(&mut got);
            assert_spectra_close(&got, &naive_dft(&input), 1e-9, &format!("bluestein n={n}"));
        }
    }

    #[test]
    fn mixed_radix_supports_matches_factor_limit() {
        assert!(!MixedRadix::supports(0));
        assert!(!MixedRadix::supports(1)); // identity engine's job
        assert!(MixedRadix::supports(2));
        assert!(MixedRadix::supports(200));
        assert!(MixedRadix::supports(61 * 4));
        assert!(!MixedRadix::supports(67));
        assert!(!MixedRadix::supports(2 * 67));
    }

    #[test]
    fn forward_matches_naive_dft_across_engines() {
        for n in [
            1usize, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16, 20, 25, 32, 48, 97, 127, 200,
        ] {
            let input: Vec<Complex64> = (0..n)
                .map(|j| Complex64::new((j as f64 * 0.37).sin(), (j as f64 * 0.11).cos()))
                .collect();
            let expected = naive_dft(&input);
            let mut got = input.clone();
            Fft::new(n).forward(&mut got);
            assert_spectra_close(&got, &expected, 1e-9, &format!("n={n}"));
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for n in [2usize, 15, 64, 200, 101] {
            let input: Vec<Complex64> = (0..n)
                .map(|j| Complex64::new(j as f64, -(j as f64) * 0.5))
                .collect();
            let fft = Fft::new(n);
            let mut buf = input.clone();
            fft.forward(&mut buf);
            fft.inverse(&mut buf);
            for (a, b) in buf.iter().zip(&input) {
                assert!((*a - *b).norm() < 1e-9 * n as f64);
            }
        }
    }

    #[test]
    fn inverse_unnormalized_is_adjoint() {
        // <Fx, y> == <x, F^H y> for the unnormalized pair.
        let n = 24;
        let x: Vec<Complex64> = (0..n).map(|j| Complex64::new(j as f64, 1.0)).collect();
        let y: Vec<Complex64> = (0..n).map(|j| Complex64::new(0.5, -(j as f64))).collect();
        let fft = Fft::new(n);
        let mut fx = x.clone();
        fft.forward(&mut fx);
        let mut fhy = y.clone();
        fft.inverse_unnormalized(&mut fhy);
        let lhs: Complex64 = fx.iter().zip(&y).map(|(a, b)| *a * b.conj()).sum();
        let rhs: Complex64 = x.iter().zip(&fhy).map(|(a, b)| *a * b.conj()).sum();
        assert!((lhs - rhs).norm() < 1e-9 * n as f64);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_panics() {
        let _ = Fft::new(0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_buffer_length_panics() {
        let fft = Fft::new(8);
        let mut buf = vec![Complex64::ZERO; 4];
        fft.forward(&mut buf);
    }

    #[test]
    fn planner_caches() {
        let planner = Planner::new();
        let a = planner.plan(32);
        let b = planner.plan(32);
        assert!(Arc::ptr_eq(&a, &b));
        let c = planner.plan(33);
        assert_eq!(c.len(), 33);
    }
}
