//! Terminal-friendly heatmaps for quick inspection of phase masks and
//! intensity patterns.

use photonn_math::Grid;

const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a grid as an ASCII heatmap, downsampling to at most
/// `max_side × max_side` characters. Values map onto a 10-step density
/// ramp after min/max normalization.
///
/// # Examples
///
/// ```
/// use photonn_math::Grid;
/// use photonn_viz::ascii_heatmap;
///
/// let g = Grid::from_fn(8, 8, |r, _| r as f64);
/// let art = ascii_heatmap(&g, 8);
/// assert_eq!(art.lines().count(), 8);
/// assert!(art.starts_with(' ')); // smallest value = lightest glyph
/// ```
///
/// # Panics
///
/// Panics on an empty grid or `max_side == 0`.
pub fn ascii_heatmap(grid: &Grid, max_side: usize) -> String {
    assert!(!grid.is_empty(), "cannot render an empty grid");
    assert!(max_side > 0, "max_side must be non-zero");
    let (rows, cols) = grid.shape();
    let step_r = rows.div_ceil(max_side);
    let step_c = cols.div_ceil(max_side);
    let (min, max) = (grid.min(), grid.max());
    let span = (max - min).max(1e-300);
    let mut out = String::new();
    let mut r = 0;
    while r < rows {
        let mut c = 0;
        while c < cols {
            // Average the block for stable downsampling.
            let mut acc = 0.0;
            let mut count = 0;
            for rr in r..(r + step_r).min(rows) {
                for cc in c..(c + step_c).min(cols) {
                    acc += grid[(rr, cc)];
                    count += 1;
                }
            }
            let v = (acc / count as f64 - min) / span;
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
            c += step_c;
        }
        out.push('\n');
        r += step_r;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsampling_bounds_output() {
        let g = Grid::from_fn(100, 100, |r, c| ((r + c) % 13) as f64);
        let art = ascii_heatmap(&g, 20);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines.len() <= 20);
        assert!(lines.iter().all(|l| l.len() <= 20));
    }

    #[test]
    fn extremes_use_ramp_ends() {
        let g = Grid::from_rows(&[&[0.0, 1.0]]);
        let art = ascii_heatmap(&g, 2);
        assert_eq!(art, " @\n");
    }

    #[test]
    fn constant_grid_renders_uniformly() {
        let g = Grid::full(3, 3, 4.2);
        let art = ascii_heatmap(&g, 3);
        let chars: Vec<char> = art.chars().filter(|c| *c != '\n').collect();
        assert!(chars.windows(2).all(|w| w[0] == w[1]));
    }
}
