//! Binary PGM (P5) / PPM (P6) image writers — dependency-free formats every
//! image viewer and converter understands.

use photonn_math::Grid;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use crate::colormap::{grayscale, viridis};

/// Normalizes a grid to `[0, 1]` by its own min/max (constant grids map to
/// all-zeros).
fn normalized(grid: &Grid) -> Grid {
    let (min, max) = (grid.min(), grid.max());
    let span = max - min;
    if span <= 0.0 {
        Grid::zeros(grid.rows(), grid.cols())
    } else {
        grid.map(|v| (v - min) / span)
    }
}

/// Writes a grid as a grayscale PGM image, normalizing to the grid's own
/// value range.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Panics
///
/// Panics on an empty grid.
pub fn write_pgm(path: &Path, grid: &Grid) -> io::Result<()> {
    assert!(!grid.is_empty(), "cannot write an empty image");
    let norm = normalized(grid);
    let mut f = File::create(path)?;
    write!(f, "P5\n{} {}\n255\n", grid.cols(), grid.rows())?;
    let bytes: Vec<u8> = norm.as_slice().iter().map(|&v| grayscale(v)).collect();
    f.write_all(&bytes)
}

/// Writes a grid as a viridis-colored PPM image — the Fig. 5 phase-mask
/// rendering. Values are normalized to the provided `(lo, hi)` range when
/// given, otherwise to the grid's own range.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Panics
///
/// Panics on an empty grid or `lo >= hi`.
pub fn write_ppm(path: &Path, grid: &Grid, range: Option<(f64, f64)>) -> io::Result<()> {
    assert!(!grid.is_empty(), "cannot write an empty image");
    let norm = match range {
        Some((lo, hi)) => {
            assert!(lo < hi, "empty color range");
            grid.map(|v| ((v - lo) / (hi - lo)).clamp(0.0, 1.0))
        }
        None => normalized(grid),
    };
    let mut f = File::create(path)?;
    write!(f, "P6\n{} {}\n255\n", grid.cols(), grid.rows())?;
    let mut bytes = Vec::with_capacity(grid.len() * 3);
    for &v in norm.as_slice() {
        let (r, g, b) = viridis(v);
        bytes.extend([r, g, b]);
    }
    f.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("photonn_viz_{name}_{}", std::process::id()))
    }

    #[test]
    fn pgm_header_and_size() {
        let g = Grid::from_fn(4, 6, |r, c| (r + c) as f64);
        let p = temp("a.pgm");
        write_pgm(&p, &g).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        assert!(bytes.starts_with(b"P5\n6 4\n255\n"));
        assert_eq!(bytes.len(), 11 + 24);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn ppm_has_three_channels() {
        let g = Grid::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let p = temp("b.ppm");
        write_ppm(&p, &g, None).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        assert!(bytes.starts_with(b"P6\n3 3\n255\n"));
        assert_eq!(bytes.len(), 11 + 27);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn constant_grid_writes_black() {
        let g = Grid::full(2, 2, 5.0);
        let p = temp("c.pgm");
        write_pgm(&p, &g).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        assert!(bytes[11..].iter().all(|&b| b == 0));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn fixed_range_clamps() {
        let g = Grid::from_rows(&[&[-1.0, 0.5, 2.0]]);
        let p = temp("d.ppm");
        write_ppm(&p, &g, Some((0.0, 1.0))).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        // First pixel clamps to viridis(0), last to viridis(1).
        assert_eq!(&bytes[11..14], &[68, 1, 84]);
        assert_eq!(&bytes[17..20], &[253, 231, 37]);
        std::fs::remove_file(p).ok();
    }
}
