//! Perceptually-uniform colormap for phase-mask rendering (Fig. 5).

/// A piecewise-linear approximation of matplotlib's *viridis* colormap.
///
/// Input is clamped to `[0, 1]`; output is `(r, g, b)` bytes.
///
/// # Examples
///
/// ```
/// use photonn_viz::viridis;
/// let (r, g, b) = viridis(0.0);
/// assert!(b > r); // viridis starts dark purple-blue
/// let (r2, g2, _) = viridis(1.0);
/// assert!(r2 > 200 && g2 > 200); // and ends bright yellow
/// ```
pub fn viridis(t: f64) -> (u8, u8, u8) {
    const ANCHORS: [(f64, [f64; 3]); 7] = [
        (0.0, [0.267, 0.005, 0.329]),
        (0.17, [0.283, 0.141, 0.458]),
        (0.33, [0.254, 0.265, 0.530]),
        (0.50, [0.164, 0.471, 0.558]),
        (0.67, [0.128, 0.658, 0.518]),
        (0.83, [0.478, 0.821, 0.319]),
        (1.0, [0.993, 0.906, 0.144]),
    ];
    let t = t.clamp(0.0, 1.0);
    let mut lo = ANCHORS[0];
    let mut hi = ANCHORS[ANCHORS.len() - 1];
    for w in ANCHORS.windows(2) {
        if t >= w[0].0 && t <= w[1].0 {
            lo = w[0];
            hi = w[1];
            break;
        }
    }
    let span = (hi.0 - lo.0).max(1e-12);
    let f = (t - lo.0) / span;
    let mix = |a: f64, b: f64| ((a + (b - a) * f) * 255.0).round() as u8;
    (
        mix(lo.1[0], hi.1[0]),
        mix(lo.1[1], hi.1[1]),
        mix(lo.1[2], hi.1[2]),
    )
}

/// Plain grayscale map (`0 → black`, `1 → white`).
pub fn grayscale(t: f64) -> u8 {
    (t.clamp(0.0, 1.0) * 255.0).round() as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_viridis() {
        assert_eq!(viridis(0.0), (68, 1, 84));
        assert_eq!(viridis(1.0), (253, 231, 37));
    }

    #[test]
    fn out_of_range_clamps() {
        assert_eq!(viridis(-5.0), viridis(0.0));
        assert_eq!(viridis(7.0), viridis(1.0));
    }

    #[test]
    fn monotone_green_channel() {
        // Viridis' green channel rises monotonically — a quick sanity
        // check that interpolation is ordered correctly.
        let mut last = 0u8;
        for i in 0..=20 {
            let (_, g, _) = viridis(i as f64 / 20.0);
            assert!(g >= last, "green dipped at t={}", i as f64 / 20.0);
            last = g;
        }
    }

    #[test]
    fn grayscale_linear() {
        assert_eq!(grayscale(0.0), 0);
        assert_eq!(grayscale(0.5), 128);
        assert_eq!(grayscale(1.0), 255);
    }
}
