//! # photonn-viz
//!
//! Visualization helpers for the DONN roughness-optimization reproduction:
//! PGM/PPM writers with a viridis colormap (used by the Fig. 5 phase-mask
//! regeneration binary) and ASCII heatmaps for terminal inspection.
//!
//! # Examples
//!
//! ```
//! use photonn_math::Grid;
//! use photonn_viz::ascii_heatmap;
//!
//! let mask = Grid::from_fn(16, 16, |r, c| ((r * c) % 7) as f64);
//! println!("{}", ascii_heatmap(&mask, 16));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod colormap;
mod pgm;

pub use ascii::ascii_heatmap;
pub use colormap::{grayscale, viridis};
pub use pgm::{write_pgm, write_ppm};
