//! Mini-batch iteration with seeded shuffling.

use photonn_math::Rng;

/// Yields index batches over a dataset, reshuffled each epoch from a
/// deterministic seed (so training runs are reproducible).
///
/// # Examples
///
/// ```
/// use photonn_datasets::BatchIter;
///
/// let mut batches = BatchIter::new(10, 4, 42);
/// let epoch: Vec<Vec<usize>> = batches.epoch().collect();
/// assert_eq!(epoch.len(), 3); // 4 + 4 + 2
/// assert_eq!(epoch.iter().map(Vec::len).sum::<usize>(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct BatchIter {
    len: usize,
    batch_size: usize,
    rng: Rng,
}

impl BatchIter {
    /// Creates a batcher over `len` samples with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `batch_size == 0`.
    pub fn new(len: usize, batch_size: usize, seed: u64) -> Self {
        assert!(len > 0, "empty dataset");
        assert!(batch_size > 0, "batch size must be non-zero");
        BatchIter {
            len,
            batch_size,
            rng: Rng::seed_from(seed),
        }
    }

    /// Shuffles and returns one epoch of batches. Call again for the next
    /// epoch (a fresh permutation).
    pub fn epoch(&mut self) -> impl Iterator<Item = Vec<usize>> {
        let mut order: Vec<usize> = (0..self.len).collect();
        self.rng.shuffle(&mut order);
        let bs = self.batch_size;
        let mut batches = Vec::with_capacity(self.len.div_ceil(bs));
        let mut i = 0;
        while i < order.len() {
            let end = (i + bs).min(order.len());
            batches.push(order[i..end].to_vec());
            i = end;
        }
        batches.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let mut b = BatchIter::new(23, 5, 1);
        let mut seen: Vec<usize> = b.epoch().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn epochs_reshuffle() {
        let mut b = BatchIter::new(50, 50, 2);
        let e1: Vec<usize> = b.epoch().flatten().collect();
        let e2: Vec<usize> = b.epoch().flatten().collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = BatchIter::new(20, 7, 9);
        let mut b = BatchIter::new(20, 7, 9);
        assert_eq!(a.epoch().collect::<Vec<_>>(), b.epoch().collect::<Vec<_>>());
    }

    #[test]
    fn last_batch_is_partial() {
        let mut b = BatchIter::new(10, 4, 3);
        let sizes: Vec<usize> = b.epoch().map(|v| v.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }
}
