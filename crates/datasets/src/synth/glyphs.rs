//! Handwritten-digit templates (MNIST-style classes 0–9).

use super::strokes::{Glyph, Primitive};

const THICKNESS: f64 = 0.045;

/// Vector template for digit `class`.
///
/// # Panics
///
/// Panics if `class > 9`.
pub fn digit(class: usize) -> Glyph {
    let primitives = match class {
        0 => vec![
            Primitive::Bezier([0.5, 0.18], [0.16, 0.5], [0.5, 0.82]),
            Primitive::Bezier([0.5, 0.18], [0.84, 0.5], [0.5, 0.82]),
        ],
        1 => vec![
            Primitive::Polyline(vec![[0.35, 0.35], [0.52, 0.2], [0.52, 0.8]]),
            Primitive::Polyline(vec![[0.35, 0.8], [0.68, 0.8]]),
        ],
        2 => vec![
            Primitive::Bezier([0.27, 0.35], [0.5, 0.08], [0.73, 0.35]),
            Primitive::Polyline(vec![[0.73, 0.35], [0.27, 0.8]]),
            Primitive::Polyline(vec![[0.27, 0.8], [0.75, 0.8]]),
        ],
        3 => vec![
            Primitive::Bezier([0.3, 0.25], [0.78, 0.18], [0.5, 0.48]),
            Primitive::Bezier([0.5, 0.48], [0.85, 0.58], [0.3, 0.78]),
        ],
        4 => vec![
            Primitive::Polyline(vec![[0.6, 0.2], [0.28, 0.6], [0.78, 0.6]]),
            Primitive::Polyline(vec![[0.62, 0.38], [0.62, 0.85]]),
        ],
        5 => vec![
            Primitive::Polyline(vec![[0.72, 0.2], [0.35, 0.2], [0.33, 0.48]]),
            Primitive::Bezier([0.33, 0.48], [0.85, 0.5], [0.38, 0.8]),
        ],
        6 => vec![
            Primitive::Bezier([0.65, 0.18], [0.3, 0.32], [0.33, 0.6]),
            Primitive::Bezier([0.33, 0.6], [0.36, 0.85], [0.6, 0.74]),
            Primitive::Bezier([0.6, 0.74], [0.68, 0.52], [0.33, 0.56]),
        ],
        7 => vec![Primitive::Polyline(vec![
            [0.25, 0.22],
            [0.75, 0.22],
            [0.45, 0.82],
        ])],
        8 => vec![
            Primitive::Bezier([0.5, 0.2], [0.22, 0.33], [0.5, 0.48]),
            Primitive::Bezier([0.5, 0.2], [0.78, 0.33], [0.5, 0.48]),
            Primitive::Bezier([0.5, 0.48], [0.18, 0.66], [0.5, 0.82]),
            Primitive::Bezier([0.5, 0.48], [0.82, 0.66], [0.5, 0.82]),
        ],
        9 => vec![
            Primitive::Bezier([0.66, 0.34], [0.42, 0.1], [0.34, 0.36]),
            Primitive::Bezier([0.34, 0.36], [0.42, 0.58], [0.66, 0.38]),
            Primitive::Bezier([0.66, 0.34], [0.68, 0.6], [0.52, 0.82]),
        ],
        _ => panic!("digit class {class} out of range 0..=9"),
    };
    Glyph {
        primitives,
        thickness: THICKNESS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::strokes::{rasterize, Affine};

    #[test]
    fn all_ten_digits_render_nonempty() {
        for class in 0..10 {
            let img = rasterize(&digit(class), 28, &Affine::identity());
            let ink = img.sum();
            assert!(ink > 10.0, "digit {class} too faint: {ink}");
            assert!(ink < 300.0, "digit {class} floods the image: {ink}");
        }
    }

    #[test]
    fn digit_templates_are_pairwise_distinct() {
        let renders: Vec<_> = (0..10)
            .map(|c| rasterize(&digit(c), 28, &Affine::identity()))
            .collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let d = renders[i].max_abs_diff(&renders[j]);
                assert!(d > 0.5, "digits {i} and {j} look identical (diff {d})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_out_of_range_panics() {
        let _ = digit(10);
    }
}
