//! Handwritten-letter templates (EMNIST-style, letters A–J as ten classes).

use super::strokes::{Glyph, Primitive};

const THICKNESS: f64 = 0.045;

/// Vector template for letter class `class` (0 = 'A' … 9 = 'J').
///
/// # Panics
///
/// Panics if `class > 9`.
pub fn letter(class: usize) -> Glyph {
    let primitives = match class {
        // A
        0 => vec![
            Primitive::Polyline(vec![[0.25, 0.8], [0.5, 0.18], [0.75, 0.8]]),
            Primitive::Polyline(vec![[0.35, 0.58], [0.65, 0.58]]),
        ],
        // B
        1 => vec![
            Primitive::Polyline(vec![[0.32, 0.18], [0.32, 0.82]]),
            Primitive::Bezier([0.32, 0.18], [0.75, 0.22], [0.32, 0.48]),
            Primitive::Bezier([0.32, 0.48], [0.82, 0.56], [0.32, 0.82]),
        ],
        // C
        2 => vec![Primitive::Bezier([0.72, 0.26], [0.1, 0.5], [0.72, 0.74])],
        // D
        3 => vec![
            Primitive::Polyline(vec![[0.32, 0.18], [0.32, 0.82]]),
            Primitive::Bezier([0.32, 0.18], [0.88, 0.5], [0.32, 0.82]),
        ],
        // E
        4 => vec![
            Primitive::Polyline(vec![[0.68, 0.2], [0.32, 0.2], [0.32, 0.8], [0.68, 0.8]]),
            Primitive::Polyline(vec![[0.32, 0.5], [0.6, 0.5]]),
        ],
        // F
        5 => vec![
            Primitive::Polyline(vec![[0.68, 0.2], [0.34, 0.2], [0.34, 0.82]]),
            Primitive::Polyline(vec![[0.34, 0.5], [0.62, 0.5]]),
        ],
        // G
        6 => vec![
            Primitive::Bezier([0.72, 0.26], [0.1, 0.5], [0.68, 0.76]),
            Primitive::Polyline(vec![[0.68, 0.76], [0.7, 0.54], [0.52, 0.54]]),
        ],
        // H
        7 => vec![
            Primitive::Polyline(vec![[0.3, 0.18], [0.3, 0.82]]),
            Primitive::Polyline(vec![[0.7, 0.18], [0.7, 0.82]]),
            Primitive::Polyline(vec![[0.3, 0.5], [0.7, 0.5]]),
        ],
        // I
        8 => vec![
            Primitive::Polyline(vec![[0.38, 0.2], [0.62, 0.2]]),
            Primitive::Polyline(vec![[0.5, 0.2], [0.5, 0.8]]),
            Primitive::Polyline(vec![[0.38, 0.8], [0.62, 0.8]]),
        ],
        // J
        9 => vec![
            Primitive::Polyline(vec![[0.4, 0.2], [0.72, 0.2]]),
            Primitive::Polyline(vec![[0.6, 0.2], [0.6, 0.62]]),
            Primitive::Bezier([0.6, 0.62], [0.55, 0.85], [0.3, 0.7]),
        ],
        _ => panic!("letter class {class} out of range 0..=9"),
    };
    Glyph {
        primitives,
        thickness: THICKNESS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::strokes::{rasterize, Affine};

    #[test]
    fn all_letters_render_nonempty() {
        for class in 0..10 {
            let img = rasterize(&letter(class), 28, &Affine::identity());
            assert!(img.sum() > 8.0, "letter class {class} too faint");
        }
    }

    #[test]
    fn letters_are_pairwise_distinct() {
        let renders: Vec<_> = (0..10)
            .map(|c| rasterize(&letter(c), 28, &Affine::identity()))
            .collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let structural = renders[i]
                    .as_slice()
                    .iter()
                    .zip(renders[j].as_slice())
                    .filter(|(a, b)| (**a - **b).abs() > 0.5)
                    .count();
                assert!(structural > 10, "letters {i}/{j} overlap too much");
            }
        }
    }

    #[test]
    fn h_is_symmetric_under_horizontal_flip() {
        let img = rasterize(&letter(7), 28, &Affine::identity());
        let flipped = photonn_math::Grid::from_fn(28, 28, |r, c| img[(r, 27 - c)]);
        assert!(
            img.max_abs_diff(&flipped) < 0.2,
            "H should be mirror symmetric"
        );
    }
}
