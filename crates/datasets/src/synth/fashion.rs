//! Clothing-silhouette templates (Fashion-MNIST-style classes).
//!
//! Class order follows Fashion-MNIST: t-shirt, trouser, pullover, dress,
//! coat, sandal, shirt, sneaker, bag, ankle boot. Filled polygons dominate,
//! matching the dense silhouettes of the real dataset.

use super::strokes::{Glyph, Primitive};

const THICKNESS: f64 = 0.03;

/// Vector template for fashion class `class`.
///
/// # Panics
///
/// Panics if `class > 9`.
pub fn fashion(class: usize) -> Glyph {
    let primitives = match class {
        // T-shirt/top: boxy torso with short sleeves.
        0 => vec![Primitive::Polygon(vec![
            [0.32, 0.22],
            [0.44, 0.18],
            [0.56, 0.18],
            [0.68, 0.22],
            [0.85, 0.34],
            [0.78, 0.46],
            [0.67, 0.4],
            [0.67, 0.82],
            [0.33, 0.82],
            [0.33, 0.4],
            [0.22, 0.46],
            [0.15, 0.34],
        ])],
        // Trouser: two legs.
        1 => vec![Primitive::Polygon(vec![
            [0.34, 0.15],
            [0.66, 0.15],
            [0.68, 0.85],
            [0.54, 0.85],
            [0.5, 0.42],
            [0.46, 0.85],
            [0.32, 0.85],
        ])],
        // Pullover: torso with long sleeves.
        2 => vec![Primitive::Polygon(vec![
            [0.34, 0.2],
            [0.66, 0.2],
            [0.88, 0.32],
            [0.84, 0.78],
            [0.72, 0.76],
            [0.7, 0.42],
            [0.68, 0.84],
            [0.32, 0.84],
            [0.3, 0.42],
            [0.28, 0.76],
            [0.16, 0.78],
            [0.12, 0.32],
        ])],
        // Dress: fitted top flaring to a wide hem.
        3 => vec![Primitive::Polygon(vec![
            [0.42, 0.15],
            [0.58, 0.15],
            [0.62, 0.4],
            [0.74, 0.85],
            [0.26, 0.85],
            [0.38, 0.4],
        ])],
        // Coat: long body, long sleeves, open front.
        4 => vec![
            Primitive::Polygon(vec![
                [0.34, 0.18],
                [0.66, 0.18],
                [0.88, 0.3],
                [0.86, 0.8],
                [0.72, 0.78],
                [0.7, 0.4],
                [0.7, 0.88],
                [0.3, 0.88],
                [0.3, 0.4],
                [0.28, 0.78],
                [0.14, 0.8],
                [0.12, 0.3],
            ]),
            Primitive::Polyline(vec![[0.5, 0.2], [0.5, 0.86]]),
        ],
        // Sandal: flat sole plus straps.
        5 => vec![
            Primitive::Polygon(vec![[0.15, 0.68], [0.85, 0.6], [0.88, 0.72], [0.15, 0.78]]),
            Primitive::Polyline(vec![[0.3, 0.68], [0.45, 0.45], [0.6, 0.62]]),
            Primitive::Polyline(vec![[0.55, 0.62], [0.7, 0.42], [0.82, 0.6]]),
        ],
        // Shirt: t-shirt body plus collar and button line.
        6 => vec![
            Primitive::Polygon(vec![
                [0.32, 0.22],
                [0.68, 0.22],
                [0.84, 0.34],
                [0.76, 0.46],
                [0.66, 0.4],
                [0.66, 0.84],
                [0.34, 0.84],
                [0.34, 0.4],
                [0.24, 0.46],
                [0.16, 0.34],
            ]),
            Primitive::Polyline(vec![[0.44, 0.22], [0.5, 0.3], [0.56, 0.22]]),
            Primitive::Polyline(vec![[0.5, 0.32], [0.5, 0.82]]),
        ],
        // Sneaker: low profile with a thick sole.
        7 => vec![
            Primitive::Polygon(vec![
                [0.14, 0.62],
                [0.4, 0.44],
                [0.62, 0.44],
                [0.86, 0.58],
                [0.86, 0.7],
                [0.14, 0.7],
            ]),
            Primitive::Polygon(vec![[0.14, 0.7], [0.86, 0.7], [0.86, 0.78], [0.14, 0.78]]),
        ],
        // Bag: body plus handle arc.
        8 => vec![
            Primitive::Polygon(vec![[0.22, 0.42], [0.78, 0.42], [0.82, 0.8], [0.18, 0.8]]),
            Primitive::Bezier([0.35, 0.42], [0.5, 0.14], [0.65, 0.42]),
        ],
        // Ankle boot: shaft plus foot.
        9 => vec![Primitive::Polygon(vec![
            [0.3, 0.2],
            [0.56, 0.2],
            [0.56, 0.52],
            [0.82, 0.64],
            [0.84, 0.78],
            [0.3, 0.78],
        ])],
        _ => panic!("fashion class {class} out of range 0..=9"),
    };
    Glyph {
        primitives,
        thickness: THICKNESS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::strokes::{rasterize, Affine};

    #[test]
    fn all_classes_render_with_substantial_ink() {
        // Silhouettes are dense (filled), unlike stroke digits.
        for class in 0..10 {
            let img = rasterize(&fashion(class), 28, &Affine::identity());
            let ink = img.sum();
            assert!(ink > 40.0, "fashion class {class} too faint: {ink}");
        }
    }

    #[test]
    fn classes_are_pairwise_distinct() {
        let renders: Vec<_> = (0..10)
            .map(|c| rasterize(&fashion(c), 28, &Affine::identity()))
            .collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                // Count pixels that differ by > 0.5 (structural difference).
                let structural = renders[i]
                    .as_slice()
                    .iter()
                    .zip(renders[j].as_slice())
                    .filter(|(a, b)| (**a - **b).abs() > 0.5)
                    .count();
                // The t-shirt/shirt pair (0/6) is deliberately close —
                // it is in the real dataset too — so the bar is modest.
                assert!(
                    structural > 10,
                    "classes {i}/{j} overlap too much ({structural})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_out_of_range_panics() {
        let _ = fashion(10);
    }
}
