//! Vector-stroke rasterization: the rendering engine behind all four
//! synthetic dataset families.
//!
//! Templates are described in a unit square (x right, y down) as polylines,
//! quadratic Béziers and filled polygons; rendering applies a per-sample
//! affine jitter to the control points, rasterizes with an anti-aliased
//! distance falloff, then adds sensor-style noise — producing MNIST-like
//! 28×28 grayscale images with realistic intra-class variation.

use photonn_math::{Grid, Rng};

/// A 2-D affine transform `p ↦ A·p + t` over unit-square coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Affine {
    /// Row-major 2×2 linear part.
    pub a: [f64; 4],
    /// Translation.
    pub t: [f64; 2],
}

impl Affine {
    /// Identity transform.
    pub fn identity() -> Self {
        Affine {
            a: [1.0, 0.0, 0.0, 1.0],
            t: [0.0, 0.0],
        }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: [f64; 2]) -> [f64; 2] {
        [
            self.a[0] * p[0] + self.a[1] * p[1] + self.t[0],
            self.a[2] * p[0] + self.a[3] * p[1] + self.t[1],
        ]
    }

    /// Composes `self ∘ other` (apply `other` first).
    pub fn then(&self, other: &Affine) -> Affine {
        // self.a · other.a
        Affine {
            a: [
                self.a[0] * other.a[0] + self.a[1] * other.a[2],
                self.a[0] * other.a[1] + self.a[1] * other.a[3],
                self.a[2] * other.a[0] + self.a[3] * other.a[2],
                self.a[2] * other.a[1] + self.a[3] * other.a[3],
            ],
            t: [
                self.a[0] * other.t[0] + self.a[1] * other.t[1] + self.t[0],
                self.a[2] * other.t[0] + self.a[3] * other.t[1] + self.t[1],
            ],
        }
    }

    /// A random handwriting-style jitter: rotation, anisotropic scale,
    /// shear and translation about the glyph center `(0.5, 0.5)`.
    pub fn sample_jitter(rng: &mut Rng, strength: f64) -> Affine {
        let rot = rng.normal_with(0.0, 0.08 * strength);
        let (sin, cos) = rot.sin_cos();
        let sx = 1.0 + rng.normal_with(0.0, 0.06 * strength);
        let sy = 1.0 + rng.normal_with(0.0, 0.06 * strength);
        let shear = rng.normal_with(0.0, 0.05 * strength);
        let tx = rng.normal_with(0.0, 0.025 * strength);
        let ty = rng.normal_with(0.0, 0.025 * strength);
        // Center, apply linear part, uncenter, translate.
        let linear = Affine {
            a: [
                sx * cos + shear * sin,
                -sy * sin + shear * cos,
                sx * sin,
                sy * cos,
            ],
            t: [0.0, 0.0],
        };
        let center = Affine {
            a: [1.0, 0.0, 0.0, 1.0],
            t: [-0.5, -0.5],
        };
        let uncenter = Affine {
            a: [1.0, 0.0, 0.0, 1.0],
            t: [0.5 + tx, 0.5 + ty],
        };
        uncenter.then(&linear).then(&center)
    }
}

/// One drawing primitive of a glyph template (unit-square coordinates).
#[derive(Clone, Debug, PartialEq)]
pub enum Primitive {
    /// Open polyline through the listed points.
    Polyline(Vec<[f64; 2]>),
    /// Quadratic Bézier (start, control, end).
    Bezier([f64; 2], [f64; 2], [f64; 2]),
    /// Filled polygon (even-odd rule) with soft edges.
    Polygon(Vec<[f64; 2]>),
}

impl Primitive {
    fn transformed(&self, xf: &Affine) -> Primitive {
        match self {
            Primitive::Polyline(ps) => {
                Primitive::Polyline(ps.iter().map(|&p| xf.apply(p)).collect())
            }
            Primitive::Bezier(a, b, c) => {
                Primitive::Bezier(xf.apply(*a), xf.apply(*b), xf.apply(*c))
            }
            Primitive::Polygon(ps) => Primitive::Polygon(ps.iter().map(|&p| xf.apply(p)).collect()),
        }
    }
}

/// A glyph: a list of primitives plus a stroke thickness (fraction of the
/// image side).
#[derive(Clone, Debug, PartialEq)]
pub struct Glyph {
    /// Drawing primitives.
    pub primitives: Vec<Primitive>,
    /// Stroke half-thickness in unit-square units (≈ 0.05 for MNIST look).
    pub thickness: f64,
}

fn dist_to_segment(p: [f64; 2], a: [f64; 2], b: [f64; 2]) -> f64 {
    let ab = [b[0] - a[0], b[1] - a[1]];
    let ap = [p[0] - a[0], p[1] - a[1]];
    let len_sq = ab[0] * ab[0] + ab[1] * ab[1];
    let t = if len_sq == 0.0 {
        0.0
    } else {
        ((ap[0] * ab[0] + ap[1] * ab[1]) / len_sq).clamp(0.0, 1.0)
    };
    let proj = [a[0] + t * ab[0], a[1] + t * ab[1]];
    ((p[0] - proj[0]).powi(2) + (p[1] - proj[1]).powi(2)).sqrt()
}

fn bezier_points(a: [f64; 2], b: [f64; 2], c: [f64; 2], segments: usize) -> Vec<[f64; 2]> {
    (0..=segments)
        .map(|i| {
            let t = i as f64 / segments as f64;
            let u = 1.0 - t;
            [
                u * u * a[0] + 2.0 * u * t * b[0] + t * t * c[0],
                u * u * a[1] + 2.0 * u * t * b[1] + t * t * c[1],
            ]
        })
        .collect()
}

fn point_in_polygon(p: [f64; 2], poly: &[[f64; 2]]) -> bool {
    // Even-odd rule.
    let mut inside = false;
    let n = poly.len();
    let mut j = n - 1;
    for i in 0..n {
        let (pi, pj) = (poly[i], poly[j]);
        if ((pi[1] > p[1]) != (pj[1] > p[1]))
            && (p[0] < (pj[0] - pi[0]) * (p[1] - pi[1]) / (pj[1] - pi[1]) + pi[0])
        {
            inside = !inside;
        }
        j = i;
    }
    inside
}

fn dist_to_polygon_edge(p: [f64; 2], poly: &[[f64; 2]]) -> f64 {
    let n = poly.len();
    (0..n)
        .map(|i| dist_to_segment(p, poly[i], poly[(i + 1) % n]))
        .fold(f64::INFINITY, f64::min)
}

/// Rasterizes a glyph into an `n × n` grayscale grid in `[0, 1]`.
///
/// Strokes use a smooth distance falloff (`1` inside the core thickness,
/// decaying over one extra half-thickness); polygons are filled with soft
/// edges. Values from overlapping primitives combine with `max`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn rasterize(glyph: &Glyph, n: usize, jitter: &Affine) -> Grid {
    assert!(n > 0, "raster size must be non-zero");
    let prims: Vec<Primitive> = glyph
        .primitives
        .iter()
        .map(|p| p.transformed(jitter))
        .collect();
    let th = glyph.thickness;
    let soft = th * 0.8;
    Grid::from_fn(n, n, |r, c| {
        // Pixel center in unit coordinates.
        let p = [(c as f64 + 0.5) / n as f64, (r as f64 + 0.5) / n as f64];
        let mut v: f64 = 0.0;
        for prim in &prims {
            let contribution = match prim {
                Primitive::Polyline(ps) => {
                    let mut d = f64::INFINITY;
                    for w in ps.windows(2) {
                        d = d.min(dist_to_segment(p, w[0], w[1]));
                    }
                    stroke_falloff(d, th, soft)
                }
                Primitive::Bezier(a, b, cpt) => {
                    let ps = bezier_points(*a, *b, *cpt, 16);
                    let mut d = f64::INFINITY;
                    for w in ps.windows(2) {
                        d = d.min(dist_to_segment(p, w[0], w[1]));
                    }
                    stroke_falloff(d, th, soft)
                }
                Primitive::Polygon(ps) => {
                    let d = dist_to_polygon_edge(p, ps);
                    if point_in_polygon(p, ps) {
                        1.0
                    } else {
                        stroke_falloff(d, 0.0, soft)
                    }
                }
            };
            v = v.max(contribution);
        }
        v
    })
}

#[inline]
fn stroke_falloff(d: f64, core: f64, soft: f64) -> f64 {
    if d <= core {
        1.0
    } else if d >= core + soft {
        0.0
    } else {
        let t = (d - core) / soft;
        // Smoothstep for an anti-aliased edge.
        1.0 - t * t * (3.0 - 2.0 * t)
    }
}

/// Adds per-pixel Gaussian noise and clamps to `[0, 1]` — the sensor-noise
/// stage of the synthetic pipeline.
pub fn add_noise(img: &mut Grid, sigma: f64, rng: &mut Rng) {
    if sigma <= 0.0 {
        return;
    }
    for v in img.as_mut_slice() {
        *v = (*v + rng.normal_with(0.0, sigma)).clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_glyph() -> Glyph {
        Glyph {
            primitives: vec![Primitive::Polyline(vec![[0.2, 0.5], [0.8, 0.5]])],
            thickness: 0.05,
        }
    }

    #[test]
    fn rasterize_line_hits_center_row() {
        let img = rasterize(&line_glyph(), 28, &Affine::identity());
        assert_eq!(img.shape(), (28, 28));
        // On the stroke.
        assert!(img[(14, 14)] > 0.9, "center {}", img[(14, 14)]);
        // Far off the stroke.
        assert!(img[(3, 14)] < 1e-9);
        assert!(img.min() >= 0.0 && img.max() <= 1.0);
    }

    #[test]
    fn jitter_moves_the_stroke() {
        let mut rng = Rng::seed_from(5);
        let id = rasterize(&line_glyph(), 28, &Affine::identity());
        let jit = Affine::sample_jitter(&mut rng, 1.5);
        let moved = rasterize(&line_glyph(), 28, &jit);
        assert!(id.max_abs_diff(&moved) > 0.1, "jitter produced no change");
    }

    #[test]
    fn affine_compose_matches_sequential_apply() {
        let mut rng = Rng::seed_from(9);
        let f = Affine::sample_jitter(&mut rng, 1.0);
        let g = Affine::sample_jitter(&mut rng, 1.0);
        let p = [0.3, 0.7];
        let a = f.apply(g.apply(p));
        let b = f.then(&g).apply(p);
        assert!((a[0] - b[0]).abs() < 1e-12 && (a[1] - b[1]).abs() < 1e-12);
    }

    #[test]
    fn bezier_renders_curved_stroke() {
        let glyph = Glyph {
            primitives: vec![Primitive::Bezier([0.2, 0.8], [0.5, 0.0], [0.8, 0.8])],
            thickness: 0.05,
        };
        let img = rasterize(&glyph, 28, &Affine::identity());
        // The curve's apex is near (0.5, 0.4) in unit coords → pixel ~ (11, 14).
        assert!(img[(11, 14)] > 0.5);
        // Start and end are lit.
        assert!(img[(22, 6)] > 0.3);
        assert!(img[(22, 21)] > 0.3);
    }

    #[test]
    fn polygon_fill_interior() {
        let glyph = Glyph {
            primitives: vec![Primitive::Polygon(vec![
                [0.25, 0.25],
                [0.75, 0.25],
                [0.75, 0.75],
                [0.25, 0.75],
            ])],
            thickness: 0.0,
        };
        let img = rasterize(&glyph, 28, &Affine::identity());
        assert_eq!(img[(14, 14)], 1.0);
        assert!(img[(2, 2)] < 1e-9);
    }

    #[test]
    fn point_in_polygon_concave() {
        // L-shape: (0.6, 0.6) is outside the L.
        let poly = vec![
            [0.2, 0.2],
            [0.8, 0.2],
            [0.8, 0.5],
            [0.5, 0.5],
            [0.5, 0.8],
            [0.2, 0.8],
        ];
        assert!(point_in_polygon([0.3, 0.3], &poly));
        assert!(point_in_polygon([0.3, 0.7], &poly));
        assert!(!point_in_polygon([0.6, 0.6], &poly));
    }

    #[test]
    fn noise_is_bounded_and_seeded() {
        let mut a = rasterize(&line_glyph(), 28, &Affine::identity());
        let mut b = a.clone();
        add_noise(&mut a, 0.05, &mut Rng::seed_from(7));
        add_noise(&mut b, 0.05, &mut Rng::seed_from(7));
        assert_eq!(a, b, "same seed must give same noise");
        assert!(a.min() >= 0.0 && a.max() <= 1.0);
        let mut c = rasterize(&line_glyph(), 28, &Affine::identity());
        add_noise(&mut c, 0.0, &mut Rng::seed_from(7));
        assert_eq!(c, rasterize(&line_glyph(), 28, &Affine::identity()));
    }
}
