//! Cursive multi-stroke templates (KMNIST-style classes).
//!
//! KMNIST's ten classes are cursive hiragana; these templates imitate the
//! *statistics* that matter to the DONN experiments — several overlapping
//! curved strokes per glyph, denser and swirlier than Latin digits — rather
//! than faithful calligraphy.

use super::strokes::{Glyph, Primitive};

const THICKNESS: f64 = 0.045;

/// Vector template for kana-style class `class`.
///
/// # Panics
///
/// Panics if `class > 9`.
pub fn kana(class: usize) -> Glyph {
    let primitives = match class {
        // お-like: vertical stroke, cross bar, right swirl.
        0 => vec![
            Primitive::Polyline(vec![[0.35, 0.18], [0.35, 0.75]]),
            Primitive::Polyline(vec![[0.2, 0.35], [0.52, 0.32]]),
            Primitive::Bezier([0.35, 0.55], [0.72, 0.5], [0.55, 0.82]),
            Primitive::Bezier([0.66, 0.2], [0.8, 0.3], [0.7, 0.4]),
        ],
        // き-like: two bars, diagonal spine, bottom hook.
        1 => vec![
            Primitive::Polyline(vec![[0.25, 0.28], [0.7, 0.24]]),
            Primitive::Polyline(vec![[0.22, 0.44], [0.72, 0.4]]),
            Primitive::Polyline(vec![[0.6, 0.15], [0.42, 0.6]]),
            Primitive::Bezier([0.42, 0.6], [0.7, 0.68], [0.4, 0.84]),
        ],
        // す-like: top bar, vertical with loop.
        2 => vec![
            Primitive::Polyline(vec![[0.22, 0.3], [0.75, 0.28]]),
            Primitive::Polyline(vec![[0.5, 0.16], [0.5, 0.55]]),
            Primitive::Bezier([0.5, 0.55], [0.25, 0.7], [0.5, 0.72]),
            Primitive::Bezier([0.5, 0.72], [0.68, 0.7], [0.42, 0.86]),
        ],
        // つ-like: one sweeping curve.
        3 => vec![Primitive::Bezier([0.2, 0.38], [0.85, 0.18], [0.6, 0.78])],
        // な-like: four separated strokes.
        4 => vec![
            Primitive::Polyline(vec![[0.22, 0.3], [0.45, 0.26]]),
            Primitive::Polyline(vec![[0.34, 0.16], [0.3, 0.5]]),
            Primitive::Polyline(vec![[0.6, 0.2], [0.72, 0.34]]),
            Primitive::Bezier([0.3, 0.62], [0.5, 0.5], [0.52, 0.72]),
            Primitive::Bezier([0.52, 0.72], [0.5, 0.9], [0.34, 0.78]),
        ],
        // は-like: left vertical, right vertical with loop, cross bar.
        5 => vec![
            Primitive::Polyline(vec![[0.28, 0.2], [0.28, 0.8]]),
            Primitive::Polyline(vec![[0.45, 0.38], [0.78, 0.36]]),
            Primitive::Polyline(vec![[0.62, 0.18], [0.62, 0.66]]),
            Primitive::Bezier([0.62, 0.66], [0.46, 0.84], [0.66, 0.84]),
        ],
        // ま-like: two bars, center vertical, bottom loop.
        6 => vec![
            Primitive::Polyline(vec![[0.3, 0.26], [0.72, 0.24]]),
            Primitive::Polyline(vec![[0.3, 0.4], [0.72, 0.38]]),
            Primitive::Polyline(vec![[0.52, 0.14], [0.52, 0.66]]),
            Primitive::Bezier([0.52, 0.66], [0.28, 0.86], [0.56, 0.84]),
        ],
        // や-like: diagonal sweep with crossing curve.
        7 => vec![
            Primitive::Bezier([0.3, 0.3], [0.75, 0.2], [0.62, 0.5]),
            Primitive::Polyline(vec![[0.4, 0.16], [0.5, 0.36]]),
            Primitive::Bezier([0.35, 0.5], [0.3, 0.85], [0.55, 0.8]),
        ],
        // れ-like: left vertical plus wavy right limb.
        8 => vec![
            Primitive::Polyline(vec![[0.3, 0.18], [0.3, 0.82]]),
            Primitive::Bezier([0.3, 0.45], [0.55, 0.2], [0.58, 0.5]),
            Primitive::Bezier([0.58, 0.5], [0.6, 0.8], [0.78, 0.68]),
        ],
        // を-like: top bar, S-curve, bottom sweep.
        9 => vec![
            Primitive::Polyline(vec![[0.3, 0.22], [0.68, 0.2]]),
            Primitive::Bezier([0.52, 0.22], [0.3, 0.45], [0.56, 0.52]),
            Primitive::Bezier([0.56, 0.52], [0.78, 0.6], [0.4, 0.7]),
            Primitive::Bezier([0.4, 0.7], [0.3, 0.85], [0.68, 0.84]),
        ],
        _ => panic!("kana class {class} out of range 0..=9"),
    };
    Glyph {
        primitives,
        thickness: THICKNESS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::strokes::{rasterize, Affine};

    #[test]
    fn all_classes_render_nonempty() {
        for class in 0..10 {
            let img = rasterize(&kana(class), 28, &Affine::identity());
            assert!(img.sum() > 8.0, "kana class {class} too faint");
        }
    }

    #[test]
    fn classes_are_pairwise_distinct() {
        let renders: Vec<_> = (0..10)
            .map(|c| rasterize(&kana(c), 28, &Affine::identity()))
            .collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert!(
                    renders[i].max_abs_diff(&renders[j]) > 0.5,
                    "kana classes {i}/{j} identical"
                );
            }
        }
    }

    #[test]
    fn kana_denser_than_single_stroke() {
        // Multi-stroke glyphs (all but つ) carry more ink than one line.
        let single_line = Glyph {
            primitives: vec![Primitive::Polyline(vec![[0.2, 0.5], [0.8, 0.5]])],
            thickness: THICKNESS,
        };
        let line_ink = rasterize(&single_line, 28, &Affine::identity()).sum();
        for class in [0usize, 1, 2, 4, 5, 6, 9] {
            let ink = rasterize(&kana(class), 28, &Affine::identity()).sum();
            assert!(ink > line_ink, "class {class}: {ink} <= {line_ink}");
        }
    }
}
