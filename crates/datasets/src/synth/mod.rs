//! Procedural synthetic dataset generation.
//!
//! This environment has no network access, so the four benchmark datasets
//! of the paper (MNIST, FMNIST, KMNIST, EMNIST) are replaced by procedural
//! families with the same format (28×28 grayscale in `[0,1]`, 10 balanced
//! classes) and the property that matters for the experiments: a
//! class-consistent signal with per-sample nuisance variation (affine
//! jitter, stroke-width jitter, sensor noise), so a DONN can actually learn
//! them and the accuracy/roughness trade-offs of the paper stay visible.
//! See `DESIGN.md` §4 for the substitution rationale.

pub mod fashion;
pub mod glyphs;
pub mod kana;
pub mod letters;
pub mod strokes;

use photonn_math::{Grid, Rng};

use strokes::{add_noise, rasterize, Affine, Glyph};

/// The four dataset families of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Family {
    /// Handwritten digits (MNIST-style).
    #[default]
    Mnist,
    /// Clothing silhouettes (Fashion-MNIST-style).
    Fmnist,
    /// Cursive multi-stroke glyphs (KMNIST-style).
    Kmnist,
    /// Handwritten letters A–J (EMNIST-style).
    Emnist,
}

impl Family {
    /// Canonical lowercase name (matches the paper's tables).
    pub fn name(self) -> &'static str {
        match self {
            Family::Mnist => "mnist",
            Family::Fmnist => "fmnist",
            Family::Kmnist => "kmnist",
            Family::Emnist => "emnist",
        }
    }

    /// All four families in table order (Tables II–V).
    pub fn all() -> [Family; 4] {
        [
            Family::Mnist,
            Family::Fmnist,
            Family::Kmnist,
            Family::Emnist,
        ]
    }

    /// The vector template for `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class > 9`.
    pub fn template(self, class: usize) -> Glyph {
        match self {
            Family::Mnist => glyphs::digit(class),
            Family::Fmnist => fashion::fashion(class),
            Family::Kmnist => kana::kana(class),
            Family::Emnist => letters::letter(class),
        }
    }
}

/// Knobs of the synthetic generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SynthConfig {
    /// Image side length (28 matches the real datasets).
    pub size: usize,
    /// Affine jitter strength (1.0 ≈ handwriting-level variation).
    pub jitter: f64,
    /// Stroke-thickness multiplier spread (relative std).
    pub thickness_jitter: f64,
    /// Gaussian pixel-noise sigma.
    pub noise: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            size: 28,
            jitter: 1.0,
            thickness_jitter: 0.15,
            noise: 0.03,
        }
    }
}

/// Generates `count` class-balanced samples (labels cycle 0–9), seeded and
/// fully deterministic.
///
/// # Panics
///
/// Panics if `count == 0` or `config.size == 0`.
pub fn generate(
    family: Family,
    count: usize,
    seed: u64,
    config: SynthConfig,
) -> (Vec<Grid>, Vec<usize>) {
    assert!(count > 0, "cannot generate an empty dataset");
    assert!(config.size > 0, "image size must be non-zero");
    let mut rng = Rng::seed_from(seed ^ 0x5eed_0000);
    let mut images = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let class = i % 10;
        let mut glyph = family.template(class);
        let tj = 1.0 + rng.normal_with(0.0, config.thickness_jitter);
        glyph.thickness *= tj.clamp(0.55, 1.8);
        let jitter = Affine::sample_jitter(&mut rng, config.jitter);
        let mut img = rasterize(&glyph, config.size, &jitter);
        add_noise(&mut img, config.noise, &mut rng);
        images.push(img);
        labels.push(class);
    }
    (images, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::default();
        let (a, la) = generate(Family::Mnist, 20, 7, cfg);
        let (b, lb) = generate(Family::Mnist, 20, 7, cfg);
        assert_eq!(la, lb);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SynthConfig::default();
        let (a, _) = generate(Family::Mnist, 10, 1, cfg);
        let (b, _) = generate(Family::Mnist, 10, 2, cfg);
        assert!(a.iter().zip(&b).any(|(x, y)| x != y));
    }

    #[test]
    fn labels_are_balanced() {
        let (_, labels) = generate(Family::Kmnist, 100, 3, SynthConfig::default());
        for class in 0..10 {
            assert_eq!(labels.iter().filter(|&&l| l == class).count(), 10);
        }
    }

    #[test]
    fn intra_class_varies_but_stays_recognizable() {
        // Two samples of the same class differ (jitter) but correlate far
        // more with each other than with a different class's template.
        let cfg = SynthConfig {
            noise: 0.0,
            ..SynthConfig::default()
        };
        let (imgs, labels) = generate(Family::Mnist, 100, 11, cfg);
        let of_class = |class: usize| -> Vec<&Grid> {
            imgs.iter()
                .zip(&labels)
                .filter(|(_, &l)| l == class)
                .map(|(g, _)| g)
                .collect()
        };
        let zeros = of_class(0);
        let ones = of_class(1);
        assert!(zeros.len() >= 5);
        assert!(
            zeros[0].max_abs_diff(zeros[1]) > 1e-6,
            "no intra-class variation"
        );

        let corr = |a: &Grid, b: &Grid| -> f64 {
            let (ma, mb) = (a.mean(), b.mean());
            let mut num = 0.0;
            let mut da = 0.0;
            let mut db = 0.0;
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                num += (x - ma) * (y - mb);
                da += (x - ma) * (x - ma);
                db += (y - mb) * (y - mb);
            }
            num / (da.sqrt() * db.sqrt() + 1e-12)
        };
        // Average same-class vs cross-class correlation over many pairs.
        let mut same = 0.0;
        let mut cross = 0.0;
        let mut n_pairs = 0.0;
        for i in 0..5 {
            for j in (i + 1)..6 {
                same += corr(zeros[i], zeros[j]);
                cross += corr(zeros[i], ones[j]);
                n_pairs += 1.0;
            }
        }
        same /= n_pairs;
        cross /= n_pairs;
        assert!(
            same > cross + 0.1,
            "class structure too weak: same {same:.3} vs cross {cross:.3}"
        );
    }

    #[test]
    fn all_families_generate() {
        for family in Family::all() {
            let (imgs, labels) = generate(family, 10, 5, SynthConfig::default());
            assert_eq!(imgs.len(), 10);
            assert_eq!(labels.len(), 10);
            assert!(imgs.iter().all(|g| g.shape() == (28, 28)));
            assert!(imgs.iter().all(|g| g.min() >= 0.0 && g.max() <= 1.0));
        }
    }

    #[test]
    fn family_names_match_paper_tables() {
        assert_eq!(Family::Mnist.name(), "mnist");
        assert_eq!(Family::Fmnist.name(), "fmnist");
        assert_eq!(Family::Kmnist.name(), "kmnist");
        assert_eq!(Family::Emnist.name(), "emnist");
    }
}
