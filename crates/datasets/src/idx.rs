//! Reader/writer for the IDX binary format used by MNIST-family datasets.
//!
//! Supports the two record types the paper's datasets use: `0x0803`
//! (unsigned-byte rank-3 image tensors) and `0x0801` (unsigned-byte rank-1
//! label vectors). When real MNIST/FMNIST/KMNIST/EMNIST files are present
//! on disk they are loaded through this module; otherwise the synthetic
//! generators stand in (see the crate docs).

use photonn_math::Grid;
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// Errors from IDX parsing.
#[derive(Debug)]
pub enum IdxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic number was not an expected IDX header.
    BadMagic(u32),
    /// Header promised more data than the file contains.
    Truncated {
        /// Bytes expected from the header.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// Image and label files disagree on the number of records.
    CountMismatch {
        /// Number of images.
        images: usize,
        /// Number of labels.
        labels: usize,
    },
}

impl fmt::Display for IdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxError::Io(e) => write!(f, "i/o error: {e}"),
            IdxError::BadMagic(m) => write!(f, "bad IDX magic 0x{m:08x}"),
            IdxError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated IDX payload: expected {expected} bytes, found {actual}"
                )
            }
            IdxError::CountMismatch { images, labels } => {
                write!(
                    f,
                    "image/label count mismatch: {images} images, {labels} labels"
                )
            }
        }
    }
}

impl std::error::Error for IdxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IdxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IdxError {
    fn from(e: io::Error) -> Self {
        IdxError::Io(e)
    }
}

fn read_u32(bytes: &[u8], offset: usize) -> Result<u32, IdxError> {
    let end = offset + 4;
    if bytes.len() < end {
        return Err(IdxError::Truncated {
            expected: end,
            actual: bytes.len(),
        });
    }
    Ok(u32::from_be_bytes([
        bytes[offset],
        bytes[offset + 1],
        bytes[offset + 2],
        bytes[offset + 3],
    ]))
}

/// Reads an IDX image file (`magic 0x0803`) into row-major grids with
/// pixel values scaled to `[0, 1]`.
///
/// # Errors
///
/// Returns [`IdxError`] on I/O failure, a wrong magic number, or a
/// truncated payload.
pub fn read_images(path: &Path) -> Result<Vec<Grid>, IdxError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let magic = read_u32(&bytes, 0)?;
    if magic != 0x0803 {
        return Err(IdxError::BadMagic(magic));
    }
    let count = read_u32(&bytes, 4)? as usize;
    let rows = read_u32(&bytes, 8)? as usize;
    let cols = read_u32(&bytes, 12)? as usize;
    let expected = 16 + count * rows * cols;
    if bytes.len() < expected {
        return Err(IdxError::Truncated {
            expected,
            actual: bytes.len(),
        });
    }
    let mut images = Vec::with_capacity(count);
    for i in 0..count {
        let start = 16 + i * rows * cols;
        let data = bytes[start..start + rows * cols]
            .iter()
            .map(|&b| b as f64 / 255.0)
            .collect();
        images.push(Grid::from_vec(rows, cols, data));
    }
    Ok(images)
}

/// Reads an IDX label file (`magic 0x0801`).
///
/// # Errors
///
/// Returns [`IdxError`] on I/O failure, a wrong magic number, or a
/// truncated payload.
pub fn read_labels(path: &Path) -> Result<Vec<usize>, IdxError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let magic = read_u32(&bytes, 0)?;
    if magic != 0x0801 {
        return Err(IdxError::BadMagic(magic));
    }
    let count = read_u32(&bytes, 4)? as usize;
    let expected = 8 + count;
    if bytes.len() < expected {
        return Err(IdxError::Truncated {
            expected,
            actual: bytes.len(),
        });
    }
    Ok(bytes[8..8 + count].iter().map(|&b| b as usize).collect())
}

/// Writes grids (values clamped to `[0, 1]`) as an IDX image file —
/// round-trip support used by tests and for exporting synthetic data.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Panics
///
/// Panics if images have inconsistent shapes or `images` is empty.
pub fn write_images(path: &Path, images: &[Grid]) -> io::Result<()> {
    assert!(!images.is_empty(), "cannot write an empty image set");
    let (rows, cols) = images[0].shape();
    assert!(
        images.iter().all(|g| g.shape() == (rows, cols)),
        "inconsistent image shapes"
    );
    let mut f = File::create(path)?;
    f.write_all(&0x0803u32.to_be_bytes())?;
    f.write_all(&(images.len() as u32).to_be_bytes())?;
    f.write_all(&(rows as u32).to_be_bytes())?;
    f.write_all(&(cols as u32).to_be_bytes())?;
    let mut buf = Vec::with_capacity(images.len() * rows * cols);
    for img in images {
        buf.extend(
            img.as_slice()
                .iter()
                .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8),
        );
    }
    f.write_all(&buf)
}

/// Writes labels as an IDX label file.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Panics
///
/// Panics if a label exceeds 255.
pub fn write_labels(path: &Path, labels: &[usize]) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(&0x0801u32.to_be_bytes())?;
    f.write_all(&(labels.len() as u32).to_be_bytes())?;
    let bytes: Vec<u8> = labels
        .iter()
        .map(|&l| u8::try_from(l).expect("label exceeds u8 range"))
        .collect();
    f.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env;

    fn temp_path(name: &str) -> std::path::PathBuf {
        env::temp_dir().join(format!("photonn_idx_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_images_and_labels() {
        let imgs: Vec<Grid> = (0..3)
            .map(|i| Grid::from_fn(5, 4, |r, c| ((r * 4 + c + i) % 5) as f64 / 4.0))
            .collect();
        let labels = vec![7usize, 0, 3];
        let ip = temp_path("imgs");
        let lp = temp_path("labels");
        write_images(&ip, &imgs).unwrap();
        write_labels(&lp, &labels).unwrap();

        let back_imgs = read_images(&ip).unwrap();
        let back_labels = read_labels(&lp).unwrap();
        assert_eq!(back_labels, labels);
        assert_eq!(back_imgs.len(), 3);
        for (a, b) in imgs.iter().zip(&back_imgs) {
            assert!(a.max_abs_diff(b) <= 0.5 / 255.0 + 1e-12);
        }
        std::fs::remove_file(ip).ok();
        std::fs::remove_file(lp).ok();
    }

    #[test]
    fn bad_magic_detected() {
        let p = temp_path("badmagic");
        std::fs::write(&p, 0xdeadbeefu32.to_be_bytes()).unwrap();
        match read_images(&p) {
            Err(IdxError::BadMagic(0xdeadbeef)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn truncated_payload_detected() {
        let p = temp_path("trunc");
        let mut bytes = Vec::new();
        bytes.extend(0x0803u32.to_be_bytes());
        bytes.extend(10u32.to_be_bytes()); // promises 10 images...
        bytes.extend(28u32.to_be_bytes());
        bytes.extend(28u32.to_be_bytes());
        bytes.extend([0u8; 100]); // ...but delivers 100 bytes
        std::fs::write(&p, bytes).unwrap();
        assert!(matches!(read_images(&p), Err(IdxError::Truncated { .. })));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let p = temp_path("definitely_missing");
        assert!(matches!(read_images(&p), Err(IdxError::Io(_))));
    }
}
