//! # photonn-datasets
//!
//! Dataset substrate for the DAC'23 DONN roughness-optimization
//! reproduction: an [`idx`] loader for real MNIST-format files plus
//! procedural synthetic stand-ins ([`synth`]) for the paper's four
//! benchmarks (MNIST, FMNIST, KMNIST, EMNIST) in offline environments.
//!
//! The paper interpolates 28×28 inputs up to the 200×200 optical grid
//! before encoding them on the laser source; [`Dataset::resized`] performs
//! that step with the same bilinear kernel as `torch.nn.functional.interpolate`.
//!
//! # Examples
//!
//! ```
//! use photonn_datasets::{Dataset, Family};
//!
//! // 100 synthetic MNIST-style samples, deterministic for the seed.
//! let data = Dataset::synthetic(Family::Mnist, 100, 42);
//! assert_eq!(data.len(), 100);
//! assert_eq!(data.num_classes(), 10);
//! let (train, test) = data.split(80);
//! assert_eq!((train.len(), test.len()), (80, 20));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod idx;
pub mod synth;

pub use batch::BatchIter;
pub use synth::{Family, SynthConfig};

use photonn_math::interp::bilinear_resize;
use photonn_math::Grid;
use std::path::Path;

/// An in-memory labeled image dataset (images in `[0, 1]`).
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    name: String,
    images: Vec<Grid>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Builds a dataset from parallel image/label vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or the dataset is empty.
    pub fn new(name: impl Into<String>, images: Vec<Grid>, labels: Vec<usize>) -> Self {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(!images.is_empty(), "empty dataset");
        Dataset {
            name: name.into(),
            images,
            labels,
        }
    }

    /// Generates a synthetic dataset for `family` with default settings.
    pub fn synthetic(family: Family, count: usize, seed: u64) -> Self {
        Self::synthetic_with(family, count, seed, SynthConfig::default())
    }

    /// Generates a synthetic dataset with explicit generator settings.
    pub fn synthetic_with(family: Family, count: usize, seed: u64, config: SynthConfig) -> Self {
        let (images, labels) = synth::generate(family, count, seed, config);
        Dataset::new(family.name(), images, labels)
    }

    /// Loads real IDX files if both exist, otherwise synthesizes. This is
    /// the entry point the benchmark binaries use: drop the real
    /// `train-images-idx3-ubyte`/`train-labels-idx1-ubyte` into `dir` to run
    /// on genuine data.
    ///
    /// # Errors
    ///
    /// Returns an [`idx::IdxError`] only when real files are present but
    /// malformed; absence of files silently falls back to synthesis.
    pub fn load_or_synthesize(
        family: Family,
        dir: &Path,
        count: usize,
        seed: u64,
    ) -> Result<Self, idx::IdxError> {
        let images_path = dir.join(format!("{}-images-idx3-ubyte", family.name()));
        let labels_path = dir.join(format!("{}-labels-idx1-ubyte", family.name()));
        if images_path.exists() && labels_path.exists() {
            let mut images = idx::read_images(&images_path)?;
            let mut labels = idx::read_labels(&labels_path)?;
            if images.len() != labels.len() {
                return Err(idx::IdxError::CountMismatch {
                    images: images.len(),
                    labels: labels.len(),
                });
            }
            images.truncate(count);
            labels.truncate(count);
            Ok(Dataset::new(family.name(), images, labels))
        } else {
            Ok(Self::synthetic(family, count, seed))
        }
    }

    /// Dataset name (e.g. `"mnist"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// `true` if the dataset holds no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of distinct classes (max label + 1).
    pub fn num_classes(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// The `i`-th image.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn image(&self, i: usize) -> &Grid {
        &self.images[i]
    }

    /// The `i`-th label.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Splits into `(first n, rest)` preserving order.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n < len` (both halves must be non-empty).
    pub fn split(self, n: usize) -> (Dataset, Dataset) {
        assert!(n > 0 && n < self.len(), "split point {n} out of range");
        let mut images = self.images;
        let mut labels = self.labels;
        let tail_images = images.split_off(n);
        let tail_labels = labels.split_off(n);
        (
            Dataset::new(self.name.clone(), images, labels),
            Dataset::new(self.name, tail_images, tail_labels),
        )
    }

    /// A new dataset with every image bilinearly resized to `size × size`
    /// — the paper's 28×28 → 200×200 interpolation step.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn resized(&self, size: usize) -> Dataset {
        Dataset {
            name: self.name.clone(),
            images: self
                .images
                .iter()
                .map(|img| bilinear_resize(img, size, size))
                .collect(),
            labels: self.labels.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_roundtrip_properties() {
        let d = Dataset::synthetic(Family::Emnist, 30, 5);
        assert_eq!(d.len(), 30);
        assert_eq!(d.num_classes(), 10);
        assert_eq!(d.name(), "emnist");
        assert_eq!(d.label(3), 3);
    }

    #[test]
    fn split_preserves_samples() {
        let d = Dataset::synthetic(Family::Mnist, 20, 1);
        let img5 = d.image(5).clone();
        let (train, test) = d.split(15);
        assert_eq!(train.len(), 15);
        assert_eq!(test.len(), 5);
        assert_eq!(train.image(5), &img5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degenerate_split_panics() {
        let d = Dataset::synthetic(Family::Mnist, 10, 1);
        let _ = d.split(10);
    }

    #[test]
    fn resized_matches_target_and_range() {
        let d = Dataset::synthetic(Family::Fmnist, 5, 2);
        let r = d.resized(64);
        assert_eq!(r.image(0).shape(), (64, 64));
        assert!(r.image(0).min() >= 0.0 && r.image(0).max() <= 1.0);
        assert_eq!(r.labels(), d.labels());
    }

    #[test]
    fn load_falls_back_to_synthetic() {
        let dir = std::env::temp_dir().join("photonn_missing_data_dir");
        std::fs::create_dir_all(&dir).unwrap();
        let d = Dataset::load_or_synthesize(Family::Mnist, &dir, 12, 3).unwrap();
        assert_eq!(d.len(), 12);
    }

    #[test]
    fn load_reads_real_idx_when_present() {
        let dir = std::env::temp_dir().join(format!("photonn_idx_dir_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let imgs: Vec<Grid> = (0..4).map(|i| Grid::full(28, 28, i as f64 / 4.0)).collect();
        let labels = vec![0usize, 1, 2, 3];
        idx::write_images(&dir.join("mnist-images-idx3-ubyte"), &imgs).unwrap();
        idx::write_labels(&dir.join("mnist-labels-idx1-ubyte"), &labels).unwrap();
        let d = Dataset::load_or_synthesize(Family::Mnist, &dir, 3, 0).unwrap();
        assert_eq!(d.len(), 3); // truncated to count
        assert_eq!(d.label(2), 2);
        std::fs::remove_dir_all(dir).ok();
    }
}
