//! Block partitioning of grids.
//!
//! Block sparsification (paper §III-C) and the intra-block smoothness
//! penalty (§III-D1) both view a phase mask as a tiling of equal-sized
//! blocks. This module owns that tiling logic so the two features and the
//! benchmarks agree on edge handling: when the mask size is not divisible by
//! the block size, trailing blocks are truncated at the grid boundary.

use crate::Grid;

/// One rectangular block of a partitioned grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Block {
    /// Block row index in the block grid.
    pub br: usize,
    /// Block column index in the block grid.
    pub bc: usize,
    /// First grid row covered.
    pub r0: usize,
    /// First grid column covered.
    pub c0: usize,
    /// Height in grid rows (may be truncated at the boundary).
    pub h: usize,
    /// Width in grid columns (may be truncated at the boundary).
    pub w: usize,
}

/// A tiling of a `rows × cols` grid into `bh × bw` blocks.
///
/// # Examples
///
/// ```
/// use photonn_math::block::BlockPartition;
///
/// let p = BlockPartition::new(6, 6, 2, 2);
/// assert_eq!(p.block_rows(), 3);
/// assert_eq!(p.blocks().count(), 9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockPartition {
    rows: usize,
    cols: usize,
    bh: usize,
    bw: usize,
}

impl BlockPartition {
    /// Creates a partition of a `rows × cols` grid into `bh × bw` blocks.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(rows: usize, cols: usize, bh: usize, bw: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be non-zero");
        assert!(bh > 0 && bw > 0, "block dimensions must be non-zero");
        BlockPartition { rows, cols, bh, bw }
    }

    /// Convenience constructor for square blocks on a square-friendly grid.
    pub fn square(rows: usize, cols: usize, block: usize) -> Self {
        Self::new(rows, cols, block, block)
    }

    /// Number of block rows (ceiling division).
    pub fn block_rows(&self) -> usize {
        self.rows.div_ceil(self.bh)
    }

    /// Number of block columns (ceiling division).
    pub fn block_cols(&self) -> usize {
        self.cols.div_ceil(self.bw)
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_rows() * self.block_cols()
    }

    /// Block height.
    pub fn block_height(&self) -> usize {
        self.bh
    }

    /// Block width.
    pub fn block_width(&self) -> usize {
        self.bw
    }

    /// Iterates over all blocks in row-major block order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + '_ {
        let (brs, bcs) = (self.block_rows(), self.block_cols());
        (0..brs).flat_map(move |br| {
            (0..bcs).map(move |bc| {
                let r0 = br * self.bh;
                let c0 = bc * self.bw;
                Block {
                    br,
                    bc,
                    r0,
                    c0,
                    h: self.bh.min(self.rows - r0),
                    w: self.bw.min(self.cols - c0),
                }
            })
        })
    }

    /// The block containing grid position `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is out of bounds.
    pub fn block_of(&self, r: usize, c: usize) -> Block {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        let br = r / self.bh;
        let bc = c / self.bw;
        let r0 = br * self.bh;
        let c0 = bc * self.bw;
        Block {
            br,
            bc,
            r0,
            c0,
            h: self.bh.min(self.rows - r0),
            w: self.bw.min(self.cols - c0),
        }
    }

    /// Gathers the values of `grid` inside `block` in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `grid` does not have the partition's shape.
    pub fn block_values(&self, grid: &Grid, block: Block) -> Vec<f64> {
        assert_eq!(
            grid.shape(),
            (self.rows, self.cols),
            "grid/partition shape mismatch"
        );
        let mut out = Vec::with_capacity(block.h * block.w);
        for r in block.r0..block.r0 + block.h {
            for c in block.c0..block.c0 + block.w {
                out.push(grid[(r, c)]);
            }
        }
        out
    }

    /// L2 norm of every block, in row-major block order. This is the
    /// magnitude score block sparsification ranks blocks by.
    pub fn block_l2_norms(&self, grid: &Grid) -> Vec<f64> {
        self.blocks()
            .map(|b| crate::stats::l2_norm(&self.block_values(grid, b)))
            .collect()
    }

    /// Population variance of every block, in row-major block order.
    pub fn block_variances(&self, grid: &Grid) -> Vec<f64> {
        self.blocks()
            .map(|b| crate::stats::variance(&self.block_values(grid, b)))
            .collect()
    }

    /// Unbiased sample variance (n−1) of every block — the convention of
    /// PyTorch's `torch.var` and of the paper's Fig. 4 "AvgVar" figures,
    /// used by the intra-block smoothness penalty (Eq. 8).
    pub fn block_sample_variances(&self, grid: &Grid) -> Vec<f64> {
        self.blocks()
            .map(|b| crate::stats::sample_variance(&self.block_values(grid, b)))
            .collect()
    }

    /// Sets every element of `grid` inside `block` to `value`.
    pub fn fill_block(&self, grid: &mut Grid, block: Block, value: f64) {
        for r in block.r0..block.r0 + block.h {
            for c in block.c0..block.c0 + block.w {
                grid[(r, c)] = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tiling() {
        let p = BlockPartition::new(6, 6, 2, 3);
        assert_eq!(p.block_rows(), 3);
        assert_eq!(p.block_cols(), 2);
        assert_eq!(p.num_blocks(), 6);
        let blocks: Vec<_> = p.blocks().collect();
        assert_eq!(blocks.len(), 6);
        assert!(blocks.iter().all(|b| b.h == 2 && b.w == 3));
    }

    #[test]
    fn truncated_tiling() {
        let p = BlockPartition::new(5, 5, 2, 2);
        assert_eq!(p.block_rows(), 3);
        let blocks: Vec<_> = p.blocks().collect();
        // Bottom-right block is 1x1.
        let last = blocks.last().unwrap();
        assert_eq!((last.h, last.w), (1, 1));
        // Coverage: sum of areas equals grid area.
        let area: usize = blocks.iter().map(|b| b.h * b.w).sum();
        assert_eq!(area, 25);
    }

    #[test]
    fn block_of_positions() {
        let p = BlockPartition::new(6, 6, 2, 2);
        let b = p.block_of(3, 5);
        assert_eq!((b.br, b.bc), (1, 2));
        assert_eq!((b.r0, b.c0), (2, 4));
    }

    #[test]
    fn block_values_row_major() {
        let g = Grid::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let p = BlockPartition::new(4, 4, 2, 2);
        let b = p.block_of(2, 2);
        assert_eq!(p.block_values(&g, b), vec![10.0, 11.0, 14.0, 15.0]);
    }

    #[test]
    fn block_norms_and_variances() {
        let g = Grid::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        let p = BlockPartition::new(2, 2, 1, 2);
        let norms = p.block_l2_norms(&g);
        assert!((norms[0] - 5.0).abs() < 1e-12);
        assert_eq!(norms[1], 0.0);
        let vars = p.block_variances(&g);
        assert!((vars[0] - 0.25).abs() < 1e-12);
        assert_eq!(vars[1], 0.0);
    }

    #[test]
    fn fill_block_fills_exactly() {
        let mut g = Grid::zeros(4, 4);
        let p = BlockPartition::new(4, 4, 2, 2);
        let b = p.block_of(0, 2);
        p.fill_block(&mut g, b, 7.0);
        assert_eq!(g[(0, 2)], 7.0);
        assert_eq!(g[(1, 3)], 7.0);
        assert_eq!(g[(0, 1)], 0.0);
        assert_eq!(g.sum(), 28.0);
    }
}
