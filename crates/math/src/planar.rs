//! Split-plane ("planar") kernels: complex fields as separate re/im `f64`
//! planes.
//!
//! The vectorized FFT engines in `photonn-fft` run their butterflies over
//! split real/imaginary planes instead of interleaved [`Complex64`]
//! buffers: every complex operation becomes shuffle-free elementwise `f64`
//! arithmetic over contiguous lanes, which the compiler autovectorizes to
//! full register width. This module collects the layout primitives those
//! engines (and any future planar kernel) share:
//!
//! * [`deinterleave`] / [`interleave`] — convert between interleaved
//!   [`Complex64`] storage and a split plane pair;
//! * [`transpose_plane`] — square plane transpose (the row pass of a 2-D
//!   transform runs as a column pass over transposed planes);
//! * [`hadamard_scale`] — fused elementwise complex product with a kernel
//!   plane pair plus a real scale (the frequency-domain transfer multiply
//!   with the `1/N` inverse-FFT normalization folded in);
//! * [`intensity`] — detector intensity `|z|² = re² + im²` straight from a
//!   plane pair.
//!
//! All functions are plain slices in, plain slices out — no allocation, so
//! per-worker scratch planes can be reused across samples and hops.
//!
//! Every arithmetic kernel here dispatches through the process-wide
//! [`crate::simd`] kernel table: explicit AVX2+FMA or NEON inner loops
//! when the CPU has them, the original scalar expression trees otherwise
//! (or when `PHOTONN_SIMD=off`). See that module for the exact numerical
//! contract (scalar-identical tails, ≤1 ulp FMA contraction). Every
//! kernel hard-asserts matching slice lengths before its inner loop, in
//! release builds too, so a length mismatch panics — it never goes out of
//! bounds.

use crate::{simd, Complex64};
use photonn_trace::Counter;

// Per-kernel dispatch counters (`simd.*` in the trace inventory): one
// increment per plane-op call, so a trace shows exactly how many times
// each kernel-table entry fired. Free when tracing is disabled.
static CTR_HADAMARD: Counter = Counter::new("simd.hadamard");
static CTR_HADAMARD_CONJ: Counter = Counter::new("simd.hadamard_conj");
static CTR_HADAMARD_SCALE: Counter = Counter::new("simd.hadamard_scale");
static CTR_ACC_MUL_CONJ: Counter = Counter::new("simd.acc_mul_conj");
static CTR_INTENSITY: Counter = Counter::new("simd.intensity");
static CTR_TRANSPOSE: Counter = Counter::new("simd.transpose");

/// Splits an interleaved complex buffer into separate re/im planes.
///
/// # Examples
///
/// ```
/// use photonn_math::{planar, Complex64};
///
/// let z = [Complex64::new(1.0, 2.0), Complex64::new(3.0, 4.0)];
/// let (mut re, mut im) = ([0.0; 2], [0.0; 2]);
/// planar::deinterleave(&z, &mut re, &mut im);
/// assert_eq!(re, [1.0, 3.0]);
/// assert_eq!(im, [2.0, 4.0]);
/// ```
pub fn deinterleave(data: &[Complex64], re: &mut [f64], im: &mut [f64]) {
    for ((z, r), i) in data.iter().zip(re.iter_mut()).zip(im.iter_mut()) {
        *r = z.re;
        *i = z.im;
    }
}

/// Recombines split re/im planes into an interleaved complex buffer — the
/// inverse of [`deinterleave`].
///
/// # Examples
///
/// ```
/// use photonn_math::{planar, Complex64};
///
/// let mut z = [Complex64::ZERO; 2];
/// planar::interleave(&[1.0, 3.0], &[2.0, 4.0], &mut z);
/// assert_eq!(z[1], Complex64::new(3.0, 4.0));
/// ```
pub fn interleave(re: &[f64], im: &[f64], data: &mut [Complex64]) {
    for ((z, &r), &i) in data.iter_mut().zip(re.iter()).zip(im.iter()) {
        *z = Complex64::new(r, i);
    }
}

/// Transposes one square row-major `n × n` plane into `dst`.
///
/// # Panics
///
/// Panics if either slice is not `n²` long.
///
/// # Examples
///
/// ```
/// use photonn_math::planar;
///
/// let src = [1.0, 2.0, 3.0, 4.0]; // [[1, 2], [3, 4]]
/// let mut dst = [0.0; 4];
/// planar::transpose_plane(&src, 2, &mut dst);
/// assert_eq!(dst, [1.0, 3.0, 2.0, 4.0]);
/// ```
pub fn transpose_plane(src: &[f64], n: usize, dst: &mut [f64]) {
    // Tiled (and micro-blocked on SIMD tables) to keep both the row-major
    // reads and the column-major writes inside one cache-resident block.
    // Pure data movement — bit-identical output on every kernel table.
    CTR_TRANSPOSE.add(1);
    (simd::active().transpose)(src, n, dst);
}

/// Planar elementwise complex product:
/// `(re + i·im) ← (re + i·im) · (kr + i·ki)`.
///
/// # Panics
///
/// Panics on any length mismatch.
///
/// # Examples
///
/// ```
/// use photonn_math::planar;
///
/// // (1 + 2i) · (0 + 1i) = (-2 + 1i)
/// let (mut re, mut im) = ([1.0], [2.0]);
/// planar::hadamard(&mut re, &mut im, &[0.0], &[1.0]);
/// assert_eq!((re[0], im[0]), (-2.0, 1.0));
/// ```
pub fn hadamard(re: &mut [f64], im: &mut [f64], kr: &[f64], ki: &[f64]) {
    CTR_HADAMARD.add(1);
    (simd::active().hadamard)(re, im, kr, ki);
}

/// Planar elementwise product with the *conjugate* of a kernel pair:
/// `(re + i·im) ← (re + i·im) · (kr − i·ki)` — the adjoint of
/// [`hadamard`], used by reverse-mode sweeps.
///
/// # Panics
///
/// Panics on any length mismatch.
///
/// # Examples
///
/// ```
/// use photonn_math::planar;
///
/// // (1 + 2i) · conj(0 + 1i) = (2 - 1i)
/// let (mut re, mut im) = ([1.0], [2.0]);
/// planar::hadamard_conj(&mut re, &mut im, &[0.0], &[1.0]);
/// assert_eq!((re[0], im[0]), (2.0, -1.0));
/// ```
pub fn hadamard_conj(re: &mut [f64], im: &mut [f64], kr: &[f64], ki: &[f64]) {
    CTR_HADAMARD_CONJ.add(1);
    (simd::active().hadamard_conj)(re, im, kr, ki);
}

/// Accumulates the conjugate product `out += g · conj(x)` over plane
/// pairs — the per-sample contribution to a broadcast mask's gradient
/// `Σ_b g_b ⊙ x̄_b` in the batched backward sweeps.
///
/// # Panics
///
/// Panics on any length mismatch.
///
/// # Examples
///
/// ```
/// use photonn_math::planar;
///
/// // (0 + 1i) · conj(1 + 2i) = (2 + 1i)
/// let (mut or, mut oi) = ([0.0], [0.0]);
/// planar::acc_mul_conj(&[0.0], &[1.0], &[1.0], &[2.0], &mut or, &mut oi);
/// assert_eq!((or[0], oi[0]), (2.0, 1.0));
/// ```
pub fn acc_mul_conj(
    gr: &[f64],
    gi: &[f64],
    xr: &[f64],
    xi: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    CTR_ACC_MUL_CONJ.add(1);
    (simd::active().acc_mul_conj)(gr, gi, xr, xi, out_re, out_im);
}

/// Fused planar Hadamard product with a real scale:
/// `(re + i·im) ← (re + i·im) · (kr + i·ki) · scale`, elementwise.
///
/// This is the frequency-domain transfer-function multiply of a
/// propagation hop with the inverse transform's `1/N` normalization folded
/// into the same pass (linearity lets the scale commute with the FFT).
///
/// # Panics
///
/// Panics on any length mismatch.
///
/// # Examples
///
/// ```
/// use photonn_math::planar;
///
/// // (1 + 2i) · (0 + 1i) · 2 = (-4 + 2i)
/// let (mut re, mut im) = ([1.0], [2.0]);
/// planar::hadamard_scale(&mut re, &mut im, &[0.0], &[1.0], 2.0);
/// assert_eq!((re[0], im[0]), (-4.0, 2.0));
/// ```
pub fn hadamard_scale(re: &mut [f64], im: &mut [f64], kr: &[f64], ki: &[f64], scale: f64) {
    CTR_HADAMARD_SCALE.add(1);
    (simd::active().hadamard_scale)(re, im, kr, ki, scale);
}

/// Detector intensity `|z|² = re² + im²` straight from a plane pair.
///
/// # Panics
///
/// Panics on any length mismatch.
///
/// # Examples
///
/// ```
/// use photonn_math::planar;
///
/// let mut out = [0.0];
/// planar::intensity(&[3.0], &[4.0], &mut out);
/// assert_eq!(out, [25.0]);
/// ```
pub fn intensity(re: &[f64], im: &[f64], out: &mut [f64]) {
    CTR_INTENSITY.add(1);
    (simd::active().intensity)(re, im, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CGrid;

    #[test]
    fn interleave_roundtrip() {
        let z: Vec<Complex64> = (0..12)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        deinterleave(&z, &mut re, &mut im);
        let mut back = vec![Complex64::ZERO; 12];
        interleave(&re, &im, &mut back);
        assert_eq!(z, back);
    }

    #[test]
    fn transpose_is_involution() {
        let n = 5;
        let src: Vec<f64> = (0..n * n).map(|i| i as f64 * 1.3).collect();
        let mut t = vec![0.0; n * n];
        let mut back = vec![0.0; n * n];
        transpose_plane(&src, n, &mut t);
        transpose_plane(&t, n, &mut back);
        assert_eq!(src, back);
        // Spot-check one off-diagonal element.
        assert_eq!(t[n + 3], src[3 * n + 1]);
    }

    #[test]
    fn hadamard_scale_matches_cgrid_hadamard() {
        let n = 4;
        let a = CGrid::from_fn(n, n, |r, c| Complex64::new(r as f64 + 0.5, c as f64 - 1.0));
        let k = CGrid::from_fn(n, n, |r, c| Complex64::cis((r * n + c) as f64 * 0.7));
        let scale = 0.37;
        let expected = a.hadamard(&k).map(|z| z.scale(scale));

        let mut re = vec![0.0; n * n];
        let mut im = vec![0.0; n * n];
        deinterleave(a.as_slice(), &mut re, &mut im);
        let mut kr = vec![0.0; n * n];
        let mut ki = vec![0.0; n * n];
        deinterleave(k.as_slice(), &mut kr, &mut ki);
        hadamard_scale(&mut re, &mut im, &kr, &ki, scale);
        let mut got = vec![Complex64::ZERO; n * n];
        interleave(&re, &im, &mut got);
        for (g, e) in got.iter().zip(expected.as_slice()) {
            assert!((*g - *e).norm() < 1e-15);
        }
    }

    #[test]
    fn hadamard_variants_match_cgrid() {
        let n = 4;
        let a = CGrid::from_fn(n, n, |r, c| Complex64::new(r as f64 - 1.5, c as f64 + 0.25));
        let k = CGrid::from_fn(n, n, |r, c| Complex64::cis((r * n + c) as f64 * 1.1));
        let mut re = vec![0.0; n * n];
        let mut im = vec![0.0; n * n];
        let mut kr = vec![0.0; n * n];
        let mut ki = vec![0.0; n * n];
        deinterleave(k.as_slice(), &mut kr, &mut ki);

        deinterleave(a.as_slice(), &mut re, &mut im);
        hadamard(&mut re, &mut im, &kr, &ki);
        let mut got = vec![Complex64::ZERO; n * n];
        interleave(&re, &im, &mut got);
        for (g, e) in got.iter().zip(a.hadamard(&k).as_slice()) {
            assert!((*g - *e).norm() < 1e-15);
        }

        deinterleave(a.as_slice(), &mut re, &mut im);
        hadamard_conj(&mut re, &mut im, &kr, &ki);
        interleave(&re, &im, &mut got);
        for (g, e) in got.iter().zip(a.hadamard(&k.conj()).as_slice()) {
            assert!((*g - *e).norm() < 1e-15);
        }
    }

    #[test]
    fn acc_mul_conj_accumulates() {
        let g = [Complex64::new(1.0, 2.0), Complex64::new(-0.5, 0.25)];
        let x = [Complex64::new(3.0, -1.0), Complex64::new(0.5, 4.0)];
        let (mut gr, mut gi) = ([0.0; 2], [0.0; 2]);
        let (mut xr, mut xi) = ([0.0; 2], [0.0; 2]);
        deinterleave(&g, &mut gr, &mut gi);
        deinterleave(&x, &mut xr, &mut xi);
        let (mut or, mut oi) = ([0.0; 2], [0.0; 2]);
        acc_mul_conj(&gr, &gi, &xr, &xi, &mut or, &mut oi);
        acc_mul_conj(&gr, &gi, &xr, &xi, &mut or, &mut oi);
        for i in 0..2 {
            let expect = g[i] * x[i].conj() * Complex64::from_real(2.0);
            assert!((Complex64::new(or[i], oi[i]) - expect).norm() < 1e-15);
        }
    }

    #[test]
    fn intensity_matches_norm_sqr() {
        let z: Vec<Complex64> = (0..9)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let mut re = vec![0.0; 9];
        let mut im = vec![0.0; 9];
        deinterleave(&z, &mut re, &mut im);
        let mut out = vec![0.0; 9];
        intensity(&re, &im, &mut out);
        for (o, z) in out.iter().zip(&z) {
            assert!((o - z.norm_sqr()).abs() < 1e-15);
        }
    }
}
