//! Dense row-major 2-D grid of `f64` values.
//!
//! [`Grid`] is the workhorse container for phase masks, intensity patterns
//! and gradients. Indexing is `(row, col)`; storage is row-major.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use photonn_math::Grid;
///
/// let mut g = Grid::zeros(2, 3);
/// g[(0, 1)] = 5.0;
/// assert_eq!(g.sum(), 5.0);
/// assert_eq!(g.shape(), (2, 3));
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Grid {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Grid {
    /// Creates a grid filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Grid {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a grid where every element is `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Grid {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a grid by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Grid { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Grid { rows, cols, data }
    }

    /// Builds a grid from nested slices; each inner slice is a row.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows in from_rows");
            data.extend_from_slice(row);
        }
        Grid {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the grid has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the grid, returning the row-major buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the element at `(r, c)`, or `None` when out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Returns the element at `(r, c)` treating out-of-bounds coordinates as
    /// zero-padding. Accepts signed coordinates; anything outside the grid
    /// reads as `0.0` (the boundary convention of the paper's roughness
    /// model).
    #[inline]
    pub fn get_zero_padded(&self, r: isize, c: isize) -> f64 {
        if r >= 0 && c >= 0 && (r as usize) < self.rows && (c as usize) < self.cols {
            self.data[r as usize * self.cols + c as usize]
        } else {
            0.0
        }
    }

    /// Applies `f` to every element, returning a new grid.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Grid {
        Grid {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two equally-shaped grids.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Grid, mut f: impl FnMut(f64, f64) -> f64) -> Grid {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in zip_map");
        Grid {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (`NaN` for an empty grid).
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Maximum element (`-inf` for an empty grid).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element (`+inf` for an empty grid).
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Index (row, col) of the maximum element. Ties resolve to the first.
    ///
    /// # Panics
    ///
    /// Panics on an empty grid.
    pub fn argmax(&self) -> (usize, usize) {
        assert!(!self.is_empty(), "argmax of empty grid");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        (best / self.cols, best % self.cols)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Scales all elements in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// `self += alpha * other`, the AXPY primitive used by the optimizers.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Grid) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        for (x, &y) in self.data.iter_mut().zip(&other.data) {
            *x += alpha * y;
        }
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, other: &Grid) -> Grid {
        self.zip_map(other, |a, b| a * b)
    }

    /// Extracts the rectangular sub-grid starting at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the grid bounds.
    pub fn submatrix(&self, r0: usize, c0: usize, h: usize, w: usize) -> Grid {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "window out of bounds"
        );
        Grid::from_fn(h, w, |r, c| self[(r0 + r, c0 + c)])
    }

    /// Writes `patch` into this grid with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the patch exceeds the grid bounds.
    pub fn paste(&mut self, r0: usize, c0: usize, patch: &Grid) {
        assert!(
            r0 + patch.rows <= self.rows && c0 + patch.cols <= self.cols,
            "patch out of bounds"
        );
        for r in 0..patch.rows {
            for c in 0..patch.cols {
                self[(r0 + r, c0 + c)] = patch[(r, c)];
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Grid {
        Grid::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Iterator over `(row, col, value)` in row-major order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / cols, i % cols, v))
    }

    /// Largest absolute difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Grid) -> f64 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Number of elements equal to exactly zero.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }
}

impl Index<(usize, usize)> for Grid {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Grid {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Grid> for &Grid {
    type Output = Grid;
    fn add(self, rhs: &Grid) -> Grid {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Grid> for &Grid {
    type Output = Grid;
    fn sub(self, rhs: &Grid) -> Grid {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f64> for &Grid {
    type Output = Grid;
    fn mul(self, rhs: f64) -> Grid {
        self.map(|x| x * rhs)
    }
}

impl Neg for &Grid {
    type Output = Grid;
    fn neg(self) -> Grid {
        self.map(|x| -x)
    }
}

impl AddAssign<&Grid> for Grid {
    fn add_assign(&mut self, rhs: &Grid) {
        self.axpy(1.0, rhs);
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:8.3}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_full_from_fn() {
        let z = Grid::zeros(2, 2);
        assert_eq!(z.sum(), 0.0);
        let f = Grid::full(2, 3, 1.5);
        assert_eq!(f.sum(), 9.0);
        let g = Grid::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(g[(1, 2)], 5.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        let _ = Grid::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn from_rows_builds_matrix() {
        let g = Grid::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(g[(0, 1)], 2.0);
        assert_eq!(g[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Grid::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn zero_padding_reads() {
        let g = Grid::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(g.get_zero_padded(-1, 0), 0.0);
        assert_eq!(g.get_zero_padded(0, 2), 0.0);
        assert_eq!(g.get_zero_padded(1, 1), 4.0);
    }

    #[test]
    fn reductions() {
        let g = Grid::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(g.sum(), 6.0);
        assert_eq!(g.mean(), 1.5);
        assert_eq!(g.max(), 4.0);
        assert_eq!(g.min(), -2.0);
        assert_eq!(g.argmax(), (1, 1));
        assert!((g.frobenius_norm() - 30.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn argmax_ties_first() {
        let g = Grid::from_rows(&[&[5.0, 5.0], &[1.0, 5.0]]);
        assert_eq!(g.argmax(), (0, 0));
    }

    #[test]
    fn axpy_and_ops() {
        let a = Grid::from_rows(&[&[1.0, 2.0]]);
        let b = Grid::from_rows(&[&[10.0, 20.0]]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c, Grid::from_rows(&[&[6.0, 12.0]]));
        assert_eq!(&a + &b, Grid::from_rows(&[&[11.0, 22.0]]));
        assert_eq!(&b - &a, Grid::from_rows(&[&[9.0, 18.0]]));
        assert_eq!(&a * 2.0, Grid::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(-&a, Grid::from_rows(&[&[-1.0, -2.0]]));
        assert_eq!(a.hadamard(&b), Grid::from_rows(&[&[10.0, 40.0]]));
    }

    #[test]
    fn submatrix_paste_roundtrip() {
        let g = Grid::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let sub = g.submatrix(1, 2, 2, 2);
        assert_eq!(sub, Grid::from_rows(&[&[6.0, 7.0], &[10.0, 11.0]]));
        let mut h = Grid::zeros(4, 4);
        h.paste(1, 2, &sub);
        assert_eq!(h[(2, 3)], 11.0);
        assert_eq!(h[(0, 0)], 0.0);
    }

    #[test]
    fn transpose_involution() {
        let g = Grid::from_fn(3, 5, |r, c| (r * 31 + c * 7) as f64);
        assert_eq!(g.transpose().transpose(), g);
        assert_eq!(g.transpose()[(4, 2)], g[(2, 4)]);
    }

    #[test]
    fn count_zeros_counts() {
        let g = Grid::from_rows(&[&[0.0, 1.0], &[0.0, 2.0]]);
        assert_eq!(g.count_zeros(), 2);
    }

    #[test]
    fn indexed_iter_order() {
        let g = Grid::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let items: Vec<_> = g.indexed_iter().collect();
        assert_eq!(items[1], (0, 1, 2.0));
        assert_eq!(items[2], (1, 0, 3.0));
    }
}
