//! Image resampling. The paper interpolates 28×28 dataset images up to the
//! 200×200 optical grid before encoding them on the laser source; this
//! module provides the bilinear kernel used for that step.

use crate::Grid;

/// Resamples `src` to `rows × cols` with bilinear interpolation.
///
/// Uses the half-pixel ("align corners = false") coordinate convention, the
/// same as `torch.nn.functional.interpolate(..., mode="bilinear")` with
/// default arguments, so upsampled images match the PyTorch pipeline the
/// paper used.
///
/// # Panics
///
/// Panics if `src` is empty or the target shape has a zero dimension.
///
/// # Examples
///
/// ```
/// use photonn_math::{Grid, interp::bilinear_resize};
///
/// let src = Grid::from_rows(&[&[0.0, 1.0], &[1.0, 2.0]]);
/// let up = bilinear_resize(&src, 4, 4);
/// assert_eq!(up.shape(), (4, 4));
/// // Interpolation never overshoots the input range.
/// assert!(up.min() >= 0.0 && up.max() <= 2.0);
/// ```
pub fn bilinear_resize(src: &Grid, rows: usize, cols: usize) -> Grid {
    assert!(!src.is_empty(), "cannot resize an empty grid");
    assert!(rows > 0 && cols > 0, "target shape must be non-zero");
    let (sr, sc) = src.shape();
    let scale_r = sr as f64 / rows as f64;
    let scale_c = sc as f64 / cols as f64;
    Grid::from_fn(rows, cols, |r, c| {
        // Half-pixel centers; clamp to the valid sample range.
        let fr = ((r as f64 + 0.5) * scale_r - 0.5).clamp(0.0, (sr - 1) as f64);
        let fc = ((c as f64 + 0.5) * scale_c - 0.5).clamp(0.0, (sc - 1) as f64);
        let r0 = fr.floor() as usize;
        let c0 = fc.floor() as usize;
        let r1 = (r0 + 1).min(sr - 1);
        let c1 = (c0 + 1).min(sc - 1);
        let wr = fr - r0 as f64;
        let wc = fc - c0 as f64;
        let top = src[(r0, c0)] * (1.0 - wc) + src[(r0, c1)] * wc;
        let bot = src[(r1, c0)] * (1.0 - wc) + src[(r1, c1)] * wc;
        top * (1.0 - wr) + bot * wr
    })
}

/// Nearest-neighbour resampling; useful for label masks and for the ablation
/// comparing encode interpolation kernels.
///
/// # Panics
///
/// Panics if `src` is empty or the target shape has a zero dimension.
pub fn nearest_resize(src: &Grid, rows: usize, cols: usize) -> Grid {
    assert!(!src.is_empty(), "cannot resize an empty grid");
    assert!(rows > 0 && cols > 0, "target shape must be non-zero");
    let (sr, sc) = src.shape();
    Grid::from_fn(rows, cols, |r, c| {
        let fr = (((r as f64 + 0.5) * sr as f64 / rows as f64) as usize).min(sr - 1);
        let fc = (((c as f64 + 0.5) * sc as f64 / cols as f64) as usize).min(sc - 1);
        src[(fr, fc)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_resize_is_identity() {
        let src = Grid::from_fn(5, 7, |r, c| (r * 7 + c) as f64);
        let out = bilinear_resize(&src, 5, 7);
        assert!(src.max_abs_diff(&out) < 1e-12);
    }

    #[test]
    fn constant_image_stays_constant() {
        let src = Grid::full(3, 3, 2.5);
        let up = bilinear_resize(&src, 16, 16);
        assert!(up.max_abs_diff(&Grid::full(16, 16, 2.5)) < 1e-12);
    }

    #[test]
    fn upsample_within_range() {
        let src = Grid::from_fn(4, 4, |r, c| ((r * 4 + c) % 3) as f64);
        let up = bilinear_resize(&src, 64, 64);
        assert!(up.min() >= src.min() - 1e-12);
        assert!(up.max() <= src.max() + 1e-12);
    }

    #[test]
    fn downsample_averages() {
        let src = Grid::from_rows(&[&[0.0, 2.0], &[2.0, 0.0]]);
        let down = bilinear_resize(&src, 1, 1);
        assert!((down[(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_preserves_values() {
        let src = Grid::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let up = nearest_resize(&src, 4, 4);
        // Every output value must be one of the input values.
        for &v in up.as_slice() {
            assert!([1.0, 2.0, 3.0, 4.0].contains(&v));
        }
        assert_eq!(up[(0, 0)], 1.0);
        assert_eq!(up[(3, 3)], 4.0);
    }

    #[test]
    fn gradient_is_monotone_after_upsample() {
        let src = Grid::from_fn(3, 1, |r, _| r as f64);
        let up = bilinear_resize(&src, 9, 1);
        for r in 1..9 {
            assert!(up[(r, 0)] >= up[(r - 1, 0)] - 1e-12);
        }
    }
}
