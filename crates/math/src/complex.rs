//! Double-precision complex arithmetic.
//!
//! The workspace deliberately avoids external numeric crates; this module
//! provides the small subset of complex arithmetic that scalar diffraction
//! simulation needs, with the conventions used throughout `photonn`:
//! the imaginary unit is [`Complex64::I`], `arg` is in `(-π, π]`, and
//! [`Complex64::from_polar`] takes `(magnitude, phase)`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use photonn_math::Complex64;
///
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!(z * Complex64::I, Complex64::new(-4.0, 3.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `(magnitude, phase)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use photonn_math::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-15);
    /// assert!((z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `exp(i·theta)` — a unit phasor. This is the phase-modulation primitive
    /// used by diffractive layers.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²` (optical intensity of a field sample).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase angle in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns NaN components when `z == 0`, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl From<(f64, f64)> for Complex64 {
    #[inline]
    fn from((re, im): (f64, f64)) -> Self {
        Complex64::new(re, im)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w == z·w⁻¹ is the definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < EPS
    }

    #[test]
    fn construction_and_accessors() {
        let z = Complex64::new(1.5, -2.5);
        assert_eq!(z.re, 1.5);
        assert_eq!(z.im, -2.5);
        assert_eq!(Complex64::from_real(3.0), Complex64::new(3.0, 0.0));
        assert_eq!(Complex64::from(2.0), Complex64::new(2.0, 0.0));
        assert_eq!(Complex64::from((1.0, 2.0)), Complex64::new(1.0, 2.0));
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(2.0, -3.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert!(close(z * z.inv(), Complex64::ONE));
        assert_eq!(-(-z), z);
        assert_eq!(z - z, Complex64::ZERO);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..100 {
            let theta = k as f64 * 0.17 - 8.0;
            assert!((Complex64::cis(theta).norm() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn conj_properties() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 0.25);
        assert!(close((a * b).conj(), a.conj() * b.conj()));
        assert!((a * a.conj()).im.abs() < EPS);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex64::new(0.3, 1.2);
        let e = z.exp();
        let expected = Complex64::from_polar(0.3f64.exp(), 1.2);
        assert!(close(e, expected));
    }

    #[test]
    fn division() {
        let a = Complex64::new(4.0, 2.0);
        let b = Complex64::new(1.0, -1.0);
        assert!(close(a / b * b, a));
        assert!(close(a / 2.0, Complex64::new(2.0, 1.0)));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::ONE;
        assert_eq!(z, Complex64::new(2.0, 1.0));
        z -= Complex64::I;
        assert_eq!(z, Complex64::new(2.0, 0.0));
        z *= Complex64::I;
        assert_eq!(z, Complex64::new(0.0, 2.0));
        z /= Complex64::new(0.0, 2.0);
        assert!(close(z, Complex64::ONE));
    }

    #[test]
    fn sum_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn norm_is_hypot_robust() {
        let z = Complex64::new(3e200, 4e200);
        assert!((z.norm() - 5e200).abs() / 5e200 < 1e-12);
    }
}
