//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace (mask initialization, dataset
//! jitter, batch shuffling, Gumbel noise for the 2π optimizer) draws from
//! this xoshiro256++ implementation rather than an external crate so that
//! experiment tables are bit-reproducible across machines and crate-version
//! bumps — the same reason EDA tools ship their own PRNGs.

/// xoshiro256++ PRNG seeded through SplitMix64.
///
/// Passes BigCrush per its authors (Blackman & Vigna, 2019); period 2²⁵⁶−1.
///
/// # Examples
///
/// ```
/// use photonn_math::Rng;
///
/// let mut rng = Rng::seed_from(42);
/// let x = rng.uniform();
/// assert!((0.0..1.0).contains(&x));
/// // Same seed, same stream:
/// assert_eq!(Rng::seed_from(42).uniform(), x);
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` by rejection-free Lemire reduction.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // 128-bit multiply-shift; bias is < 2^-64 per draw, negligible here.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal sample (Box–Muller; one value per call, no caching to
    /// keep the stream position deterministic regardless of call pattern).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Standard Gumbel(0, 1) sample — the reparameterization noise used by
    /// Gumbel-Softmax (Jang et al., 2016).
    pub fn gumbel(&mut self) -> f64 {
        let u = self.uniform().max(f64::MIN_POSITIVE);
        -(-u.ln()).ln()
    }

    /// Standard logistic sample, equal in distribution to the *difference*
    /// of two independent Gumbels — the natural noise for two-way
    /// Gumbel-Softmax (the binary Concrete distribution).
    pub fn logistic(&mut self) -> f64 {
        let u = self.uniform().clamp(f64::MIN_POSITIVE, 1.0 - 1e-16);
        (u / (1.0 - u)).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent generator (for per-thread or per-sample
    /// streams) by hashing a stream index into a fresh seed.
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::seed_from(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = Rng::seed_from(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = rng.below(10);
            assert!(k < 10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gumbel_mean_is_euler_gamma() {
        let mut rng = Rng::seed_from(13);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.gumbel()).sum::<f64>() / n as f64;
        // E[Gumbel(0,1)] = γ ≈ 0.5772
        assert!((mean - 0.5772).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn logistic_is_symmetric() {
        let mut rng = Rng::seed_from(17);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.logistic()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(5);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::seed_from(9);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
