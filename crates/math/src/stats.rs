//! Small statistics helpers used by sparsification thresholds and the
//! intra-block smoothness penalty.

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice so that
/// degenerate blocks contribute nothing to penalties.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`), matching the paper's per-block
/// variance in the intra-block smoothness penalty (Fig. 4).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (population convention, see [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Unbiased sample variance (divides by `n−1`) — PyTorch's `torch.var`
/// default, and the convention behind the paper's Fig. 4 "AvgVar" numbers.
/// Returns `0.0` for slices with fewer than two elements.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// The `q`-th percentile (0–100) by linear interpolation between closest
/// ranks, matching `numpy.percentile`'s default. Used to turn a
/// sparsification *ratio* into a magnitude *threshold*.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile q={q} outside [0,100]"
    );
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// L2 norm of a slice.
pub fn l2_norm(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(sample_variance(&[]), 0.0);
        assert_eq!(sample_variance(&[5.0]), 0.0);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let xs = [2.0, 4.0, 6.0, 8.0];
        // Population: 5.0; sample: 20/3.
        assert!((variance(&xs) - 5.0).abs() < 1e-12);
        assert!((sample_variance(&xs) - 20.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn variance_constant_is_zero() {
        assert_eq!(variance(&[3.0; 7]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn l2_norm_pythagorean() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(l2_norm(&[]), 0.0);
    }
}
