//! Dense row-major 2-D grid of [`Complex64`] values — the optical field type.

use crate::{Complex64, Grid};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of complex numbers, used for optical
/// wavefunctions and frequency-domain transfer functions.
///
/// # Examples
///
/// ```
/// use photonn_math::{CGrid, Complex64};
///
/// let field = CGrid::full(2, 2, Complex64::ONE);
/// assert_eq!(field.total_power(), 4.0);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct CGrid {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CGrid {
    /// Creates a complex grid of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CGrid {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates a grid where every element is `value`.
    pub fn full(rows: usize, cols: usize, value: Complex64) -> Self {
        CGrid {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a grid by evaluating `f(row, col)` everywhere.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        CGrid { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        CGrid { rows, cols, data }
    }

    /// Builds a complex field with the given real amplitude and zero phase.
    pub fn from_amplitude(amp: &Grid) -> Self {
        CGrid {
            rows: amp.rows(),
            cols: amp.cols(),
            data: amp
                .as_slice()
                .iter()
                .map(|&a| Complex64::from_real(a))
                .collect(),
        }
    }

    /// Builds a unit-amplitude field `exp(i·phase)` from a phase grid
    /// (radians) — the transmission function of a phase-only mask.
    pub fn from_phase(phase: &Grid) -> Self {
        CGrid {
            rows: phase.rows(),
            cols: phase.cols(),
            data: phase
                .as_slice()
                .iter()
                .map(|&p| Complex64::cis(p))
                .collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the grid has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the grid, returning the buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<Complex64> {
        self.data
    }

    /// Mutable access to one row (contiguous slice).
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [Complex64] {
        let w = self.cols;
        &mut self.data[r * w..(r + 1) * w]
    }

    /// Immutable access to one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[Complex64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Applies `f` elementwise, returning a new grid.
    pub fn map(&self, mut f: impl FnMut(Complex64) -> Complex64) -> CGrid {
        CGrid {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| f(z)).collect(),
        }
    }

    /// Elementwise (Hadamard) product — one phase-mask application.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, other: &CGrid) -> CGrid {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in hadamard");
        CGrid {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// In-place Hadamard product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard_inplace(&mut self, other: &CGrid) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in hadamard");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Elementwise conjugate.
    pub fn conj(&self) -> CGrid {
        self.map(Complex64::conj)
    }

    /// Scales all elements by a real factor in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for z in &mut self.data {
            *z = z.scale(s);
        }
    }

    /// Per-element intensity `|z|²` as a real grid (what a detector sees).
    pub fn intensity(&self) -> Grid {
        Grid::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|z| z.norm_sqr()).collect(),
        )
    }

    /// Per-element phase in `(-π, π]`.
    pub fn phase(&self) -> Grid {
        Grid::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|z| z.arg()).collect(),
        )
    }

    /// Per-element magnitude.
    pub fn amplitude(&self) -> Grid {
        Grid::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|z| z.norm()).collect(),
        )
    }

    /// Total optical power `Σ|z|²`.
    pub fn total_power(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> Complex64 {
        self.data.iter().copied().sum()
    }

    /// Largest elementwise distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &CGrid) -> f64 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max)
    }

    /// Embeds this grid centered in a larger zero grid (zero-padding for
    /// linear — as opposed to circular — convolution).
    ///
    /// # Panics
    ///
    /// Panics if the target is smaller than the source.
    pub fn pad_centered(&self, rows: usize, cols: usize) -> CGrid {
        assert!(
            rows >= self.rows && cols >= self.cols,
            "pad target too small"
        );
        let r0 = (rows - self.rows) / 2;
        let c0 = (cols - self.cols) / 2;
        let mut out = CGrid::zeros(rows, cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(r0 + r, c0 + c)] = self[(r, c)];
            }
        }
        out
    }

    /// Extracts the centered `rows × cols` window (inverse of
    /// [`CGrid::pad_centered`]).
    ///
    /// # Panics
    ///
    /// Panics if the window is larger than the grid.
    pub fn crop_centered(&self, rows: usize, cols: usize) -> CGrid {
        assert!(
            rows <= self.rows && cols <= self.cols,
            "crop window too large"
        );
        let r0 = (self.rows - rows) / 2;
        let c0 = (self.cols - cols) / 2;
        CGrid::from_fn(rows, cols, |r, c| self[(r0 + r, c0 + c)])
    }

    /// Transposed copy (used by the row-column 2-D FFT).
    pub fn transpose(&self) -> CGrid {
        CGrid::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }
}

impl Index<(usize, usize)> for CGrid {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CGrid {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for CGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_phase_roundtrip() {
        let phase = Grid::from_rows(&[&[0.0, 1.0], &[-1.0, 2.0]]);
        let field = CGrid::from_phase(&phase);
        let back = field.phase();
        assert!(phase.max_abs_diff(&back) < 1e-12);
        for z in field.as_slice() {
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn intensity_is_norm_sqr() {
        let f = CGrid::from_fn(2, 2, |r, c| Complex64::new(r as f64, c as f64));
        let i = f.intensity();
        assert_eq!(i[(1, 1)], 2.0);
        assert_eq!(i[(0, 0)], 0.0);
        assert_eq!(f.total_power(), i.sum());
    }

    #[test]
    fn hadamard_matches_manual() {
        let a = CGrid::full(1, 2, Complex64::new(1.0, 1.0));
        let b = CGrid::full(1, 2, Complex64::I);
        let c = a.hadamard(&b);
        assert_eq!(c[(0, 0)], Complex64::new(-1.0, 1.0));
        let mut d = a.clone();
        d.hadamard_inplace(&b);
        assert_eq!(c, d);
    }

    #[test]
    fn pad_crop_roundtrip() {
        let f = CGrid::from_fn(3, 3, |r, c| Complex64::new((r * 3 + c) as f64, 0.0));
        let padded = f.pad_centered(8, 8);
        assert_eq!(padded.total_power(), f.total_power());
        let cropped = padded.crop_centered(3, 3);
        assert_eq!(cropped, f);
    }

    #[test]
    fn pad_preserves_centering_parity() {
        // Odd into even and even into even both roundtrip.
        for n in [3usize, 4] {
            let f = CGrid::from_fn(n, n, |r, c| Complex64::new(1.0 + (r + c) as f64, -1.0));
            assert_eq!(f.pad_centered(10, 10).crop_centered(n, n), f);
        }
    }

    #[test]
    fn transpose_involution() {
        let f = CGrid::from_fn(2, 4, |r, c| Complex64::new(r as f64, c as f64));
        assert_eq!(f.transpose().transpose(), f);
    }

    #[test]
    fn from_amplitude_zero_phase() {
        let a = Grid::from_rows(&[&[2.0, 3.0]]);
        let f = CGrid::from_amplitude(&a);
        assert_eq!(f[(0, 1)], Complex64::new(3.0, 0.0));
    }

    #[test]
    fn conj_negates_phase() {
        let phase = Grid::from_rows(&[&[0.5, -0.25]]);
        let f = CGrid::from_phase(&phase);
        let neg = f.conj().phase();
        assert!((neg[(0, 0)] + 0.5).abs() < 1e-12);
        assert!((neg[(0, 1)] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn row_access() {
        let mut f = CGrid::zeros(2, 3);
        f.row_mut(1)[2] = Complex64::ONE;
        assert_eq!(f[(1, 2)], Complex64::ONE);
        assert_eq!(f.row(0).len(), 3);
    }
}
