//! Contiguous batched 2-D storage — the memory layout of the batched
//! propagation engine.
//!
//! A mini-batch of optical fields is stored **planar**: two `[batch, rows,
//! cols]` `f64` buffers, one holding every sample's real plane and one the
//! imaginary planes, both in sample-major order (sample `b` occupies the
//! contiguous range `b·rows·cols .. (b+1)·rows·cols` of each buffer,
//! itself row-major like [`CGrid`]). This is the native layout of the
//! vectorized FFT engines in `photonn-fft` — their butterflies are
//! elementwise `f64` arithmetic over whole plane rows — so a field stack
//! travels through every propagation hop without ever being reassembled
//! into interleaved complex samples. Disjoint per-sample plane slices let
//! FFT workers split a batch without locks, and one allocation pair serves
//! the whole batch.
//!
//! Interleaved [`Complex64`] views survive only at the API boundary:
//! [`BatchCGrid::from_samples`] / [`BatchCGrid::set_sample`] deinterleave
//! on the way in, [`BatchCGrid::to_cgrid`] interleaves on the way out.

use crate::planar;
use crate::{CGrid, Complex64, Grid};

/// A batch of same-shaped complex fields as split re/im plane stacks.
///
/// # Examples
///
/// ```
/// use photonn_math::{BatchCGrid, CGrid, Complex64};
///
/// let a = CGrid::full(2, 2, Complex64::ONE);
/// let b = CGrid::full(2, 2, Complex64::I);
/// let batch = BatchCGrid::from_samples(&[a.clone(), b.clone()]);
/// assert_eq!(batch.shape(), (2, 2, 2));
/// assert_eq!(batch.to_cgrid(1), b);
/// assert_eq!(batch.total_power(), 8.0);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct BatchCGrid {
    batch: usize,
    rows: usize,
    cols: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl BatchCGrid {
    /// Creates a zeroed batch.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(batch: usize, rows: usize, cols: usize) -> Self {
        assert!(batch > 0 && rows > 0 && cols > 0, "empty batch shape");
        BatchCGrid {
            batch,
            rows,
            cols,
            re: vec![0.0; batch * rows * cols],
            im: vec![0.0; batch * rows * cols],
        }
    }

    /// Builds a batch by evaluating `f(b, row, col)` everywhere.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn from_fn(
        batch: usize,
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize, usize) -> Complex64,
    ) -> Self {
        assert!(batch > 0 && rows > 0 && cols > 0, "empty batch shape");
        let mut re = Vec::with_capacity(batch * rows * cols);
        let mut im = Vec::with_capacity(batch * rows * cols);
        for b in 0..batch {
            for r in 0..rows {
                for c in 0..cols {
                    let z = f(b, r, c);
                    re.push(z.re);
                    im.push(z.im);
                }
            }
        }
        BatchCGrid {
            batch,
            rows,
            cols,
            re,
            im,
        }
    }

    /// Stacks same-shaped fields into one contiguous planar batch
    /// (deinterleaving each sample — one of the two conversion edges).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or the shapes differ.
    pub fn from_samples(samples: &[CGrid]) -> Self {
        assert!(!samples.is_empty(), "empty batch");
        let (rows, cols) = samples[0].shape();
        for s in samples {
            assert_eq!(s.shape(), (rows, cols), "sample shape mismatch in batch");
        }
        let mut out = BatchCGrid::zeros(samples.len(), rows, cols);
        for (b, s) in samples.iter().enumerate() {
            out.set_sample(b, s);
        }
        out
    }

    /// Number of samples in the batch.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Rows of each sample.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of each sample.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(batch, rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.batch, self.rows, self.cols)
    }

    /// Elements per sample (`rows · cols`).
    #[inline]
    pub fn sample_len(&self) -> usize {
        self.rows * self.cols
    }

    /// Total number of complex elements across the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// `true` if the batch holds no elements (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// The whole real and imaginary plane stacks, sample-major.
    #[inline]
    pub fn planes(&self) -> (&[f64], &[f64]) {
        (&self.re, &self.im)
    }

    /// Mutable access to both plane stacks, sample-major.
    #[inline]
    pub fn planes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }

    /// Row-major re/im planes of one sample.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[inline]
    pub fn sample_planes(&self, b: usize) -> (&[f64], &[f64]) {
        let n = self.sample_len();
        (&self.re[b * n..(b + 1) * n], &self.im[b * n..(b + 1) * n])
    }

    /// Mutable row-major re/im planes of one sample.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[inline]
    pub fn sample_planes_mut(&mut self, b: usize) -> (&mut [f64], &mut [f64]) {
        let n = self.sample_len();
        (
            &mut self.re[b * n..(b + 1) * n],
            &mut self.im[b * n..(b + 1) * n],
        )
    }

    /// Iterates over per-sample `(re, im)` plane pairs.
    pub fn samples(&self) -> impl Iterator<Item = (&[f64], &[f64])> {
        let n = self.sample_len();
        self.re.chunks(n).zip(self.im.chunks(n))
    }

    /// Iterates over mutable per-sample `(re, im)` plane pairs.
    pub fn samples_mut(&mut self) -> impl Iterator<Item = (&mut [f64], &mut [f64])> {
        let n = self.sample_len();
        self.re.chunks_mut(n).zip(self.im.chunks_mut(n))
    }

    /// One complex element (test/debug convenience; the hot paths go
    /// through the plane accessors).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[inline]
    pub fn get(&self, b: usize, r: usize, c: usize) -> Complex64 {
        assert!(b < self.batch && r < self.rows && c < self.cols);
        let i = b * self.sample_len() + r * self.cols + c;
        Complex64::new(self.re[i], self.im[i])
    }

    /// Copies sample `b` out as a standalone interleaved [`CGrid`] — one of
    /// the two conversion edges (detector readout / cache export).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn to_cgrid(&self, b: usize) -> CGrid {
        let (re, im) = self.sample_planes(b);
        let mut out = CGrid::zeros(self.rows, self.cols);
        planar::interleave(re, im, out.as_mut_slice());
        out
    }

    /// Overwrites sample `b` from an interleaved [`CGrid`] — the
    /// encode-side conversion edge (batch assembly from cached fields).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range or the shape differs.
    pub fn set_sample(&mut self, b: usize, sample: &CGrid) {
        assert_eq!(
            sample.shape(),
            (self.rows, self.cols),
            "sample shape mismatch"
        );
        let (re, im) = self.sample_planes_mut(b);
        planar::deinterleave(sample.as_slice(), re, im);
    }

    /// Multiplies every sample elementwise by one shared grid (broadcast
    /// Hadamard — a phase mask applied across the whole batch).
    ///
    /// # Panics
    ///
    /// Panics if `k` does not have the per-sample shape.
    pub fn hadamard_bcast_inplace(&mut self, k: &CGrid) {
        assert_eq!(
            k.shape(),
            (self.rows, self.cols),
            "broadcast shape mismatch"
        );
        // Deinterleave the mask once, then run the planar kernel per
        // sample: the broadcast multiply goes through the same SIMD table
        // as the fused frequency-domain path, so fused and unfused hops
        // stay bit-identical and the split cost amortizes over the batch.
        let len = k.as_slice().len();
        let mut kr = vec![0.0; len];
        let mut ki = vec![0.0; len];
        planar::deinterleave(k.as_slice(), &mut kr, &mut ki);
        for (re, im) in self.samples_mut() {
            planar::hadamard(re, im, &kr, &ki);
        }
    }

    /// Multiplies every sample elementwise by the *conjugate* of one shared
    /// grid — the adjoint of [`BatchCGrid::hadamard_bcast_inplace`], used
    /// by the backward sweeps of the broadcast-modulation tape ops.
    ///
    /// # Panics
    ///
    /// Panics if `k` does not have the per-sample shape.
    pub fn hadamard_bcast_conj_inplace(&mut self, k: &CGrid) {
        assert_eq!(
            k.shape(),
            (self.rows, self.cols),
            "broadcast shape mismatch"
        );
        // Same split-once-then-planar-kernel shape as the forward
        // broadcast; `hadamard_conj` computes the identical expression the
        // inline loop did (re·kr + im·ki, im·kr − re·ki).
        let len = k.as_slice().len();
        let mut kr = vec![0.0; len];
        let mut ki = vec![0.0; len];
        planar::deinterleave(k.as_slice(), &mut kr, &mut ki);
        for (re, im) in self.samples_mut() {
            planar::hadamard_conj(re, im, &kr, &ki);
        }
    }

    /// Elementwise product with a same-shaped batch, in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard_inplace(&mut self, other: &BatchCGrid) {
        assert_eq!(self.shape(), other.shape(), "batch shape mismatch");
        planar::hadamard(&mut self.re, &mut self.im, &other.re, &other.im);
    }

    /// Scales every element by a real factor in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.re {
            *v *= s;
        }
        for v in &mut self.im {
            *v *= s;
        }
    }

    /// Per-element intensity `|z|²` of every sample, straight from the
    /// planes.
    pub fn intensity(&self) -> BatchGrid {
        let mut data = vec![0.0; self.re.len()];
        planar::intensity(&self.re, &self.im, &mut data);
        BatchGrid {
            batch: self.batch,
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Total optical power `Σ|z|²` over the whole batch.
    pub fn total_power(&self) -> f64 {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(r, i)| r * r + i * i)
            .sum()
    }

    /// Zero-pads every sample centered into `rows × cols`.
    ///
    /// # Panics
    ///
    /// Panics if the target is smaller than the per-sample shape.
    pub fn pad_centered(&self, rows: usize, cols: usize) -> BatchCGrid {
        assert!(
            rows >= self.rows && cols >= self.cols,
            "pad target too small"
        );
        let r0 = (rows - self.rows) / 2;
        let c0 = (cols - self.cols) / 2;
        let mut out = BatchCGrid::zeros(self.batch, rows, cols);
        let dst_len = rows * cols;
        for (plane, dst_plane) in [(&self.re, &mut out.re), (&self.im, &mut out.im)] {
            for (src, dst) in plane
                .chunks(self.sample_len())
                .zip(dst_plane.chunks_mut(dst_len))
            {
                for r in 0..self.rows {
                    let src_row = &src[r * self.cols..(r + 1) * self.cols];
                    let d0 = (r0 + r) * cols + c0;
                    dst[d0..d0 + self.cols].copy_from_slice(src_row);
                }
            }
        }
        out
    }

    /// Extracts the centered `rows × cols` window of every sample.
    ///
    /// # Panics
    ///
    /// Panics if the window is larger than the per-sample shape.
    pub fn crop_centered(&self, rows: usize, cols: usize) -> BatchCGrid {
        assert!(
            rows <= self.rows && cols <= self.cols,
            "crop window too large"
        );
        let r0 = (self.rows - rows) / 2;
        let c0 = (self.cols - cols) / 2;
        let mut out = BatchCGrid::zeros(self.batch, rows, cols);
        let dst_len = rows * cols;
        for (plane, dst_plane) in [(&self.re, &mut out.re), (&self.im, &mut out.im)] {
            for (src, dst) in plane
                .chunks(self.sample_len())
                .zip(dst_plane.chunks_mut(dst_len))
            {
                for r in 0..rows {
                    let s0 = (r0 + r) * self.cols + c0;
                    dst[r * cols..(r + 1) * cols].copy_from_slice(&src[s0..s0 + cols]);
                }
            }
        }
        out
    }

    /// Largest elementwise distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &BatchCGrid) -> f64 {
        assert_eq!(self.shape(), other.shape(), "batch shape mismatch");
        self.re
            .iter()
            .zip(&self.im)
            .zip(other.re.iter().zip(&other.im))
            .map(|((ar, ai), (br, bi))| {
                let (dr, di) = (ar - br, ai - bi);
                (dr * dr + di * di).sqrt()
            })
            .fold(0.0, f64::max)
    }
}

/// A batch of same-shaped real grids in one contiguous buffer (batched
/// detector intensities, batched gradients).
///
/// # Examples
///
/// ```
/// use photonn_math::{BatchGrid, Grid};
///
/// let batch = BatchGrid::from_samples(&[Grid::full(2, 2, 1.0), Grid::full(2, 2, 3.0)]);
/// assert_eq!(batch.sample(1)[0], 3.0);
/// assert_eq!(batch.sum(), 16.0);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct BatchGrid {
    batch: usize,
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl BatchGrid {
    /// Creates a zeroed batch.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(batch: usize, rows: usize, cols: usize) -> Self {
        assert!(batch > 0 && rows > 0 && cols > 0, "empty batch shape");
        BatchGrid {
            batch,
            rows,
            cols,
            data: vec![0.0; batch * rows * cols],
        }
    }

    /// Stacks same-shaped grids into one contiguous batch.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or the shapes differ.
    pub fn from_samples(samples: &[Grid]) -> Self {
        assert!(!samples.is_empty(), "empty batch");
        let (rows, cols) = samples[0].shape();
        let mut data = Vec::with_capacity(samples.len() * rows * cols);
        for s in samples {
            assert_eq!(s.shape(), (rows, cols), "sample shape mismatch in batch");
            data.extend_from_slice(s.as_slice());
        }
        BatchGrid {
            batch: samples.len(),
            rows,
            cols,
            data,
        }
    }

    /// Number of samples in the batch.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Rows of each sample.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of each sample.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(batch, rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.batch, self.rows, self.cols)
    }

    /// Elements per sample (`rows · cols`).
    #[inline]
    pub fn sample_len(&self) -> usize {
        self.rows * self.cols
    }

    /// Total number of elements across the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the batch holds no elements (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The whole buffer, sample-major.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the whole buffer, sample-major.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row-major view of one sample.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[inline]
    pub fn sample(&self, b: usize) -> &[f64] {
        let n = self.sample_len();
        &self.data[b * n..(b + 1) * n]
    }

    /// Mutable row-major view of one sample.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[inline]
    pub fn sample_mut(&mut self, b: usize) -> &mut [f64] {
        let n = self.sample_len();
        &mut self.data[b * n..(b + 1) * n]
    }

    /// Iterates over per-sample row-major slices.
    pub fn samples(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.sample_len())
    }

    /// Copies sample `b` out as a standalone [`Grid`].
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn to_grid(&self, b: usize) -> Grid {
        Grid::from_vec(self.rows, self.cols, self.sample(b).to_vec())
    }

    /// Scales every element in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sum of all elements across the batch.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn numbered(batch: usize, n: usize) -> BatchCGrid {
        BatchCGrid::from_fn(batch, n, n, |b, r, c| {
            Complex64::new((b * n * n + r * n + c) as f64, -(b as f64))
        })
    }

    #[test]
    fn from_samples_roundtrips() {
        let a = CGrid::from_fn(3, 2, |r, c| Complex64::new(r as f64, c as f64));
        let b = a.map(|z| z * Complex64::I);
        let batch = BatchCGrid::from_samples(&[a.clone(), b.clone()]);
        assert_eq!(batch.shape(), (2, 3, 2));
        assert_eq!(batch.to_cgrid(0), a);
        assert_eq!(batch.to_cgrid(1), b);
    }

    #[test]
    fn interleaved_planar_interleaved_identity_property() {
        // Random interleaved samples → planar batch → interleaved must be
        // the identity bit-for-bit: the conversion edges copy, never
        // compute. Uses the in-tree PRNG over many shapes/seeds.
        for seed in 0..16u64 {
            let mut rng = Rng::seed_from(seed);
            let n = 1 + (seed as usize % 7) * 3;
            let batch = 1 + seed as usize % 5;
            let samples: Vec<CGrid> = (0..batch)
                .map(|_| {
                    CGrid::from_fn(n, n, |_, _| {
                        Complex64::new(rng.normal_with(0.0, 1.0), rng.normal_with(0.0, 1.0))
                    })
                })
                .collect();
            let planar = BatchCGrid::from_samples(&samples);
            for (b, s) in samples.iter().enumerate() {
                assert_eq!(&planar.to_cgrid(b), s, "seed {seed} sample {b}");
            }
        }
    }

    #[test]
    fn set_sample_matches_from_samples() {
        let a = CGrid::from_fn(4, 4, |r, c| Complex64::new(r as f64, -(c as f64)));
        let b = a.map(|z| z * Complex64::new(0.3, 0.7));
        let stacked = BatchCGrid::from_samples(&[a.clone(), b.clone()]);
        let mut assembled = BatchCGrid::zeros(2, 4, 4);
        assembled.set_sample(0, &a);
        assembled.set_sample(1, &b);
        assert_eq!(assembled, stacked);
    }

    #[test]
    #[should_panic(expected = "sample shape mismatch")]
    fn ragged_samples_panic() {
        let _ = BatchCGrid::from_samples(&[CGrid::zeros(2, 2), CGrid::zeros(3, 3)]);
    }

    #[test]
    fn broadcast_hadamard_matches_per_sample() {
        let mut batch = numbered(3, 4);
        let mask = CGrid::from_fn(4, 4, |r, c| Complex64::cis((r + 2 * c) as f64));
        let expected: Vec<CGrid> = (0..3).map(|b| batch.to_cgrid(b).hadamard(&mask)).collect();
        batch.hadamard_bcast_inplace(&mask);
        // ≤1 ulp relative vs the interleaved reference: the broadcast path
        // may run FMA-contracted kernels (see `crate::simd`).
        for (b, e) in expected.iter().enumerate() {
            assert!(batch.to_cgrid(b).max_abs_diff(e) < 1e-13);
        }
    }

    #[test]
    fn broadcast_conj_hadamard_matches_per_sample() {
        let mut batch = numbered(2, 4);
        let mask = CGrid::from_fn(4, 4, |r, c| Complex64::cis((2 * r + c) as f64));
        let expected: Vec<CGrid> = (0..2)
            .map(|b| batch.to_cgrid(b).hadamard(&mask.conj()))
            .collect();
        batch.hadamard_bcast_conj_inplace(&mask);
        // Same FMA-contraction allowance as the forward broadcast test.
        for (b, e) in expected.iter().enumerate() {
            assert!(batch.to_cgrid(b).max_abs_diff(e) < 1e-13);
        }
    }

    #[test]
    fn pad_crop_roundtrip_per_sample() {
        let batch = numbered(2, 3);
        let padded = batch.pad_centered(8, 8);
        assert_eq!(padded.shape(), (2, 8, 8));
        for b in 0..2 {
            assert_eq!(padded.to_cgrid(b), batch.to_cgrid(b).pad_centered(8, 8));
        }
        let back = padded.crop_centered(3, 3);
        assert_eq!(back, batch);
    }

    #[test]
    fn intensity_matches_per_sample() {
        let batch = numbered(2, 4);
        let i = batch.intensity();
        for b in 0..2 {
            assert_eq!(i.to_grid(b), batch.to_cgrid(b).intensity());
        }
        assert!((i.sum() - batch.total_power()).abs() < 1e-12);
    }

    #[test]
    fn sample_planes_are_disjoint_views() {
        let mut batch = BatchCGrid::zeros(2, 2, 2);
        batch.sample_planes_mut(1).0[3] = 1.0;
        let (re0, im0) = batch.sample_planes(0);
        assert!(re0.iter().chain(im0).all(|&v| v == 0.0));
        assert_eq!(batch.get(1, 1, 1), Complex64::ONE);
    }

    #[test]
    fn real_batch_basics() {
        let g = BatchGrid::from_samples(&[Grid::full(2, 3, 2.0), Grid::full(2, 3, 1.0)]);
        assert_eq!(g.shape(), (2, 2, 3));
        assert_eq!(g.sample_len(), 6);
        assert_eq!(g.sum(), 18.0);
        let mut h = g.clone();
        h.scale_inplace(0.5);
        assert_eq!(h.sum(), 9.0);
        assert_eq!(h.to_grid(0), Grid::full(2, 3, 1.0));
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = BatchCGrid::from_samples(&[]);
    }
}
