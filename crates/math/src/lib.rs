//! # photonn-math
//!
//! Numeric foundation for the `photonn` workspace — the from-scratch
//! reproduction of *Physics-aware Roughness Optimization for Diffractive
//! Optical Neural Networks* (DAC 2023).
//!
//! This crate deliberately re-implements the small numeric substrate the
//! paper's PyTorch stack provided for free:
//!
//! * [`Complex64`] — complex arithmetic for scalar optical fields;
//! * [`Grid`] / [`CGrid`] — dense row-major real/complex 2-D arrays;
//! * [`BatchGrid`] / [`BatchCGrid`] — contiguous `[batch, n, n]` stacks of
//!   the above, the storage of the batched propagation engine;
//! * [`planar`] — split re/im-plane kernels under the vectorized FFT
//!   engines (deinterleave, transpose, fused Hadamard·scale, intensity);
//! * [`simd`] — the runtime-dispatched kernel table (scalar / AVX2+FMA /
//!   NEON) behind every planar primitive and FFT butterfly inner loop;
//! * [`envswitch`] — the one parser for every `PHOTONN_*` environment
//!   kill switch (re-exported from `photonn-trace`, which sits below this
//!   crate so its own `PHOTONN_TRACE` switch can use it too);
//! * [`stats`] — means, variances, percentiles (sparsification thresholds);
//! * [`interp`] — bilinear resize (28×28 dataset images → optical grid);
//! * [`block`] — block partitioning shared by sparsification & smoothness;
//! * [`Rng`] — deterministic xoshiro256++ PRNG for reproducible tables.
//!
//! # Examples
//!
//! ```
//! use photonn_math::{CGrid, Complex64, Grid};
//!
//! // A phase-only mask is a real grid of radians...
//! let phase = Grid::from_fn(4, 4, |r, c| 0.1 * (r + c) as f64);
//! // ...whose transmission function is a unit-modulus complex field.
//! let mask = CGrid::from_phase(&phase);
//! assert!((mask.total_power() - 16.0).abs() < 1e-12);
//! ```

// `deny` rather than `forbid`: the SIMD kernel module is the one place in
// the workspace allowed to use `unsafe` (CPU intrinsics + in-bounds raw
// loads), and it opts in explicitly with a module-level `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod block;
mod cgrid;
mod complex;
mod grid;
pub mod interp;
pub mod planar;
mod rng;
pub mod simd;
pub mod stats;

pub use batch::{BatchCGrid, BatchGrid};
pub use cgrid::CGrid;
pub use complex::Complex64;
pub use grid::Grid;
pub use photonn_trace::envswitch;
pub use rng::Rng;

/// 2π — the period of phase modulation, central to the paper's §III-D2
/// smoothing trick (`exp(i(φ+2π)) = exp(iφ)`).
pub const TWO_PI: f64 = std::f64::consts::TAU;
