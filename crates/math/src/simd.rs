//! Runtime-dispatched SIMD kernel table for the planar hot path.
//!
//! Every planar primitive ([`crate::planar`]) and every Stockham butterfly
//! inner loop (`photonn-fft`'s vectorized mixed-radix engine) funnels
//! through one [`KernelTable`] of plain function pointers, selected **once
//! per process** by [`active`]:
//!
//! * **x86_64** — an AVX2+FMA table when `is_x86_feature_detected!`
//!   reports both features at startup (independent of compile-time
//!   `target-cpu` flags, so a portable binary still runs wide on capable
//!   hosts);
//! * **aarch64** — a NEON table unconditionally (NEON is a baseline
//!   feature of the target, no runtime probe needed);
//! * **anything else, or `PHOTONN_SIMD=off`** — the portable scalar
//!   table, whose kernels are the exact expression trees the pre-SIMD
//!   code used.
//!
//! The kill switch shares the workspace vocabulary ([`crate::envswitch`],
//! same as `PHOTONN_FFT_NO_VEC` and `PHOTONN_TRACE`): set `PHOTONN_SIMD`
//! to any falsy value (`off`/`0`/`false`/`no`, case-insensitive) to pin
//! the scalar table (read once, at first dispatch).
//!
//! # Numerical contract
//!
//! Each SIMD kernel is generated from the *same* generic element body as
//! its scalar fallback (see `Lanes`), with remainder tails that run the
//! scalar body verbatim — so tails are **bit-identical** to the scalar
//! table at every length, and the vector body differs only where the ISA
//! contracts a `mul` + `add`/`sub` pair into one fused-multiply-add
//! ([`KernelTable::fma`]). FMA keeps the intermediate product unrounded,
//! so affected lanes can differ from scalar by about one ulp (relative
//! ~1e-16, bounded well under 1e-15 for the unit-modulus fields the
//! optical stack propagates). [`transpose`](KernelTable::transpose) is
//! pure data movement and is bit-identical on every table. Kernels index
//! by element offset and use unaligned loads, so results never depend on
//! pointer alignment — batched planes and standalone planes agree
//! bit-for-bit.

#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Planar in-place complex multiply: `fn(re, im, kr, ki)`.
pub type HadamardFn = fn(&mut [f64], &mut [f64], &[f64], &[f64]);
/// Planar complex multiply with a folded real scale:
/// `fn(re, im, kr, ki, scale)`.
pub type HadamardScaleFn = fn(&mut [f64], &mut [f64], &[f64], &[f64], f64);
/// Accumulating conjugate product `out += g·conj(x)`:
/// `fn(gr, gi, xr, xi, out_re, out_im)`.
pub type AccMulConjFn = fn(&[f64], &[f64], &[f64], &[f64], &mut [f64], &mut [f64]);
/// Detector intensity `|z|²`: `fn(re, im, out)`.
pub type IntensityFn = fn(&[f64], &[f64], &mut [f64]);
/// Square plane transpose: `fn(src, n, dst)`.
pub type TransposeFn = fn(&[f64], usize, &mut [f64]);
/// Radix-2 Stockham butterfly over split-plane rows. Inputs/outputs are
/// re/im pairs in order `[x0r, x0i, x1r, x1i]`; the last argument is the
/// stage twiddle `ω^{j·1}` (already conjugated for inverse transforms).
pub type Radix2Fn = fn([&[f64]; 4], [&mut [f64]; 4], &[(f64, f64); 1]);
/// Radix-4 butterfly: pairs `[x0r, x0i, …, x3r, x3i]`, twiddles for
/// `s = 1..4`, and `sgn` = `1.0` forward / `-1.0` inverse (the `±i`
/// recombination sign).
pub type Radix4Fn = fn([&[f64]; 8], [&mut [f64]; 8], &[(f64, f64); 3], f64);
/// Radix-5 butterfly: pairs `[x0r, x0i, …, x4r, x4i]`, twiddles for
/// `s = 1..5`, and the forward/inverse sign.
pub type Radix5Fn = fn([&[f64]; 10], [&mut [f64]; 10], &[(f64, f64); 4], f64);
/// Radix-8 butterfly: pairs `[x0r, x0i, …, x7r, x7i]`, twiddles for
/// `s = 1..8`, and the forward/inverse sign.
pub type Radix8Fn = fn([&[f64]; 16], [&mut [f64]; 16], &[(f64, f64); 7], f64);

/// One complete kernel set. [`active`] picks a table at startup; callers
/// hold `&'static KernelTable` and invoke fields directly, so dispatch is
/// one indirect call per row-run, never per element.
pub struct KernelTable {
    /// Human-readable table name (`"scalar"`, `"avx2+fma"`, `"neon"`) —
    /// recorded by the benches as provenance.
    pub name: &'static str,
    /// Vector width in `f64` lanes (1 for scalar). Remainder tails start
    /// at `len - len % width` and run the scalar element body.
    pub width: usize,
    /// `true` if the vector body contracts multiply-add pairs into FMA —
    /// the only sanctioned deviation from the scalar table (≈1 ulp; see
    /// the module docs). Tables with `fma == false` are bit-identical to
    /// scalar everywhere.
    pub fma: bool,
    /// Elementwise complex multiply (see [`crate::planar::hadamard`]).
    pub hadamard: HadamardFn,
    /// Elementwise conjugate multiply ([`crate::planar::hadamard_conj`]).
    pub hadamard_conj: HadamardFn,
    /// Complex multiply with folded scale ([`crate::planar::hadamard_scale`]).
    pub hadamard_scale: HadamardScaleFn,
    /// Accumulating conjugate product ([`crate::planar::acc_mul_conj`]).
    pub acc_mul_conj: AccMulConjFn,
    /// Detector intensity ([`crate::planar::intensity`]).
    pub intensity: IntensityFn,
    /// Square plane transpose ([`crate::planar::transpose_plane`]).
    pub transpose: TransposeFn,
    /// Radix-2 butterfly inner loop.
    pub radix2: Radix2Fn,
    /// Radix-4 butterfly inner loop.
    pub radix4: Radix4Fn,
    /// Radix-5 butterfly inner loop.
    pub radix5: Radix5Fn,
    /// Radix-8 butterfly inner loop.
    pub radix8: Radix8Fn,
}

impl std::fmt::Debug for KernelTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelTable")
            .field("name", &self.name)
            .field("width", &self.width)
            .field("fma", &self.fma)
            .finish()
    }
}

/// The portable fallback table: exactly the expression trees the scalar
/// planar/butterfly code has always used, width 1, no FMA. Exposed so
/// property tests (and anything needing a reference result) can compare
/// any other table against it.
pub static SCALAR: KernelTable = KernelTable {
    name: "scalar",
    width: 1,
    fma: false,
    hadamard: d_hadamard::<f64>,
    hadamard_conj: d_hadamard_conj::<f64>,
    hadamard_scale: d_hadamard_scale::<f64>,
    acc_mul_conj: d_acc_mul_conj::<f64>,
    intensity: d_intensity::<f64>,
    transpose: transpose_scalar,
    radix2: d_radix2::<f64>,
    radix4: d_radix4::<f64>,
    radix5: d_radix5::<f64>,
    radix8: d_radix8::<f64>,
};

#[cfg(target_arch = "x86_64")]
static AVX2_FMA: KernelTable = KernelTable {
    name: "avx2+fma",
    width: 4,
    fma: true,
    hadamard: avx2::hadamard,
    hadamard_conj: avx2::hadamard_conj,
    hadamard_scale: avx2::hadamard_scale,
    acc_mul_conj: avx2::acc_mul_conj,
    intensity: avx2::intensity,
    transpose: avx2::transpose,
    radix2: avx2::radix2,
    radix4: avx2::radix4,
    radix5: avx2::radix5,
    radix8: avx2::radix8,
};

#[cfg(target_arch = "aarch64")]
static NEON: KernelTable = KernelTable {
    name: "neon",
    width: 2,
    fma: true,
    hadamard: neon::hadamard,
    hadamard_conj: neon::hadamard_conj,
    hadamard_scale: neon::hadamard_scale,
    acc_mul_conj: neon::acc_mul_conj,
    intensity: neon::intensity,
    transpose: neon::transpose,
    radix2: neon::radix2,
    radix4: neon::radix4,
    radix5: neon::radix5,
    radix8: neon::radix8,
};

/// The best table this CPU supports, ignoring `PHOTONN_SIMD`. Property
/// tests use this to exercise the SIMD kernels even when the environment
/// pins [`active`] to scalar.
pub fn detected() -> &'static KernelTable {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return &AVX2_FMA;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return &NEON;
    }
    #[allow(unreachable_code)]
    &SCALAR
}

/// The process-wide kernel table: [`detected`] unless `PHOTONN_SIMD` is
/// `off`/`0`/`false`, cached on first call. The env var is read exactly
/// once, so flipping it mid-process has no effect — same contract as
/// `PHOTONN_FFT_NO_VEC`.
pub fn active() -> &'static KernelTable {
    static ACTIVE: OnceLock<&'static KernelTable> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        // The shared switch vocabulary (crate::envswitch): falsy values
        // pin the scalar table; unset or anything else keeps SIMD on.
        if crate::envswitch::engaged("PHOTONN_SIMD", true) {
            detected()
        } else {
            &SCALAR
        }
    })
}

/// The CPU features relevant to kernel selection that this host actually
/// reports — provenance fields for the bench JSON, so a recorded number
/// can never be mistaken for one measured on a different ISA level.
pub fn cpu_features() -> Vec<&'static str> {
    let mut feats = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, have) in [
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
        ] {
            if have {
                feats.push(name);
            }
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        feats.push("neon");
    }
    feats
}

// ---------------------------------------------------------------------------
// Lane abstraction: one generic element body per kernel, instantiated for
// f64 (the scalar table and every remainder tail), AVX2 f64×4 and NEON
// f64×2. `mul_add`/`mul_sub`/`mul_neg_add` are the only operations whose
// SIMD instantiations fuse; their f64 instantiations are the plain
// two-rounding expressions, keeping the scalar table bit-identical to the
// pre-SIMD code.
// ---------------------------------------------------------------------------

trait Lanes: Copy {
    /// Lanes per vector.
    const WIDTH: usize;
    fn splat(x: f64) -> Self;
    fn add(self, o: Self) -> Self;
    fn sub(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;
    fn neg(self) -> Self;
    /// `a·b + c` — fused on SIMD tables, `(a*b) + c` on scalar.
    fn mul_add(a: Self, b: Self, c: Self) -> Self;
    /// `a·b − c` — fused on SIMD tables, `(a*b) - c` on scalar.
    fn mul_sub(a: Self, b: Self, c: Self) -> Self;
    /// `c − a·b` — fused on SIMD tables, `c - (a*b)` on scalar.
    fn mul_neg_add(a: Self, b: Self, c: Self) -> Self;
    /// # Safety
    /// `p..p+WIDTH` must be in bounds.
    unsafe fn load(p: *const f64) -> Self;
    /// # Safety
    /// `p..p+WIDTH` must be in bounds.
    unsafe fn store(self, p: *mut f64);
}

impl Lanes for f64 {
    const WIDTH: usize = 1;
    #[inline(always)]
    fn splat(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        self + o
    }
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        self - o
    }
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        self * o
    }
    #[inline(always)]
    fn neg(self) -> Self {
        -self
    }
    #[inline(always)]
    fn mul_add(a: Self, b: Self, c: Self) -> Self {
        a * b + c
    }
    #[inline(always)]
    fn mul_sub(a: Self, b: Self, c: Self) -> Self {
        a * b - c
    }
    #[inline(always)]
    fn mul_neg_add(a: Self, b: Self, c: Self) -> Self {
        c - a * b
    }
    #[inline(always)]
    unsafe fn load(p: *const f64) -> Self {
        unsafe { *p }
    }
    #[inline(always)]
    unsafe fn store(self, p: *mut f64) {
        unsafe { *p = self }
    }
}

/// Complex multiply `(ar + i·ai)·(br + i·bi)`:
/// `re = ar·br − ai·bi`, `im = ar·bi + ai·br`.
#[inline(always)]
fn cmul<S: Lanes>(ar: S, ai: S, br: S, bi: S) -> (S, S) {
    (
        S::mul_sub(ar, br, ai.mul(bi)),
        S::mul_add(ar, bi, ai.mul(br)),
    )
}

// --- planar element bodies -------------------------------------------------

#[inline(always)]
fn hadamard_conj_elem<S: Lanes>(zr: S, zi: S, kr: S, ki: S) -> (S, S) {
    // re = zr·kr + zi·ki, im = zi·kr − zr·ki  (multiply by conj(k)).
    (
        S::mul_add(zr, kr, zi.mul(ki)),
        S::mul_sub(zi, kr, zr.mul(ki)),
    )
}

// --- planar drivers --------------------------------------------------------
//
// Each driver runs the vector body over whole WIDTH-lane chunks and the
// f64 body over the remainder, indexing by element offset so the chunk
// boundary depends only on the slice length, never on alignment.
//
// Every driver hard-asserts (release builds included) that all slices
// share the first slice's length *before* entering its unsafe loop: the
// table's fn-pointer fields are `pub` and reachable from safe code, so a
// mismatched length must panic — exactly like the indexed scalar loops
// these kernels replaced — never read or write out of bounds.

#[inline(always)]
fn d_hadamard<S: Lanes>(re: &mut [f64], im: &mut [f64], kr: &[f64], ki: &[f64]) {
    let n = re.len();
    assert_eq!(im.len(), n);
    assert_eq!(kr.len(), n);
    assert_eq!(ki.len(), n);
    let mut i = 0;
    while i + S::WIDTH <= n {
        // SAFETY: i + WIDTH ≤ n on every slice checked above.
        unsafe {
            let zr = S::load(re.as_ptr().add(i));
            let zi = S::load(im.as_ptr().add(i));
            let a = S::load(kr.as_ptr().add(i));
            let b = S::load(ki.as_ptr().add(i));
            let (rr, ri) = cmul(zr, zi, a, b);
            rr.store(re.as_mut_ptr().add(i));
            ri.store(im.as_mut_ptr().add(i));
        }
        i += S::WIDTH;
    }
    while i < n {
        let (rr, ri) = cmul::<f64>(re[i], im[i], kr[i], ki[i]);
        re[i] = rr;
        im[i] = ri;
        i += 1;
    }
}

#[inline(always)]
fn d_hadamard_conj<S: Lanes>(re: &mut [f64], im: &mut [f64], kr: &[f64], ki: &[f64]) {
    let n = re.len();
    assert_eq!(im.len(), n);
    assert_eq!(kr.len(), n);
    assert_eq!(ki.len(), n);
    let mut i = 0;
    while i + S::WIDTH <= n {
        // SAFETY: i + WIDTH ≤ n on every slice checked above.
        unsafe {
            let zr = S::load(re.as_ptr().add(i));
            let zi = S::load(im.as_ptr().add(i));
            let a = S::load(kr.as_ptr().add(i));
            let b = S::load(ki.as_ptr().add(i));
            let (rr, ri) = hadamard_conj_elem(zr, zi, a, b);
            rr.store(re.as_mut_ptr().add(i));
            ri.store(im.as_mut_ptr().add(i));
        }
        i += S::WIDTH;
    }
    while i < n {
        let (rr, ri) = hadamard_conj_elem::<f64>(re[i], im[i], kr[i], ki[i]);
        re[i] = rr;
        im[i] = ri;
        i += 1;
    }
}

#[inline(always)]
fn d_hadamard_scale<S: Lanes>(re: &mut [f64], im: &mut [f64], kr: &[f64], ki: &[f64], scale: f64) {
    let n = re.len();
    assert_eq!(im.len(), n);
    assert_eq!(kr.len(), n);
    assert_eq!(ki.len(), n);
    let sv = S::splat(scale);
    let mut i = 0;
    while i + S::WIDTH <= n {
        // SAFETY: i + WIDTH ≤ n on every slice checked above.
        unsafe {
            let zr = S::load(re.as_ptr().add(i));
            let zi = S::load(im.as_ptr().add(i));
            let a = S::load(kr.as_ptr().add(i));
            let b = S::load(ki.as_ptr().add(i));
            let (rr, ri) = cmul(zr, zi, a, b);
            rr.mul(sv).store(re.as_mut_ptr().add(i));
            ri.mul(sv).store(im.as_mut_ptr().add(i));
        }
        i += S::WIDTH;
    }
    while i < n {
        let (rr, ri) = cmul::<f64>(re[i], im[i], kr[i], ki[i]);
        re[i] = rr * scale;
        im[i] = ri * scale;
        i += 1;
    }
}

#[inline(always)]
fn d_acc_mul_conj<S: Lanes>(
    gr: &[f64],
    gi: &[f64],
    xr: &[f64],
    xi: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    let n = gr.len();
    assert_eq!(gi.len(), n);
    assert_eq!(xr.len(), n);
    assert_eq!(xi.len(), n);
    assert_eq!(out_re.len(), n);
    assert_eq!(out_im.len(), n);
    let mut i = 0;
    while i + S::WIDTH <= n {
        // SAFETY: i + WIDTH ≤ n on every slice checked above.
        unsafe {
            let a = S::load(gr.as_ptr().add(i));
            let b = S::load(gi.as_ptr().add(i));
            let x = S::load(xr.as_ptr().add(i));
            let y = S::load(xi.as_ptr().add(i));
            let or = S::load(out_re.as_ptr().add(i));
            let oi = S::load(out_im.as_ptr().add(i));
            // out_re += gr·xr + gi·xi ; out_im += gi·xr − gr·xi.
            or.add(S::mul_add(a, x, b.mul(y)))
                .store(out_re.as_mut_ptr().add(i));
            oi.add(S::mul_sub(b, x, a.mul(y)))
                .store(out_im.as_mut_ptr().add(i));
        }
        i += S::WIDTH;
    }
    while i < n {
        out_re[i] += gr[i] * xr[i] + gi[i] * xi[i];
        out_im[i] += gi[i] * xr[i] - gr[i] * xi[i];
        i += 1;
    }
}

#[inline(always)]
fn d_intensity<S: Lanes>(re: &[f64], im: &[f64], out: &mut [f64]) {
    let n = re.len();
    assert_eq!(im.len(), n);
    assert_eq!(out.len(), n);
    let mut i = 0;
    while i + S::WIDTH <= n {
        // SAFETY: i + WIDTH ≤ n on every slice checked above.
        unsafe {
            let r = S::load(re.as_ptr().add(i));
            let m = S::load(im.as_ptr().add(i));
            S::mul_add(r, r, m.mul(m)).store(out.as_mut_ptr().add(i));
        }
        i += S::WIDTH;
    }
    while i < n {
        out[i] = re[i] * re[i] + im[i] * im[i];
        i += 1;
    }
}

/// Tiled scalar transpose — the exact loop `planar::transpose_plane` has
/// always run (pure data movement, bit-identical under any tiling).
fn transpose_scalar(src: &[f64], n: usize, dst: &mut [f64]) {
    assert_eq!(src.len(), n * n);
    assert_eq!(dst.len(), n * n);
    const TILE: usize = 32;
    for rb in (0..n).step_by(TILE) {
        let r_end = (rb + TILE).min(n);
        for cb in (0..n).step_by(TILE) {
            let c_end = (cb + TILE).min(n);
            for r in rb..r_end {
                let row = &src[r * n..(r + 1) * n];
                for c in cb..c_end {
                    dst[c * n + r] = row[c];
                }
            }
        }
    }
}

// --- butterfly bodies ------------------------------------------------------
//
// Direct transliterations of the Stockham stage inner loops in
// `photonn-fft::vecmixed`, one complex element (per lane) at a time.
// `sgn` carries the forward/inverse `±i` recombination sign the engine
// used to monomorphize; the stage twiddles arrive pre-conjugated.

#[inline(always)]
fn radix2_body<S: Lanes>(x: [S; 4], w1: (S, S)) -> [S; 4] {
    let [ar, ai, br, bi] = x;
    let (ur, ui) = (ar.sub(br), ai.sub(bi));
    let (y1r, y1i) = cmul(ur, ui, w1.0, w1.1);
    [ar.add(br), ai.add(bi), y1r, y1i]
}

#[inline(always)]
fn radix4_body<S: Lanes>(x: [S; 8], w: &[(S, S); 3], sgn: S) -> [S; 8] {
    let [x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i] = x;
    let (t0r, t0i) = (x0r.add(x2r), x0i.add(x2i));
    let (t1r, t1i) = (x0r.sub(x2r), x0i.sub(x2i));
    let (t2r, t2i) = (x1r.add(x3r), x1i.add(x3i));
    // t3 multiplied by ∓i (forward: -i): (r, i) ↦ ±(i, -r).
    let (t3r, t3i) = (sgn.mul(x1i.sub(x3i)), sgn.mul(x3r.sub(x1r)));
    let (y1r, y1i) = cmul(t1r.add(t3r), t1i.add(t3i), w[0].0, w[0].1);
    let (y2r, y2i) = cmul(t0r.sub(t2r), t0i.sub(t2i), w[1].0, w[1].1);
    let (y3r, y3i) = cmul(t1r.sub(t3r), t1i.sub(t3i), w[2].0, w[2].1);
    [t0r.add(t2r), t0i.add(t2i), y1r, y1i, y2r, y2i, y3r, y3i]
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn radix5_body<S: Lanes>(
    x: [S; 10],
    w: &[(S, S); 4],
    c1: S,
    s1: S,
    c2: S,
    s2: S,
    sgn: S,
) -> [S; 10] {
    let [x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i, x4r, x4i] = x;
    // Conjugate-pair sums/differences of the outer inputs.
    let (t1r, t1i) = (x1r.add(x4r), x1i.add(x4i));
    let (t2r, t2i) = (x2r.add(x3r), x2i.add(x3i));
    let (t3r, t3i) = (x1r.sub(x4r), x1i.sub(x4i));
    let (t4r, t4i) = (x2r.sub(x3r), x2i.sub(x3i));
    let (ar, ai) = (x0r, x0i);
    let y0r = ar.add(t1r).add(t2r);
    let y0i = ai.add(t1i).add(t2i);
    let m1r = S::mul_add(c2, t2r, S::mul_add(c1, t1r, ar));
    let m1i = S::mul_add(c2, t2i, S::mul_add(c1, t1i, ai));
    let m2r = S::mul_add(c1, t2r, S::mul_add(c2, t1r, ar));
    let m2i = S::mul_add(c1, t2i, S::mul_add(c2, t1i, ai));
    let m3r = S::mul_add(s1, t3r, s2.mul(t4r));
    let m3i = S::mul_add(s1, t3i, s2.mul(t4i));
    let m4r = S::mul_sub(s2, t3r, s1.mul(t4r));
    let m4i = S::mul_sub(s2, t3i, s1.mul(t4i));
    // d1/d4 = m1 ∓ i·m3, d2/d3 = m2 ∓ i·m4 (forward signs).
    let (d1r, d1i) = (S::mul_add(sgn, m3i, m1r), S::mul_neg_add(sgn, m3r, m1i));
    let (d4r, d4i) = (S::mul_neg_add(sgn, m3i, m1r), S::mul_add(sgn, m3r, m1i));
    let (d2r, d2i) = (S::mul_add(sgn, m4i, m2r), S::mul_neg_add(sgn, m4r, m2i));
    let (d3r, d3i) = (S::mul_neg_add(sgn, m4i, m2r), S::mul_add(sgn, m4r, m2i));
    let (y1r, y1i) = cmul(d1r, d1i, w[0].0, w[0].1);
    let (y2r, y2i) = cmul(d2r, d2i, w[1].0, w[1].1);
    let (y3r, y3i) = cmul(d3r, d3i, w[2].0, w[2].1);
    let (y4r, y4i) = cmul(d4r, d4i, w[3].0, w[3].1);
    [y0r, y0i, y1r, y1i, y2r, y2i, y3r, y3i, y4r, y4i]
}

#[inline(always)]
fn radix8_body<S: Lanes>(x: [S; 16], w: &[(S, S); 7], c: S, sgn: S) -> [S; 16] {
    let [x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i, x4r, x4i, x5r, x5i, x6r, x6i, x7r, x7i] = x;
    // 4-point DFT of the even inputs (x0, x2, x4, x6).
    let (t0r, t0i) = (x0r.add(x4r), x0i.add(x4i));
    let (t1r, t1i) = (x0r.sub(x4r), x0i.sub(x4i));
    let (t2r, t2i) = (x2r.add(x6r), x2i.add(x6i));
    let (t3r, t3i) = (sgn.mul(x2i.sub(x6i)), sgn.mul(x6r.sub(x2r)));
    let (e0r, e0i) = (t0r.add(t2r), t0i.add(t2i));
    let (e1r, e1i) = (t1r.add(t3r), t1i.add(t3i));
    let (e2r, e2i) = (t0r.sub(t2r), t0i.sub(t2i));
    let (e3r, e3i) = (t1r.sub(t3r), t1i.sub(t3i));
    // 4-point DFT of the odd inputs (x1, x3, x5, x7).
    let (u0r, u0i) = (x1r.add(x5r), x1i.add(x5i));
    let (u1r, u1i) = (x1r.sub(x5r), x1i.sub(x5i));
    let (u2r, u2i) = (x3r.add(x7r), x3i.add(x7i));
    let (u3r, u3i) = (sgn.mul(x3i.sub(x7i)), sgn.mul(x7r.sub(x3r)));
    let (o0r, o0i) = (u0r.add(u2r), u0i.add(u2i));
    let (o1r, o1i) = (u1r.add(u3r), u1i.add(u3i));
    let (o2r, o2i) = (u0r.sub(u2r), u0i.sub(u2i));
    let (o3r, o3i) = (u1r.sub(u3r), u1i.sub(u3i));
    // Rotate the odd outputs by ω₈^s (s = 0..3):
    // ω₈⁰ = 1, ω₈¹ = (1 ∓ i)/√2, ω₈² = ∓i, ω₈³ = −(1 ± i)/√2.
    let (v1r, v1i) = (
        c.mul(S::mul_add(sgn, o1i, o1r)),
        c.mul(S::mul_neg_add(sgn, o1r, o1i)),
    );
    let (v2r, v2i) = (sgn.mul(o2i), sgn.mul(o2r).neg());
    let (v3r, v3i) = (
        c.mul(S::mul_sub(sgn, o3i, o3r)),
        c.mul(S::mul_add(sgn, o3r, o3i)).neg(),
    );
    // Recombine, then apply the stage twiddles.
    let (y1r, y1i) = cmul(e1r.add(v1r), e1i.add(v1i), w[0].0, w[0].1);
    let (y2r, y2i) = cmul(e2r.add(v2r), e2i.add(v2i), w[1].0, w[1].1);
    let (y3r, y3i) = cmul(e3r.add(v3r), e3i.add(v3i), w[2].0, w[2].1);
    let (y4r, y4i) = cmul(e0r.sub(o0r), e0i.sub(o0i), w[3].0, w[3].1);
    let (y5r, y5i) = cmul(e1r.sub(v1r), e1i.sub(v1i), w[4].0, w[4].1);
    let (y6r, y6i) = cmul(e2r.sub(v2r), e2i.sub(v2i), w[5].0, w[5].1);
    let (y7r, y7i) = cmul(e3r.sub(v3r), e3i.sub(v3i), w[6].0, w[6].1);
    [
        e0r.add(o0r),
        e0i.add(o0i),
        y1r,
        y1i,
        y2r,
        y2i,
        y3r,
        y3i,
        y4r,
        y4i,
        y5r,
        y5i,
        y6r,
        y6i,
        y7r,
        y7i,
    ]
}

// --- butterfly drivers -----------------------------------------------------

#[inline(always)]
fn d_radix2<S: Lanes>(x: [&[f64]; 4], y: [&mut [f64]; 4], w: &[(f64, f64); 1]) {
    let [x0r, x0i, x1r, x1i] = x;
    let [y0r, y0i, y1r, y1i] = y;
    let n = x0r.len();
    assert!(
        [x0i, x1r, x1i].iter().all(|s| s.len() == n)
            && [&y0r, &y0i, &y1r, &y1i].iter().all(|s| s.len() == n)
    );
    let wv = (S::splat(w[0].0), S::splat(w[0].1));
    let mut i = 0;
    while i + S::WIDTH <= n {
        // SAFETY: i + WIDTH ≤ n on every slice checked above.
        unsafe {
            let xv = [
                S::load(x0r.as_ptr().add(i)),
                S::load(x0i.as_ptr().add(i)),
                S::load(x1r.as_ptr().add(i)),
                S::load(x1i.as_ptr().add(i)),
            ];
            let o = radix2_body(xv, wv);
            o[0].store(y0r.as_mut_ptr().add(i));
            o[1].store(y0i.as_mut_ptr().add(i));
            o[2].store(y1r.as_mut_ptr().add(i));
            o[3].store(y1i.as_mut_ptr().add(i));
        }
        i += S::WIDTH;
    }
    while i < n {
        let o = radix2_body::<f64>([x0r[i], x0i[i], x1r[i], x1i[i]], w[0]);
        y0r[i] = o[0];
        y0i[i] = o[1];
        y1r[i] = o[2];
        y1i[i] = o[3];
        i += 1;
    }
}

#[inline(always)]
fn d_radix4<S: Lanes>(x: [&[f64]; 8], y: [&mut [f64]; 8], w: &[(f64, f64); 3], sgn: f64) {
    let [x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i] = x;
    let [y0r, y0i, y1r, y1i, y2r, y2i, y3r, y3i] = y;
    let n = x0r.len();
    assert!([x0i, x1r, x1i, x2r, x2i, x3r, x3i]
        .iter()
        .all(|s| s.len() == n));
    assert!([&y0r, &y0i, &y1r, &y1i, &y2r, &y2i, &y3r, &y3i]
        .iter()
        .all(|s| s.len() == n));
    let sv = S::splat(sgn);
    let wv = [
        (S::splat(w[0].0), S::splat(w[0].1)),
        (S::splat(w[1].0), S::splat(w[1].1)),
        (S::splat(w[2].0), S::splat(w[2].1)),
    ];
    let mut i = 0;
    while i + S::WIDTH <= n {
        // SAFETY: i + WIDTH ≤ n on every slice checked above.
        unsafe {
            let xv = [
                S::load(x0r.as_ptr().add(i)),
                S::load(x0i.as_ptr().add(i)),
                S::load(x1r.as_ptr().add(i)),
                S::load(x1i.as_ptr().add(i)),
                S::load(x2r.as_ptr().add(i)),
                S::load(x2i.as_ptr().add(i)),
                S::load(x3r.as_ptr().add(i)),
                S::load(x3i.as_ptr().add(i)),
            ];
            let o = radix4_body(xv, &wv, sv);
            o[0].store(y0r.as_mut_ptr().add(i));
            o[1].store(y0i.as_mut_ptr().add(i));
            o[2].store(y1r.as_mut_ptr().add(i));
            o[3].store(y1i.as_mut_ptr().add(i));
            o[4].store(y2r.as_mut_ptr().add(i));
            o[5].store(y2i.as_mut_ptr().add(i));
            o[6].store(y3r.as_mut_ptr().add(i));
            o[7].store(y3i.as_mut_ptr().add(i));
        }
        i += S::WIDTH;
    }
    let ws = [(w[0].0, w[0].1), (w[1].0, w[1].1), (w[2].0, w[2].1)];
    while i < n {
        let o = radix4_body::<f64>(
            [
                x0r[i], x0i[i], x1r[i], x1i[i], x2r[i], x2i[i], x3r[i], x3i[i],
            ],
            &ws,
            sgn,
        );
        y0r[i] = o[0];
        y0i[i] = o[1];
        y1r[i] = o[2];
        y1i[i] = o[3];
        y2r[i] = o[4];
        y2i[i] = o[5];
        y3r[i] = o[6];
        y3i[i] = o[7];
        i += 1;
    }
}

/// `[cos, sin]` of 2π/5 and 4π/5 for the radix-5 butterfly, computed once
/// per process. The kernel fires once per j-group per strip, so per-call
/// libm would be hot-path work; the values are not const-evaluable, and
/// spelling them as literals could drift from this platform's libm (the
/// scalar stage has always obtained them through these calls).
fn radix5_trig() -> &'static [f64; 4] {
    static TRIG: OnceLock<[f64; 4]> = OnceLock::new();
    TRIG.get_or_init(|| {
        let th = 2.0 * std::f64::consts::PI / 5.0;
        [th.cos(), th.sin(), (2.0 * th).cos(), (2.0 * th).sin()]
    })
}

#[inline(always)]
fn d_radix5<S: Lanes>(x: [&[f64]; 10], y: [&mut [f64]; 10], w: &[(f64, f64); 4], sgn: f64) {
    let [x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i, x4r, x4i] = x;
    let [y0r, y0i, y1r, y1i, y2r, y2i, y3r, y3i, y4r, y4i] = y;
    let n = x0r.len();
    assert!([x0i, x1r, x1i, x2r, x2i, x3r, x3i, x4r, x4i]
        .iter()
        .all(|s| s.len() == n));
    assert!([&y0r, &y0i, &y1r, &y1i, &y2r, &y2i, &y3r, &y3i, &y4r, &y4i]
        .iter()
        .all(|s| s.len() == n));
    // 5-point DFT via the conjugate-pair split — same constants (and the
    // same libm calls) as the scalar stage has always used, computed once
    // per process (see `radix5_trig`).
    let &[c1, s1, c2, s2] = radix5_trig();
    let (c1v, s1v) = (S::splat(c1), S::splat(s1));
    let (c2v, s2v) = (S::splat(c2), S::splat(s2));
    let sv = S::splat(sgn);
    let wv = [
        (S::splat(w[0].0), S::splat(w[0].1)),
        (S::splat(w[1].0), S::splat(w[1].1)),
        (S::splat(w[2].0), S::splat(w[2].1)),
        (S::splat(w[3].0), S::splat(w[3].1)),
    ];
    let mut i = 0;
    while i + S::WIDTH <= n {
        // SAFETY: i + WIDTH ≤ n on every slice checked above.
        unsafe {
            let xv = [
                S::load(x0r.as_ptr().add(i)),
                S::load(x0i.as_ptr().add(i)),
                S::load(x1r.as_ptr().add(i)),
                S::load(x1i.as_ptr().add(i)),
                S::load(x2r.as_ptr().add(i)),
                S::load(x2i.as_ptr().add(i)),
                S::load(x3r.as_ptr().add(i)),
                S::load(x3i.as_ptr().add(i)),
                S::load(x4r.as_ptr().add(i)),
                S::load(x4i.as_ptr().add(i)),
            ];
            let o = radix5_body(xv, &wv, c1v, s1v, c2v, s2v, sv);
            o[0].store(y0r.as_mut_ptr().add(i));
            o[1].store(y0i.as_mut_ptr().add(i));
            o[2].store(y1r.as_mut_ptr().add(i));
            o[3].store(y1i.as_mut_ptr().add(i));
            o[4].store(y2r.as_mut_ptr().add(i));
            o[5].store(y2i.as_mut_ptr().add(i));
            o[6].store(y3r.as_mut_ptr().add(i));
            o[7].store(y3i.as_mut_ptr().add(i));
            o[8].store(y4r.as_mut_ptr().add(i));
            o[9].store(y4i.as_mut_ptr().add(i));
        }
        i += S::WIDTH;
    }
    while i < n {
        let o = radix5_body::<f64>(
            [
                x0r[i], x0i[i], x1r[i], x1i[i], x2r[i], x2i[i], x3r[i], x3i[i], x4r[i], x4i[i],
            ],
            w,
            c1,
            s1,
            c2,
            s2,
            sgn,
        );
        y0r[i] = o[0];
        y0i[i] = o[1];
        y1r[i] = o[2];
        y1i[i] = o[3];
        y2r[i] = o[4];
        y2i[i] = o[5];
        y3r[i] = o[6];
        y3i[i] = o[7];
        y4r[i] = o[8];
        y4i[i] = o[9];
        i += 1;
    }
}

#[inline(always)]
fn d_radix8<S: Lanes>(x: [&[f64]; 16], y: [&mut [f64]; 16], w: &[(f64, f64); 7], sgn: f64) {
    let [x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i, x4r, x4i, x5r, x5i, x6r, x6i, x7r, x7i] = x;
    let [y0r, y0i, y1r, y1i, y2r, y2i, y3r, y3i, y4r, y4i, y5r, y5i, y6r, y6i, y7r, y7i] = y;
    let n = x0r.len();
    assert!(
        [x0i, x1r, x1i, x2r, x2i, x3r, x3i, x4r, x4i, x5r, x5i, x6r, x6i, x7r, x7i]
            .iter()
            .all(|s| s.len() == n)
    );
    assert!([
        &y0r, &y0i, &y1r, &y1i, &y2r, &y2i, &y3r, &y3i, &y4r, &y4i, &y5r, &y5i, &y6r, &y6i, &y7r,
        &y7i
    ]
    .iter()
    .all(|s| s.len() == n));
    let c = std::f64::consts::FRAC_1_SQRT_2;
    let cv = S::splat(c);
    let sv = S::splat(sgn);
    let wv = [
        (S::splat(w[0].0), S::splat(w[0].1)),
        (S::splat(w[1].0), S::splat(w[1].1)),
        (S::splat(w[2].0), S::splat(w[2].1)),
        (S::splat(w[3].0), S::splat(w[3].1)),
        (S::splat(w[4].0), S::splat(w[4].1)),
        (S::splat(w[5].0), S::splat(w[5].1)),
        (S::splat(w[6].0), S::splat(w[6].1)),
    ];
    let mut i = 0;
    while i + S::WIDTH <= n {
        // SAFETY: i + WIDTH ≤ n on every slice checked above.
        unsafe {
            let xv = [
                S::load(x0r.as_ptr().add(i)),
                S::load(x0i.as_ptr().add(i)),
                S::load(x1r.as_ptr().add(i)),
                S::load(x1i.as_ptr().add(i)),
                S::load(x2r.as_ptr().add(i)),
                S::load(x2i.as_ptr().add(i)),
                S::load(x3r.as_ptr().add(i)),
                S::load(x3i.as_ptr().add(i)),
                S::load(x4r.as_ptr().add(i)),
                S::load(x4i.as_ptr().add(i)),
                S::load(x5r.as_ptr().add(i)),
                S::load(x5i.as_ptr().add(i)),
                S::load(x6r.as_ptr().add(i)),
                S::load(x6i.as_ptr().add(i)),
                S::load(x7r.as_ptr().add(i)),
                S::load(x7i.as_ptr().add(i)),
            ];
            let o = radix8_body(xv, &wv, cv, sv);
            o[0].store(y0r.as_mut_ptr().add(i));
            o[1].store(y0i.as_mut_ptr().add(i));
            o[2].store(y1r.as_mut_ptr().add(i));
            o[3].store(y1i.as_mut_ptr().add(i));
            o[4].store(y2r.as_mut_ptr().add(i));
            o[5].store(y2i.as_mut_ptr().add(i));
            o[6].store(y3r.as_mut_ptr().add(i));
            o[7].store(y3i.as_mut_ptr().add(i));
            o[8].store(y4r.as_mut_ptr().add(i));
            o[9].store(y4i.as_mut_ptr().add(i));
            o[10].store(y5r.as_mut_ptr().add(i));
            o[11].store(y5i.as_mut_ptr().add(i));
            o[12].store(y6r.as_mut_ptr().add(i));
            o[13].store(y6i.as_mut_ptr().add(i));
            o[14].store(y7r.as_mut_ptr().add(i));
            o[15].store(y7i.as_mut_ptr().add(i));
        }
        i += S::WIDTH;
    }
    while i < n {
        let o = radix8_body::<f64>(
            [
                x0r[i], x0i[i], x1r[i], x1i[i], x2r[i], x2i[i], x3r[i], x3i[i], x4r[i], x4i[i],
                x5r[i], x5i[i], x6r[i], x6i[i], x7r[i], x7i[i],
            ],
            w,
            c,
            sgn,
        );
        y0r[i] = o[0];
        y0i[i] = o[1];
        y1r[i] = o[2];
        y1i[i] = o[3];
        y2r[i] = o[4];
        y2i[i] = o[5];
        y3r[i] = o[6];
        y3i[i] = o[7];
        y4r[i] = o[8];
        y4i[i] = o[9];
        y5r[i] = o[10];
        y5i[i] = o[11];
        y6r[i] = o[12];
        y6i[i] = o[13];
        y7r[i] = o[14];
        y7i[i] = o[15];
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// AVX2+FMA table (x86_64). Entry points are thin safe wrappers over
// `#[target_feature(enable = "avx2,fma")]` shims; the generic drivers and
// the `V4` lane methods are `#[inline(always)]`, so the whole loop body
// collapses into the feature-enabled shim and the intrinsics compile to
// bare instructions, not calls.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{
        d_acc_mul_conj, d_hadamard, d_hadamard_conj, d_hadamard_scale, d_intensity, d_radix2,
        d_radix4, d_radix5, d_radix8, Lanes,
    };
    use std::arch::x86_64::*;

    #[derive(Clone, Copy)]
    pub(super) struct V4(__m256d);

    impl Lanes for V4 {
        const WIDTH: usize = 4;
        #[inline(always)]
        fn splat(x: f64) -> Self {
            // SAFETY: callers of every V4 code path hold the avx2+fma
            // detection invariant documented on the wrappers below.
            V4(unsafe { _mm256_set1_pd(x) })
        }
        #[inline(always)]
        fn add(self, o: Self) -> Self {
            V4(unsafe { _mm256_add_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            V4(unsafe { _mm256_sub_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            V4(unsafe { _mm256_mul_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn neg(self) -> Self {
            // XOR with the sign mask — an exact sign flip, like scalar `-x`
            // (a subtraction from zero would mishandle -0.0).
            V4(unsafe { _mm256_xor_pd(self.0, _mm256_set1_pd(-0.0)) })
        }
        #[inline(always)]
        fn mul_add(a: Self, b: Self, c: Self) -> Self {
            V4(unsafe { _mm256_fmadd_pd(a.0, b.0, c.0) })
        }
        #[inline(always)]
        fn mul_sub(a: Self, b: Self, c: Self) -> Self {
            V4(unsafe { _mm256_fmsub_pd(a.0, b.0, c.0) })
        }
        #[inline(always)]
        fn mul_neg_add(a: Self, b: Self, c: Self) -> Self {
            V4(unsafe { _mm256_fnmadd_pd(a.0, b.0, c.0) })
        }
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            // Unaligned load: lane placement must not depend on pointer
            // alignment (see the module's numerical contract).
            V4(unsafe { _mm256_loadu_pd(p) })
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            unsafe { _mm256_storeu_pd(p, self.0) }
        }
    }

    /// Declares the `#[target_feature]` shim plus the plain-`fn` wrapper
    /// that the AVX2 table stores.
    macro_rules! avx2_kernel {
        ($wrapper:ident, $shim:ident, $driver:ident, ($($a:ident: $t:ty),*)) => {
            #[target_feature(enable = "avx2", enable = "fma")]
            unsafe fn $shim($($a: $t),*) {
                $driver::<V4>($($a),*)
            }
            pub(super) fn $wrapper($($a: $t),*) {
                // SAFETY: this fn is only reachable through the AVX2_FMA
                // table, which `detected()` installs after runtime
                // `is_x86_feature_detected!("avx2")`/`("fma")` both pass.
                unsafe { $shim($($a),*) }
            }
        };
    }

    avx2_kernel!(hadamard, hadamard_tf, d_hadamard,
        (re: &mut [f64], im: &mut [f64], kr: &[f64], ki: &[f64]));
    avx2_kernel!(hadamard_conj, hadamard_conj_tf, d_hadamard_conj,
        (re: &mut [f64], im: &mut [f64], kr: &[f64], ki: &[f64]));
    avx2_kernel!(hadamard_scale, hadamard_scale_tf, d_hadamard_scale,
        (re: &mut [f64], im: &mut [f64], kr: &[f64], ki: &[f64], scale: f64));
    avx2_kernel!(acc_mul_conj, acc_mul_conj_tf, d_acc_mul_conj,
        (gr: &[f64], gi: &[f64], xr: &[f64], xi: &[f64], out_re: &mut [f64], out_im: &mut [f64]));
    avx2_kernel!(intensity, intensity_tf, d_intensity,
        (re: &[f64], im: &[f64], out: &mut [f64]));
    avx2_kernel!(radix2, radix2_tf, d_radix2,
        (x: [&[f64]; 4], y: [&mut [f64]; 4], w: &[(f64, f64); 1]));
    avx2_kernel!(radix4, radix4_tf, d_radix4,
        (x: [&[f64]; 8], y: [&mut [f64]; 8], w: &[(f64, f64); 3], sgn: f64));
    avx2_kernel!(radix5, radix5_tf, d_radix5,
        (x: [&[f64]; 10], y: [&mut [f64]; 10], w: &[(f64, f64); 4], sgn: f64));
    avx2_kernel!(radix8, radix8_tf, d_radix8,
        (x: [&[f64]; 16], y: [&mut [f64]; 16], w: &[(f64, f64); 7], sgn: f64));

    /// 4×4 in-register micro-transpose inside the usual 32-wide tiles;
    /// edge remainders fall back to the scalar scatter. Pure data
    /// movement — bit-identical to the scalar transpose.
    #[target_feature(enable = "avx2")]
    unsafe fn transpose_tf(src: &[f64], n: usize, dst: &mut [f64]) {
        assert_eq!(src.len(), n * n);
        assert_eq!(dst.len(), n * n);
        const TILE: usize = 32;
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        for rb in (0..n).step_by(TILE) {
            let r_end = (rb + TILE).min(n);
            for cb in (0..n).step_by(TILE) {
                let c_end = (cb + TILE).min(n);
                let mut r = rb;
                while r + 4 <= r_end {
                    let mut c = cb;
                    while c + 4 <= c_end {
                        // SAFETY: r+3 < n and c+3 < n, so every 4-lane
                        // row/column segment below is in bounds.
                        unsafe {
                            let a = _mm256_loadu_pd(sp.add(r * n + c));
                            let b = _mm256_loadu_pd(sp.add((r + 1) * n + c));
                            let cc = _mm256_loadu_pd(sp.add((r + 2) * n + c));
                            let d = _mm256_loadu_pd(sp.add((r + 3) * n + c));
                            let t0 = _mm256_unpacklo_pd(a, b);
                            let t1 = _mm256_unpackhi_pd(a, b);
                            let t2 = _mm256_unpacklo_pd(cc, d);
                            let t3 = _mm256_unpackhi_pd(cc, d);
                            _mm256_storeu_pd(
                                dp.add(c * n + r),
                                _mm256_permute2f128_pd(t0, t2, 0x20),
                            );
                            _mm256_storeu_pd(
                                dp.add((c + 1) * n + r),
                                _mm256_permute2f128_pd(t1, t3, 0x20),
                            );
                            _mm256_storeu_pd(
                                dp.add((c + 2) * n + r),
                                _mm256_permute2f128_pd(t0, t2, 0x31),
                            );
                            _mm256_storeu_pd(
                                dp.add((c + 3) * n + r),
                                _mm256_permute2f128_pd(t1, t3, 0x31),
                            );
                        }
                        c += 4;
                    }
                    for rr in r..r + 4 {
                        for ccol in c..c_end {
                            dst[ccol * n + rr] = src[rr * n + ccol];
                        }
                    }
                    r += 4;
                }
                for rr in r..r_end {
                    for ccol in cb..c_end {
                        dst[ccol * n + rr] = src[rr * n + ccol];
                    }
                }
            }
        }
    }

    pub(super) fn transpose(src: &[f64], n: usize, dst: &mut [f64]) {
        // SAFETY: reachable only through the AVX2_FMA table (see above).
        unsafe { transpose_tf(src, n, dst) }
    }
}

// ---------------------------------------------------------------------------
// NEON table (aarch64). NEON is a baseline feature of every aarch64
// target rustc ships, so no runtime probe or target_feature shim is
// needed — the drivers instantiate directly over the 2-lane type.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
#[allow(unused_unsafe)]
mod neon {
    use super::{
        d_acc_mul_conj, d_hadamard, d_hadamard_conj, d_hadamard_scale, d_intensity, d_radix2,
        d_radix4, d_radix5, d_radix8, Lanes,
    };
    use std::arch::aarch64::*;

    #[derive(Clone, Copy)]
    pub(super) struct V2(float64x2_t);

    impl Lanes for V2 {
        const WIDTH: usize = 2;
        #[inline(always)]
        fn splat(x: f64) -> Self {
            // SAFETY: NEON is statically enabled on every aarch64 target.
            V2(unsafe { vdupq_n_f64(x) })
        }
        #[inline(always)]
        fn add(self, o: Self) -> Self {
            V2(unsafe { vaddq_f64(self.0, o.0) })
        }
        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            V2(unsafe { vsubq_f64(self.0, o.0) })
        }
        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            V2(unsafe { vmulq_f64(self.0, o.0) })
        }
        #[inline(always)]
        fn neg(self) -> Self {
            V2(unsafe { vnegq_f64(self.0) })
        }
        #[inline(always)]
        fn mul_add(a: Self, b: Self, c: Self) -> Self {
            // vfmaq(c, a, b) = c + a·b, fused.
            V2(unsafe { vfmaq_f64(c.0, a.0, b.0) })
        }
        #[inline(always)]
        fn mul_sub(a: Self, b: Self, c: Self) -> Self {
            // a·b − c = (−c) + a·b, fused.
            V2(unsafe { vfmaq_f64(vnegq_f64(c.0), a.0, b.0) })
        }
        #[inline(always)]
        fn mul_neg_add(a: Self, b: Self, c: Self) -> Self {
            // vfmsq(c, a, b) = c − a·b, fused.
            V2(unsafe { vfmsq_f64(c.0, a.0, b.0) })
        }
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            V2(unsafe { vld1q_f64(p) })
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            unsafe { vst1q_f64(p, self.0) }
        }
    }

    macro_rules! neon_kernel {
        ($wrapper:ident, $driver:ident, ($($a:ident: $t:ty),*)) => {
            pub(super) fn $wrapper($($a: $t),*) {
                $driver::<V2>($($a),*)
            }
        };
    }

    neon_kernel!(hadamard, d_hadamard,
        (re: &mut [f64], im: &mut [f64], kr: &[f64], ki: &[f64]));
    neon_kernel!(hadamard_conj, d_hadamard_conj,
        (re: &mut [f64], im: &mut [f64], kr: &[f64], ki: &[f64]));
    neon_kernel!(hadamard_scale, d_hadamard_scale,
        (re: &mut [f64], im: &mut [f64], kr: &[f64], ki: &[f64], scale: f64));
    neon_kernel!(acc_mul_conj, d_acc_mul_conj,
        (gr: &[f64], gi: &[f64], xr: &[f64], xi: &[f64], out_re: &mut [f64], out_im: &mut [f64]));
    neon_kernel!(intensity, d_intensity,
        (re: &[f64], im: &[f64], out: &mut [f64]));
    neon_kernel!(radix2, d_radix2,
        (x: [&[f64]; 4], y: [&mut [f64]; 4], w: &[(f64, f64); 1]));
    neon_kernel!(radix4, d_radix4,
        (x: [&[f64]; 8], y: [&mut [f64]; 8], w: &[(f64, f64); 3], sgn: f64));
    neon_kernel!(radix5, d_radix5,
        (x: [&[f64]; 10], y: [&mut [f64]; 10], w: &[(f64, f64); 4], sgn: f64));
    neon_kernel!(radix8, d_radix8,
        (x: [&[f64]; 16], y: [&mut [f64]; 16], w: &[(f64, f64); 7], sgn: f64));

    /// 2×2 in-register micro-transpose inside 32-wide tiles; edge
    /// remainders fall back to the scalar scatter. Bit-identical to the
    /// scalar transpose (pure data movement).
    pub(super) fn transpose(src: &[f64], n: usize, dst: &mut [f64]) {
        assert_eq!(src.len(), n * n);
        assert_eq!(dst.len(), n * n);
        const TILE: usize = 32;
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        for rb in (0..n).step_by(TILE) {
            let r_end = (rb + TILE).min(n);
            for cb in (0..n).step_by(TILE) {
                let c_end = (cb + TILE).min(n);
                let mut r = rb;
                while r + 2 <= r_end {
                    let mut c = cb;
                    while c + 2 <= c_end {
                        // SAFETY: r+1 < n and c+1 < n, so every 2-lane
                        // segment below is in bounds.
                        unsafe {
                            let a = vld1q_f64(sp.add(r * n + c));
                            let b = vld1q_f64(sp.add((r + 1) * n + c));
                            vst1q_f64(dp.add(c * n + r), vzip1q_f64(a, b));
                            vst1q_f64(dp.add((c + 1) * n + r), vzip2q_f64(a, b));
                        }
                        c += 2;
                    }
                    for rr in r..r + 2 {
                        for ccol in c..c_end {
                            dst[ccol * n + rr] = src[rr * n + ccol];
                        }
                    }
                    r += 2;
                }
                for rr in r..r_end {
                    for ccol in cb..c_end {
                        dst[ccol * n + rr] = src[rr * n + ccol];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    /// Lengths that exercise full vectors, remainder tails of every
    /// phase, odd lengths, and the paper's native row width.
    const LENGTHS: [usize; 16] = [1, 2, 3, 4, 5, 7, 8, 15, 16, 19, 20, 25, 31, 33, 100, 200];

    fn fill(rng: &mut Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
    }

    /// Asserts `got` matches `want` within the table's contract: tail
    /// elements (the last `len % width`) bit-identical, vector-body
    /// elements within ~1 ulp relative when the table fuses, bit-identical
    /// otherwise.
    fn assert_kernel_match(got: &[f64], want: &[f64], table: &KernelTable, what: &str) {
        let n = got.len();
        let tail_start = n - n % table.width;
        for i in 0..n {
            let (g, w) = (got[i], want[i]);
            if i >= tail_start || !table.fma {
                assert!(
                    g.to_bits() == w.to_bits(),
                    "{what}[{i}] (len {n}, table {}): {g:e} not bit-identical to scalar {w:e}",
                    table.name
                );
            } else {
                let tol = 1e-15 * w.abs().max(1.0);
                assert!(
                    (g - w).abs() <= tol,
                    "{what}[{i}] (len {n}, table {}): {g:e} vs scalar {w:e}",
                    table.name
                );
            }
        }
    }

    #[test]
    fn env_kill_switch_values() {
        use crate::envswitch::parse;
        for v in ["off", "OFF", "Off", "0", "false", "False", "FALSE"] {
            assert_eq!(parse(v), Some(false), "{v} should disable SIMD");
        }
        for v in ["on", "1", "ON", "true"] {
            assert_eq!(parse(v), Some(true), "{v} should keep SIMD on");
        }
        // Unrecognised values fall back to the switch default (SIMD on).
        for v in ["", "2", "fast"] {
            assert_eq!(parse(v), None, "{v:?} should not disable SIMD");
        }
    }

    // Mismatched slice lengths must panic on every table — in release
    // builds too — because the fn-pointer fields are `pub` and reachable
    // from safe code; a silent out-of-bounds access would be UB.

    #[test]
    #[should_panic]
    fn hadamard_panics_on_short_kernel_plane() {
        let (mut re, mut im) = (vec![0.0; 8], vec![0.0; 8]);
        (detected().hadamard)(&mut re, &mut im, &[0.0; 7], &[0.0; 8]);
    }

    #[test]
    #[should_panic]
    fn scalar_intensity_panics_on_short_out() {
        let mut out = vec![0.0; 3];
        (SCALAR.intensity)(&[0.0; 4], &[0.0; 4], &mut out);
    }

    #[test]
    #[should_panic]
    fn acc_mul_conj_panics_on_short_accumulator() {
        let (mut or, mut oi) = (vec![0.0; 8], vec![0.0; 7]);
        (detected().acc_mul_conj)(&[0.0; 8], &[0.0; 8], &[0.0; 8], &[0.0; 8], &mut or, &mut oi);
    }

    #[test]
    #[should_panic]
    fn radix2_panics_on_short_output_row() {
        let x = vec![0.0; 8];
        let mut y = [vec![0.0; 8], vec![0.0; 8], vec![0.0; 8], vec![0.0; 7]];
        let mut yi = y.iter_mut().map(|v| v.as_mut_slice());
        (detected().radix2)(
            std::array::from_fn(|_| x.as_slice()),
            std::array::from_fn(|_| yi.next().unwrap()),
            &[(1.0, 0.0)],
        );
    }

    #[test]
    #[should_panic]
    fn radix5_panics_on_short_input_row() {
        let (x, short) = (vec![0.0; 8], vec![0.0; 7]);
        let mut y: Vec<Vec<f64>> = (0..10).map(|_| vec![0.0; 8]).collect();
        let mut yi = y.iter_mut().map(|v| v.as_mut_slice());
        (detected().radix5)(
            std::array::from_fn(|i| {
                if i == 9 {
                    short.as_slice()
                } else {
                    x.as_slice()
                }
            }),
            std::array::from_fn(|_| yi.next().unwrap()),
            &[(1.0, 0.0); 4],
            1.0,
        );
    }

    #[test]
    #[should_panic]
    fn transpose_panics_on_short_dst() {
        let src = vec![0.0; 25];
        let mut dst = vec![0.0; 24];
        (detected().transpose)(&src, 5, &mut dst);
    }

    #[test]
    fn active_is_scalar_or_detected() {
        let a = active();
        assert!(std::ptr::eq(a, &SCALAR) || std::ptr::eq(a, detected()));
        assert!(a.width >= 1);
    }

    #[test]
    fn planar_kernels_match_scalar_across_lengths_and_tails() {
        let t = detected();
        let mut rng = Rng::seed_from(0x51D0);
        for n in LENGTHS {
            let kr = fill(&mut rng, n);
            let ki = fill(&mut rng, n);
            let re0 = fill(&mut rng, n);
            let im0 = fill(&mut rng, n);

            type Case<'a> = (
                &'a str,
                Box<dyn Fn(&KernelTable, &mut [f64], &mut [f64]) + 'a>,
            );
            let cases: [Case; 3] = [
                ("hadamard", Box::new(|t, r, i| (t.hadamard)(r, i, &kr, &ki))),
                (
                    "hadamard_conj",
                    Box::new(|t, r, i| (t.hadamard_conj)(r, i, &kr, &ki)),
                ),
                (
                    "hadamard_scale",
                    Box::new(|t, r, i| (t.hadamard_scale)(r, i, &kr, &ki, 0.37)),
                ),
            ];
            for (name, run) in &cases {
                let (mut gr, mut gi) = (re0.clone(), im0.clone());
                run(t, &mut gr, &mut gi);
                let (mut wr, mut wi) = (re0.clone(), im0.clone());
                run(&SCALAR, &mut wr, &mut wi);
                assert_kernel_match(&gr, &wr, t, &format!("{name}.re"));
                assert_kernel_match(&gi, &wi, t, &format!("{name}.im"));
            }

            let xr = fill(&mut rng, n);
            let xi = fill(&mut rng, n);
            let acc_r = fill(&mut rng, n);
            let acc_i = fill(&mut rng, n);
            let (mut gor, mut goi) = (acc_r.clone(), acc_i.clone());
            (t.acc_mul_conj)(&re0, &im0, &xr, &xi, &mut gor, &mut goi);
            let (mut wor, mut woi) = (acc_r.clone(), acc_i.clone());
            (SCALAR.acc_mul_conj)(&re0, &im0, &xr, &xi, &mut wor, &mut woi);
            assert_kernel_match(&gor, &wor, t, "acc_mul_conj.re");
            assert_kernel_match(&goi, &woi, t, "acc_mul_conj.im");

            let mut gout = vec![0.0; n];
            let mut wout = vec![0.0; n];
            (t.intensity)(&re0, &im0, &mut gout);
            (SCALAR.intensity)(&re0, &im0, &mut wout);
            assert_kernel_match(&gout, &wout, t, "intensity");
        }
    }

    #[test]
    fn transpose_is_bit_identical_at_all_sizes() {
        let t = detected();
        let mut rng = Rng::seed_from(0x7A05);
        // Sizes straddling the 32-tile and the 4/2-lane micro-blocks.
        for n in [1usize, 2, 3, 4, 5, 7, 8, 20, 25, 31, 32, 33, 37, 64, 200] {
            let src = fill(&mut rng, n * n);
            let mut got = vec![0.0; n * n];
            let mut want = vec![0.0; n * n];
            (t.transpose)(&src, n, &mut got);
            (SCALAR.transpose)(&src, n, &mut want);
            for i in 0..n * n {
                assert!(
                    got[i].to_bits() == want[i].to_bits(),
                    "transpose n={n} differs at {i} on table {}",
                    t.name
                );
            }
        }
    }

    /// Runs one radix butterfly on both tables and compares.
    fn check_radix(p: usize, n: usize, rng: &mut Rng) {
        let t = detected();
        let xs: Vec<Vec<f64>> = (0..2 * p).map(|_| fill(rng, n)).collect();
        let w: Vec<(f64, f64)> = (1..p)
            .map(|s| {
                let a = -2.0 * std::f64::consts::PI * s as f64 / (p as f64 * 3.0);
                (a.cos(), a.sin())
            })
            .collect();
        for sgn in [1.0, -1.0] {
            let mut got: Vec<Vec<f64>> = vec![vec![0.0; n]; 2 * p];
            let mut want: Vec<Vec<f64>> = vec![vec![0.0; n]; 2 * p];
            run_radix(t, p, &xs, &mut got, &w, sgn);
            run_radix(&SCALAR, p, &xs, &mut want, &w, sgn);
            for (k, (g, wv)) in got.iter().zip(&want).enumerate() {
                assert_kernel_match(g, wv, t, &format!("radix{p} out[{k}] sgn={sgn}"));
            }
        }
    }

    fn run_radix(
        t: &KernelTable,
        p: usize,
        xs: &[Vec<f64>],
        ys: &mut [Vec<f64>],
        w: &[(f64, f64)],
        sgn: f64,
    ) {
        let mut yi = ys.iter_mut().map(|v| v.as_mut_slice());
        match p {
            2 => (t.radix2)(
                std::array::from_fn(|i| xs[i].as_slice()),
                std::array::from_fn(|_| yi.next().unwrap()),
                &[w[0]],
            ),
            4 => (t.radix4)(
                std::array::from_fn(|i| xs[i].as_slice()),
                std::array::from_fn(|_| yi.next().unwrap()),
                &[w[0], w[1], w[2]],
                sgn,
            ),
            5 => (t.radix5)(
                std::array::from_fn(|i| xs[i].as_slice()),
                std::array::from_fn(|_| yi.next().unwrap()),
                &[w[0], w[1], w[2], w[3]],
                sgn,
            ),
            8 => (t.radix8)(
                std::array::from_fn(|i| xs[i].as_slice()),
                std::array::from_fn(|_| yi.next().unwrap()),
                &[w[0], w[1], w[2], w[3], w[4], w[5], w[6]],
                sgn,
            ),
            _ => unreachable!(),
        }
    }

    #[test]
    fn butterflies_match_scalar_across_lengths_and_tails() {
        let mut rng = Rng::seed_from(0xB0F1);
        for p in [2usize, 4, 5, 8] {
            for n in LENGTHS {
                check_radix(p, n, &mut rng);
            }
        }
    }

    #[test]
    fn scalar_table_reports_exact_contract() {
        assert_eq!(SCALAR.name, "scalar");
        assert_eq!(SCALAR.width, 1);
        assert!(!SCALAR.fma);
    }
}
