//! Sharded dispatch: N dispatcher shards with per-model queues,
//! work-stealing, and admission control.
//!
//! Each shard owns a FIFO of `ModelGroup`s — same-model jobs batch
//! together because they share one `BatchCGrid` forward pass. Jobs route
//! to a shard by a hash of their model name, so a steady mixed workload
//! partitions without contention; an idle shard *steals* work from the
//! deepest peer (a whole trailing group, or the back half of a lone large
//! group) so a single hot model still spreads across every core.
//!
//! Admission control watches the recent completion-latency window: when
//! p99 exceeds the configured target, the effective batch ceiling and
//! coalescing wait shrink (halving per degradation level) — trading
//! throughput for latency *before* load shedding starts. Only when a
//! shard's bounded queue is actually full does a submission bounce with
//! [`SubmitError::QueueFull`], which the HTTP layer answers as 429 with a
//! `retry_after_ms` hint.
//!
//! Replies fan out two ways: an [`mpsc`] channel per job (the classic
//! [`crate::batcher::Batcher`] path, which is now a 1-shard façade over
//! this module), or a [`CompletionSink`] shared with the event loop —
//! batches aggregate per-request, then one completion record lands on the
//! sink and the loop's waker is rung.

use crate::batcher::{BatchPolicy, SubmitError};
use crate::cache::FirstHopCache;
use crate::head::ReadoutHead;
use crate::metrics::{Metrics, ShardCounters};
use crate::poll::WakeHandle;
use crate::registry::{ModelRegistry, ServedModel};
use photonn_math::{BatchCGrid, BatchGrid, CGrid, Grid};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often an idle shard re-checks its peers for stealable work.
const STEAL_POLL: Duration = Duration::from_millis(2);
/// Deepest admission-control degradation (batch ceiling halves per level).
const MAX_DEGRADE_LEVEL: usize = 3;
/// Completion latencies kept in the admission window.
const ADMISSION_WINDOW: usize = 256;
/// Observations between admission-level recomputations.
const ADMISSION_STRIDE: u64 = 32;

// ------------------------------------------------------------- replies

/// One finished request ready to be written back by the event loop.
pub struct Completion {
    /// Generation-tagged connection token the response belongs to.
    pub conn: u64,
    /// Response slot on that connection (pipelining order).
    pub slot: usize,
    /// Per-input logits, in the request's input order.
    pub results: Vec<Vec<f64>>,
}

/// Where dispatcher shards park finished work for the event loop; pushing
/// rings the loop's waker.
pub struct CompletionSink {
    queue: Mutex<Vec<Completion>>,
    waker: WakeHandle,
}

impl CompletionSink {
    /// A sink that wakes `waker` whenever a completion lands.
    pub fn new(waker: WakeHandle) -> Arc<CompletionSink> {
        Arc::new(CompletionSink {
            queue: Mutex::new(Vec::new()),
            waker,
        })
    }

    /// Takes everything accumulated so far (event-loop side).
    pub fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().expect("completion lock"))
    }

    fn push(&self, completion: Completion) {
        self.queue.lock().expect("completion lock").push(completion);
        self.waker.wake();
    }
}

/// Aggregates the per-sample results of one (possibly batched) request.
struct Aggregation {
    results: Mutex<Vec<Option<Vec<f64>>>>,
    remaining: AtomicUsize,
}

/// The completion-side reply handle of one sample of one request.
pub struct CompletionHandle {
    sink: Arc<CompletionSink>,
    conn: u64,
    slot: usize,
    agg: Arc<Aggregation>,
    index: usize,
}

impl CompletionHandle {
    /// Builds one handle per input of a request; when the last input's
    /// logits arrive, a single [`Completion`] lands on the sink.
    ///
    /// # Panics
    ///
    /// Panics when `total` is zero.
    pub fn batch(
        sink: &Arc<CompletionSink>,
        conn: u64,
        slot: usize,
        total: usize,
    ) -> Vec<CompletionHandle> {
        assert!(total > 0, "a request has at least one input");
        let agg = Arc::new(Aggregation {
            results: Mutex::new(vec![None; total]),
            remaining: AtomicUsize::new(total),
        });
        (0..total)
            .map(|index| CompletionHandle {
                sink: Arc::clone(sink),
                conn,
                slot,
                agg: Arc::clone(&agg),
                index,
            })
            .collect()
    }

    fn complete(self, logits: Vec<f64>) {
        self.agg.results.lock().expect("aggregation lock")[self.index] = Some(logits);
        if self.agg.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let results = self
                .agg
                .results
                .lock()
                .expect("aggregation lock")
                .iter_mut()
                .map(|slot| slot.take().expect("all samples completed"))
                .collect();
            self.sink.push(Completion {
                conn: self.conn,
                slot: self.slot,
                results,
            });
        }
    }
}

/// How a job's logits travel back to the requester.
pub enum Reply {
    /// A per-job channel (the blocking [`crate::batcher::Batcher`] path).
    Channel(mpsc::Sender<Vec<f64>>),
    /// An event-loop completion (one sample of a `/v1` or `/v2` request).
    Completion(CompletionHandle),
}

impl Reply {
    fn complete(self, logits: Vec<f64>) {
        match self {
            // A gone receiver just means the client hung up.
            Reply::Channel(tx) => drop(tx.send(logits)),
            Reply::Completion(handle) => handle.complete(logits),
        }
    }
}

// ----------------------------------------------------------- admission

/// Latency-pressure admission control shared by every shard.
///
/// Keeps a sliding window of completion latencies; every
/// `ADMISSION_STRIDE` observations the window p99 is compared against
/// the target: above it the degradation level steps up (halving the
/// effective batch ceiling and coalescing wait), comfortably below it
/// (< 70% of target) the level steps back down. `target_p99_us == 0`
/// disables the mechanism.
pub struct Admission {
    target_p99_us: u64,
    window: Mutex<VecDeque<u64>>,
    observed: AtomicU64,
    level: AtomicUsize,
}

impl Admission {
    fn new(target_p99_us: u64) -> Admission {
        Admission {
            target_p99_us,
            window: Mutex::new(VecDeque::with_capacity(ADMISSION_WINDOW)),
            observed: AtomicU64::new(0),
            level: AtomicUsize::new(0),
        }
    }

    /// Current degradation level (0 = healthy).
    pub fn level(&self) -> usize {
        self.level.load(Ordering::Relaxed)
    }

    /// The policy ceilings after degradation.
    fn effective(&self, policy: &BatchPolicy) -> (usize, u64) {
        let level = self.level();
        if level == 0 {
            (policy.max_batch, policy.max_wait_us)
        } else {
            (
                (policy.max_batch >> level).max(1),
                policy.max_wait_us >> level,
            )
        }
    }

    fn observe(&self, us: u64) {
        if self.target_p99_us == 0 {
            return;
        }
        {
            let mut window = self.window.lock().expect("admission lock");
            if window.len() == ADMISSION_WINDOW {
                window.pop_front();
            }
            window.push_back(us);
        }
        let n = self.observed.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(ADMISSION_STRIDE) {
            return;
        }
        let p99 = {
            let window = self.window.lock().expect("admission lock");
            let mut sorted: Vec<u64> = window.iter().copied().collect();
            sorted.sort_unstable();
            sorted[(sorted.len() - 1) * 99 / 100]
        };
        let level = self.level();
        if p99 > self.target_p99_us && level < MAX_DEGRADE_LEVEL {
            self.level.store(level + 1, Ordering::Relaxed);
        } else if p99 < self.target_p99_us * 7 / 10 && level > 0 {
            self.level.store(level - 1, Ordering::Relaxed);
        }
    }
}

// ----------------------------------------------------------- the pool

struct Job {
    model: Arc<ServedModel>,
    head: ReadoutHead,
    image: Grid,
    reply: Reply,
    enqueued: Instant,
}

/// Same-model jobs awaiting one shared forward pass.
struct ModelGroup {
    model: Arc<ServedModel>,
    jobs: VecDeque<Job>,
}

struct ShardState {
    groups: VecDeque<ModelGroup>,
    depth: usize,
    shutdown: bool,
}

struct Shard {
    state: Mutex<ShardState>,
    wake: Condvar,
}

struct PoolInner {
    shards: Vec<Shard>,
    counters: Arc<Vec<ShardCounters>>,
    registry: Arc<ModelRegistry>,
    policy: BatchPolicy,
    cache: Option<FirstHopCache>,
    metrics: Arc<Metrics>,
    admission: Admission,
    total_depth: AtomicUsize,
}

/// N dispatcher shards over one model registry. Dropping the pool shuts
/// it down gracefully (queued jobs are still answered).
pub struct ShardPool {
    inner: Arc<PoolInner>,
    dispatchers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ShardPool {
    /// Starts `shards` dispatcher threads over `registry`.
    /// `target_p99_us == 0` disables admission-control degradation.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty, the policy is degenerate, or
    /// `shards` is zero.
    pub fn new(
        registry: Arc<ModelRegistry>,
        policy: BatchPolicy,
        shards: usize,
        cache: Option<FirstHopCache>,
        metrics: Arc<Metrics>,
        target_p99_us: u64,
    ) -> ShardPool {
        policy.validate();
        assert!(shards > 0, "at least one shard");
        assert!(!registry.is_empty(), "cannot serve an empty registry");
        let counters: Arc<Vec<ShardCounters>> =
            Arc::new((0..shards).map(|_| ShardCounters::default()).collect());
        metrics.install_shards(Arc::clone(&counters));
        let inner = Arc::new(PoolInner {
            shards: (0..shards)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        groups: VecDeque::new(),
                        depth: 0,
                        shutdown: false,
                    }),
                    wake: Condvar::new(),
                })
                .collect(),
            counters,
            registry,
            policy,
            cache,
            metrics,
            admission: Admission::new(target_p99_us),
            total_depth: AtomicUsize::new(0),
        });
        let dispatchers = (0..shards)
            .map(|index| {
                let pool = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("photonn-shard-{index}"))
                    .spawn(move || dispatch_loop(&pool, index))
                    .expect("spawn shard dispatcher")
            })
            .collect();
        ShardPool {
            inner,
            dispatchers: Mutex::new(dispatchers),
        }
    }

    /// The registry this pool serves.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.inner.registry
    }

    /// Number of dispatcher shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Current admission-control degradation level (0 = healthy).
    pub fn admission_level(&self) -> usize {
        self.inner.admission.level()
    }

    /// Resolves a model name (`None` routes to the registry default).
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownModel`] when no such model is registered.
    pub fn resolve(&self, model_name: Option<&str>) -> Result<&Arc<ServedModel>, SubmitError> {
        match model_name {
            Some(name) => self
                .inner
                .registry
                .get(name)
                .ok_or_else(|| SubmitError::UnknownModel(name.to_string())),
            None => Ok(self
                .inner
                .registry
                .default_model()
                .expect("registry checked non-empty")),
        }
    }

    /// Enqueues one sample for `model` under `head`; `reply` receives the
    /// logits once its batch has run.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`]; the job is refused *before* queueing in every
    /// error case.
    pub fn submit(
        &self,
        model: &Arc<ServedModel>,
        head: ReadoutHead,
        image: Grid,
        reply: Reply,
    ) -> Result<(), SubmitError> {
        let n = model.grid();
        if image.shape() != (n, n) {
            return Err(SubmitError::ShapeMismatch {
                expected: n,
                got: image.shape(),
            });
        }
        let index = self.route(model.name());
        let shard = &self.inner.shards[index];
        let depth_after;
        {
            let mut state = shard.state.lock().expect("shard lock");
            if state.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if state.depth >= self.inner.policy.queue_capacity {
                return Err(SubmitError::QueueFull);
            }
            let job = Job {
                model: Arc::clone(model),
                head,
                image,
                reply,
                enqueued: Instant::now(),
            };
            match state
                .groups
                .iter_mut()
                .find(|g| Arc::ptr_eq(&g.model, model))
            {
                Some(group) => group.jobs.push_back(job),
                None => state.groups.push_back(ModelGroup {
                    model: Arc::clone(model),
                    jobs: VecDeque::from([job]),
                }),
            }
            state.depth += 1;
            depth_after = state.depth;
            self.inner.counters[index]
                .queue_depth
                .store(state.depth, Ordering::Relaxed);
            let total = self.inner.total_depth.fetch_add(1, Ordering::Relaxed) + 1;
            self.inner.metrics.set_queue_depth(total);
        }
        self.inner.metrics.record_model_request(model.name());
        shard.wake.notify_all();
        self.ping_idle_peers(index, depth_after);
        Ok(())
    }

    /// Enqueues a whole batch of samples for `model` under `head`
    /// atomically: either every sample is admitted or none is. This is
    /// the `/v2` batched-inputs entry point — all-or-nothing admission
    /// keeps a multi-sample request from half-landing when the queue is
    /// near capacity (which would strand its completion aggregation).
    ///
    /// # Errors
    ///
    /// See [`SubmitError`]; no job is queued in any error case.
    ///
    /// # Panics
    ///
    /// Panics when `images` and `replies` disagree in length or are empty.
    pub fn submit_batch(
        &self,
        model: &Arc<ServedModel>,
        head: ReadoutHead,
        images: Vec<Grid>,
        replies: Vec<Reply>,
    ) -> Result<(), SubmitError> {
        assert_eq!(images.len(), replies.len(), "one reply per image");
        assert!(!images.is_empty(), "empty batch");
        let n = model.grid();
        for image in &images {
            if image.shape() != (n, n) {
                return Err(SubmitError::ShapeMismatch {
                    expected: n,
                    got: image.shape(),
                });
            }
        }
        let count = images.len();
        let index = self.route(model.name());
        let shard = &self.inner.shards[index];
        let depth_after;
        {
            let mut state = shard.state.lock().expect("shard lock");
            if state.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if state.depth + count > self.inner.policy.queue_capacity {
                return Err(SubmitError::QueueFull);
            }
            let now = Instant::now();
            let jobs = images.into_iter().zip(replies).map(|(image, reply)| Job {
                model: Arc::clone(model),
                head,
                image,
                reply,
                enqueued: now,
            });
            match state
                .groups
                .iter_mut()
                .find(|g| Arc::ptr_eq(&g.model, model))
            {
                Some(group) => group.jobs.extend(jobs),
                None => state.groups.push_back(ModelGroup {
                    model: Arc::clone(model),
                    jobs: jobs.collect(),
                }),
            }
            state.depth += count;
            depth_after = state.depth;
            self.inner.counters[index]
                .queue_depth
                .store(state.depth, Ordering::Relaxed);
            let total = self.inner.total_depth.fetch_add(count, Ordering::Relaxed) + count;
            self.inner.metrics.set_queue_depth(total);
        }
        for _ in 0..count {
            self.inner.metrics.record_model_request(model.name());
        }
        shard.wake.notify_all();
        self.ping_idle_peers(index, depth_after);
        Ok(())
    }

    /// Wakes every peer shard when `home` has accumulated more than one
    /// batch's worth of work — idle dispatchers wake into their
    /// steal-before-park path immediately instead of on the next
    /// `STEAL_POLL` tick, so a burst spreads across shards at
    /// microsecond (not poll-tick) latency.
    fn ping_idle_peers(&self, home: usize, depth: usize) {
        if self.inner.shards.len() > 1 && depth > self.inner.policy.max_batch {
            for (i, shard) in self.inner.shards.iter().enumerate() {
                if i != home {
                    shard.wake.notify_all();
                }
            }
        }
    }

    /// Total jobs parked across every shard.
    pub fn queue_depth(&self) -> usize {
        self.inner.total_depth.load(Ordering::Relaxed)
    }

    /// Stops accepting jobs, drains every shard (each parked job still
    /// receives its logits), and joins the dispatchers. Idempotent.
    pub fn shutdown(&self) {
        for shard in &self.inner.shards {
            shard.state.lock().expect("shard lock").shutdown = true;
            shard.wake.notify_all();
        }
        let mut handles = self.dispatchers.lock().expect("join lock");
        for handle in handles.drain(..) {
            handle.join().expect("shard dispatcher panicked");
        }
    }

    fn route(&self, model_name: &str) -> usize {
        // FNV-1a over the name: stable, dependency-free, and spreads the
        // handful of registered names well enough.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in model_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        (hash % self.inner.shards.len() as u64) as usize
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ------------------------------------------------------ dispatch loops

fn dispatch_loop(pool: &PoolInner, index: usize) {
    while let Some(jobs) = next_batch(pool, index) {
        run_batch(pool, index, jobs);
    }
}

/// Blocks until this shard has a dispatchable batch; `None` when the pool
/// is shut down and this shard's queue is drained.
fn next_batch(pool: &PoolInner, index: usize) -> Option<Vec<Job>> {
    let shard = &pool.shards[index];
    let mut state = shard.state.lock().expect("shard lock");
    loop {
        if state.depth == 0 {
            if state.shutdown {
                return None;
            }
            if pool.shards.len() > 1 {
                // Idle with peers: try to steal before parking. The own
                // lock is dropped first so shard locks never nest.
                drop(state);
                let stolen = steal(pool, index);
                state = shard.state.lock().expect("shard lock");
                if let Some(group) = stolen {
                    state.depth += group.jobs.len();
                    state.groups.push_front(group);
                    pool.counters[index]
                        .queue_depth
                        .store(state.depth, Ordering::Relaxed);
                    continue;
                }
                if state.depth > 0 || state.shutdown {
                    continue;
                }
                let (next, _) = shard
                    .wake
                    .wait_timeout(state, STEAL_POLL)
                    .expect("shard lock");
                state = next;
            } else {
                state = shard.wake.wait(state).expect("shard lock");
            }
            continue;
        }
        let (max_batch, max_wait_us) = pool.admission.effective(&pool.policy);
        // Dispatch by age, not queue position: the group whose head job
        // has waited longest owns the shard's deadline, so sustained
        // traffic to one model can never starve another model's group
        // parked behind it (its max_wait is always consulted). A group
        // that has already filled a batch goes immediately — oldest such
        // group first when several are full.
        let mut oldest = 0;
        let mut full: Option<usize> = None;
        for (i, group) in state.groups.iter().enumerate() {
            let head = group.jobs.front().expect("non-empty group").enqueued;
            if head < state.groups[oldest].jobs.front().expect("non-empty group").enqueued {
                oldest = i;
            }
            if group.jobs.len() >= max_batch
                && full.is_none_or(|f| {
                    head < state.groups[f].jobs.front().expect("non-empty group").enqueued
                })
            {
                full = Some(i);
            }
        }
        let deadline = state.groups[oldest]
            .jobs
            .front()
            .expect("non-empty group")
            .enqueued
            + Duration::from_micros(max_wait_us);
        let now = Instant::now();
        let pick = if state.shutdown || now >= deadline {
            Some(oldest)
        } else {
            full
        };
        if let Some(at) = pick {
            let jobs = take_group(&mut state, at, max_batch);
            pool.counters[index]
                .queue_depth
                .store(state.depth, Ordering::Relaxed);
            let total = pool.total_depth.fetch_sub(jobs.len(), Ordering::Relaxed) - jobs.len();
            pool.metrics.set_queue_depth(total);
            return Some(jobs);
        }
        let (next, _) = shard
            .wake
            .wait_timeout(state, deadline - now)
            .expect("shard lock");
        state = next;
    }
}

/// Takes up to `max_batch` jobs off the group at `at`, removing the group
/// when it empties (order within the group is preserved).
fn take_group(state: &mut ShardState, at: usize, max_batch: usize) -> Vec<Job> {
    let group = &mut state.groups[at];
    let take = group.jobs.len().min(max_batch);
    let jobs: Vec<Job> = group.jobs.drain(..take).collect();
    if group.jobs.is_empty() {
        state.groups.remove(at);
    }
    state.depth -= jobs.len();
    jobs
}

/// Steals work from the deepest peer: its trailing model group, or — when
/// only one group exists — the back half of that group's jobs, so a
/// single hot model still spreads across shards.
fn steal(pool: &PoolInner, thief: usize) -> Option<ModelGroup> {
    let victim = pool
        .counters
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != thief)
        .map(|(i, c)| (c.queue_depth.load(Ordering::Relaxed), i))
        .max()?;
    // Not worth the locks for a single queued job.
    if victim.0 < 2 {
        return None;
    }
    let shard = &pool.shards[victim.1];
    let mut state = shard.state.lock().expect("shard lock");
    let group = if state.groups.len() > 1 {
        state.groups.pop_back()?
    } else {
        let front = state.groups.front_mut()?;
        if front.jobs.len() < 2 {
            return None;
        }
        let keep = front.jobs.len() / 2;
        let stolen: VecDeque<Job> = front.jobs.split_off(keep);
        ModelGroup {
            model: Arc::clone(&front.model),
            jobs: stolen,
        }
    };
    state.depth -= group.jobs.len();
    pool.counters[victim.1]
        .queue_depth
        .store(state.depth, Ordering::Relaxed);
    drop(state);
    pool.counters[thief].steals.fetch_add(1, Ordering::Relaxed);
    pool.metrics.record_steal();
    Some(group)
}

// ----------------------------------------------------------- batch run

/// Runs one coalesced same-model batch and fans the per-sample logits
/// back out through each job's reply.
fn run_batch(pool: &PoolInner, index: usize, jobs: Vec<Job>) {
    let _dispatch = photonn_trace::span("serve.shard_dispatch");
    let threads = pool.policy.threads;
    let model = Arc::clone(&jobs[0].model);
    pool.metrics.record_batch(jobs.len());
    if pool.admission.level() > 0 {
        pool.metrics.record_degraded_batch();
    }
    pool.counters[index].batches.fetch_add(1, Ordering::Relaxed);
    // Each job's queue wait ended the moment this batch started; the
    // interval is reconstructed from the enqueue instant rather than held
    // open across threads.
    if photonn_trace::enabled() {
        let dispatch_ns = photonn_trace::now_ns();
        for job in &jobs {
            let start = photonn_trace::instant_ns(job.enqueued);
            photonn_trace::record_span("serve.queue_wait", start, dispatch_ns);
        }
    }
    let intensity = match &pool.cache {
        None => {
            let images: Vec<&Grid> = {
                let _span = photonn_trace::span("serve.batch_assemble");
                jobs.iter().map(|j| &j.image).collect()
            };
            let _span = photonn_trace::span("serve.forward");
            model.intensity_batch(&images, threads)
        }
        Some(cache) => run_with_cache(pool, cache, &model, &jobs, threads),
    };
    let cols = intensity.cols();
    let regions = model.regions();
    let done = Instant::now();
    pool.counters[index]
        .jobs
        .fetch_add(jobs.len() as u64, Ordering::Relaxed);
    for (job, sample) in jobs.into_iter().zip(intensity.samples()) {
        let logits = job.head.readout(sample, cols, regions);
        let us = done.duration_since(job.enqueued).as_micros() as u64;
        pool.metrics.record_latency_us(us);
        pool.metrics.record_model_latency(model.name(), us);
        pool.admission.observe(us);
        job.reply.complete(logits);
    }
}

/// Cache-assisted batch execution: resolve each image's mask-independent
/// first hop from the LRU, compute the misses as one batched hop, then run
/// the model's masked propagation from the assembled field stack.
/// Per-sample determinism of the batched engine makes this path
/// bit-identical to the uncached one.
fn run_with_cache(
    pool: &PoolInner,
    cache: &FirstHopCache,
    model: &ServedModel,
    jobs: &[Job],
    threads: usize,
) -> BatchGrid {
    let mut hops: Vec<Option<Arc<CGrid>>> = Vec::with_capacity(jobs.len());
    // Misses grouped by key: a burst of identical images coalesced into
    // one batch — the cache's target workload — must compute each
    // distinct first hop once, not once per request.
    let mut misses: Vec<(Vec<u8>, Vec<usize>)> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        let key = FirstHopCache::key(&job.image);
        let cached = cache.get(&key);
        if cached.is_some() {
            pool.metrics.record_cache_hit();
        } else {
            pool.metrics.record_cache_miss();
            match misses.iter_mut().find(|(k, _)| *k == key) {
                Some((_, indices)) => indices.push(i),
                None => misses.push((key, vec![i])),
            }
        }
        hops.push(cached);
    }
    if !misses.is_empty() {
        let miss_images: Vec<&Grid> = misses
            .iter()
            .map(|(_, indices)| &jobs[indices[0]].image)
            .collect();
        let fresh = {
            let _span = photonn_trace::span("serve.forward");
            model.donn().first_hop_batch(&miss_images, threads)
        };
        for (slot, (key, indices)) in misses.into_iter().enumerate() {
            let field = Arc::new(fresh.to_cgrid(slot));
            cache.insert(key, Arc::clone(&field));
            for i in indices {
                hops[i] = Some(Arc::clone(&field));
            }
        }
    }
    // Deinterleave the resolved fields into the planar batch stack
    // outside any cache lock (the Arc clones above were pointer-sized).
    let n = model.grid();
    let stack = {
        let _span = photonn_trace::span("serve.batch_assemble");
        let mut stack = BatchCGrid::zeros(jobs.len(), n, n);
        for (b, hop) in hops.iter().enumerate() {
            stack.set_sample(b, hop.as_deref().expect("resolved"));
        }
        stack
    };
    let _span = photonn_trace::span("serve.forward");
    model.intensity_from_first_hop(stack, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::Waker;
    use photonn_datasets::{Dataset, Family};
    use photonn_donn::{Donn, DonnConfig};
    use photonn_math::Rng;

    fn registry() -> (Arc<ModelRegistry>, Donn) {
        let mut rng = Rng::seed_from(3);
        let donn = Donn::random(DonnConfig::scaled(32), &mut rng);
        let mut reg = ModelRegistry::new();
        reg.register("ideal", donn.clone());
        reg.register_quantized("q8", &donn, 8);
        (Arc::new(reg), donn)
    }

    fn images(count: usize) -> Vec<Grid> {
        let data = Dataset::synthetic(Family::Mnist, count, 11).resized(32);
        (0..count).map(|i| data.image(i).clone()).collect()
    }

    fn policy(max_batch: usize, max_wait_us: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_wait_us,
            queue_capacity: 256,
            threads: 2,
        }
    }

    #[test]
    fn multi_shard_pool_serves_bit_identical_logits() {
        let (reg, donn) = registry();
        let metrics = Arc::new(Metrics::new());
        let pool = ShardPool::new(reg, policy(8, 2_000), 4, None, Arc::clone(&metrics), 0);
        let imgs = images(12);
        let receivers: Vec<_> = imgs
            .iter()
            .map(|img| {
                let model = pool.resolve(None).unwrap().clone();
                let (tx, rx) = mpsc::channel();
                pool.submit(&model, ReadoutHead::Sum, img.clone(), Reply::Channel(tx))
                    .unwrap();
                rx
            })
            .collect();
        for (img, rx) in imgs.iter().zip(receivers) {
            assert_eq!(
                rx.recv().unwrap(),
                donn.logits(img),
                "shard routed wrong sample"
            );
        }
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn work_stealing_spreads_a_hot_model_across_shards() {
        let (reg, donn) = registry();
        let metrics = Arc::new(Metrics::new());
        // One model, two shards, long coalescing wait and a small batch
        // ceiling: the routed shard accumulates a backlog the idle shard
        // must steal from.
        let pool = ShardPool::new(
            reg,
            BatchPolicy {
                max_batch: 2,
                max_wait_us: 50_000,
                queue_capacity: 256,
                threads: 1,
            },
            2,
            None,
            Arc::clone(&metrics),
            0,
        );
        let imgs = images(16);
        let model = pool.resolve(None).unwrap().clone();
        // Whether the idle shard wins the race against the home shard's
        // own drain depends on thread scheduling, so burst repeatedly; a
        // single stolen batch anywhere proves the mechanism.
        for round in 0..50 {
            let receivers: Vec<_> = imgs
                .iter()
                .map(|img| {
                    let (tx, rx) = mpsc::channel();
                    pool.submit(&model, ReadoutHead::Sum, img.clone(), Reply::Channel(tx))
                        .unwrap();
                    rx
                })
                .collect();
            for (img, rx) in imgs.iter().zip(receivers) {
                assert_eq!(rx.recv().unwrap(), donn.logits(img));
            }
            let snap = metrics.snapshot();
            if snap.steals_total > 0 && snap.per_shard.iter().all(|s| s.batches > 0) {
                return;
            }
            assert!(
                round < 49,
                "idle shard never stole from the backlog: {snap:?}"
            );
        }
    }

    #[test]
    fn full_newer_group_neither_waits_behind_nor_starves_an_older_group() {
        let (reg, donn) = registry();
        let metrics = Arc::new(Metrics::new());
        // One shard so both models share a queue; a 2 s coalescing wait
        // so the older, non-full group parks the dispatcher.
        let pool = ShardPool::new(reg, policy(4, 2_000_000), 1, None, metrics, 0);
        let imgs = images(5);
        let ideal = pool.resolve(Some("ideal")).unwrap().clone();
        let q8 = pool.resolve(Some("q8")).unwrap().clone();
        let (tx, old_rx) = mpsc::channel();
        pool.submit(&ideal, ReadoutHead::Sum, imgs[0].clone(), Reply::Channel(tx))
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let full_rxs: Vec<_> = imgs[1..]
            .iter()
            .map(|img| {
                let (tx, rx) = mpsc::channel();
                pool.submit(&q8, ReadoutHead::Sum, img.clone(), Reply::Channel(tx))
                    .unwrap();
                rx
            })
            .collect();
        // The batch-sized q8 group must dispatch right away instead of
        // queueing behind ideal's far-off coalescing deadline.
        for rx in &full_rxs {
            rx.recv_timeout(Duration::from_millis(500))
                .expect("full group stuck behind an older non-full group");
        }
        // And the older group still goes out on its own deadline — the
        // hot model cannot starve it.
        assert_eq!(
            old_rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            donn.logits(&imgs[0]),
            "older group starved or misrouted"
        );
    }

    #[test]
    fn completion_sink_aggregates_batched_requests_in_order() {
        let (reg, donn) = registry();
        let metrics = Arc::new(Metrics::new());
        let pool = ShardPool::new(reg, policy(8, 1_000), 2, None, metrics, 0);
        let waker = Waker::new().unwrap();
        let sink = CompletionSink::new(waker.handle().unwrap());
        let imgs = images(5);
        let model = pool.resolve(None).unwrap().clone();
        let handles = CompletionHandle::batch(&sink, 0xBEEF, 3, imgs.len());
        for (img, handle) in imgs.iter().zip(handles) {
            pool.submit(
                &model,
                ReadoutHead::Sum,
                img.clone(),
                Reply::Completion(handle),
            )
            .unwrap();
        }
        // Wait for the single aggregated completion.
        let deadline = Instant::now() + Duration::from_secs(20);
        let completions = loop {
            let got = sink.drain();
            if !got.is_empty() {
                break got;
            }
            assert!(Instant::now() < deadline, "completion never arrived");
            std::thread::sleep(Duration::from_millis(2));
        };
        assert_eq!(completions.len(), 1);
        let c = &completions[0];
        assert_eq!((c.conn, c.slot), (0xBEEF, 3));
        assert_eq!(c.results.len(), imgs.len());
        for (img, got) in imgs.iter().zip(&c.results) {
            assert_eq!(got, &donn.logits(img), "aggregation reordered inputs");
        }
    }

    #[test]
    fn admission_degrades_under_latency_pressure_and_recovers() {
        let admission = Admission::new(1_000);
        let policy = policy(16, 2_000);
        assert_eq!(admission.effective(&policy), (16, 2_000));
        // A window of slow completions trips a degradation step.
        for _ in 0..ADMISSION_STRIDE {
            admission.observe(50_000);
        }
        assert_eq!(admission.level(), 1);
        assert_eq!(admission.effective(&policy), (8, 1_000));
        // Keep hurting: the level climbs but never below batch=1.
        for _ in 0..(ADMISSION_STRIDE * MAX_DEGRADE_LEVEL as u64) {
            admission.observe(50_000);
        }
        assert_eq!(admission.level(), MAX_DEGRADE_LEVEL);
        assert!(admission.effective(&policy).0 >= 1);
        // Fast completions wash the slow ones out of the window and the
        // level steps back down to healthy.
        for _ in 0..(ADMISSION_WINDOW as u64 + ADMISSION_STRIDE * 10) {
            admission.observe(10);
        }
        assert_eq!(admission.level(), 0);
        assert_eq!(admission.effective(&policy), (16, 2_000));
    }

    #[test]
    fn disabled_admission_never_degrades() {
        let admission = Admission::new(0);
        for _ in 0..(ADMISSION_STRIDE * 4) {
            admission.observe(u64::MAX / 2);
        }
        assert_eq!(admission.level(), 0);
    }

    #[test]
    fn differential_head_jobs_coexist_with_sum_jobs_in_one_batch() {
        let (reg, donn) = registry();
        let metrics = Arc::new(Metrics::new());
        // Long wait so both jobs coalesce into one batch.
        let pool = ShardPool::new(reg, policy(8, 50_000), 1, None, metrics, 0);
        let img = images(1).remove(0);
        let model = pool.resolve(None).unwrap().clone();
        let (tx_sum, rx_sum) = mpsc::channel();
        let (tx_diff, rx_diff) = mpsc::channel();
        pool.submit(
            &model,
            ReadoutHead::Sum,
            img.clone(),
            Reply::Channel(tx_sum),
        )
        .unwrap();
        pool.submit(
            &model,
            ReadoutHead::Differential,
            img.clone(),
            Reply::Channel(tx_diff),
        )
        .unwrap();
        let sum = rx_sum.recv().unwrap();
        let diff = rx_diff.recv().unwrap();
        assert_eq!(sum, donn.logits(&img), "sum head must stay bit-identical");
        assert_ne!(sum, diff, "differential head must differ from plain sums");
        assert!(diff.iter().all(|v| v.is_finite() && v.abs() <= 1.0 + 1e-9));
    }
}
