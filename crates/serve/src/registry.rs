//! The model registry: named, immutable, ready-to-serve DONN variants.
//!
//! A production deployment rarely serves one set of masks: the paper's
//! deploy-gap study contrasts the *ideal* numerical model with what the
//! fabricated hardware actually computes, and discrete-level SLMs serve
//! *quantized* masks. The registry holds all of them side by side as
//! [`ServedModel`]s — each with its per-layer complex transmissions
//! precomputed at registration so the per-request path is pure batched
//! propagation — and routes requests by name.
//!
//! Every registered model must be [`optics_compatible`](photonn_donn::DonnConfig::optics_compatible) with
//! the first one: same grid, spacing, kernel and padding. That invariant
//! is what lets one input-hop cache serve every variant.

use photonn_donn::deploy::FabricationModel;
use photonn_donn::quantize::quantize_mask;
use photonn_donn::{Donn, Region};
use photonn_math::{BatchCGrid, BatchGrid, CGrid, Grid, Rng};
use std::fmt;
use std::sync::Arc;

/// How a served variant was derived from its base model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VariantKind {
    /// The numerical model as trained.
    Ideal,
    /// Masks snapped to `levels` uniform phase steps (discrete SLM).
    Quantized {
        /// Number of phase levels.
        levels: usize,
    },
    /// Transmissions corrupted by interpixel crosstalk (deployed optics).
    Deployed {
        /// The full fabrication model (coefficient *and* neighborhood —
        /// both shape the served transmissions).
        fab: FabricationModel,
    },
    /// Masks perturbed by seeded Gaussian phase noise — the
    /// weight-noise-injection robustness probe of arXiv:2006.04462,
    /// served side by side with the clean model so the deploy gap can be
    /// measured per request.
    NoiseInjected {
        /// Standard deviation of the phase noise, radians.
        sigma: f64,
        /// Seed of the noise draw (the variant is reproducible).
        seed: u64,
    },
}

impl fmt::Display for VariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariantKind::Ideal => write!(f, "ideal"),
            VariantKind::Quantized { levels } => write!(f, "quantized({levels})"),
            VariantKind::Deployed { fab } => write!(f, "deployed(k={})", fab.crosstalk),
            VariantKind::NoiseInjected { sigma, seed } => {
                write!(f, "noise_injected(sigma={sigma},seed={seed})")
            }
        }
    }
}

/// A named model variant with its serving transmissions precomputed.
pub struct ServedModel {
    name: String,
    donn: Arc<Donn>,
    transmissions: Vec<CGrid>,
    kind: VariantKind,
}

impl ServedModel {
    fn new(name: String, donn: Arc<Donn>, kind: VariantKind) -> Self {
        let transmissions = match kind {
            VariantKind::Ideal
            | VariantKind::Quantized { .. }
            | VariantKind::NoiseInjected { .. } => {
                donn.masks().iter().map(CGrid::from_phase).collect()
            }
            VariantKind::Deployed { fab } => fab.transmissions(&donn),
        };
        ServedModel {
            name,
            donn,
            transmissions,
            kind,
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How this variant was derived.
    pub fn kind(&self) -> VariantKind {
        self.kind
    }

    /// The underlying model.
    pub fn donn(&self) -> &Arc<Donn> {
        &self.donn
    }

    /// Grid side length of expected input images.
    pub fn grid(&self) -> usize {
        self.donn.config().grid()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.donn.config().detector.num_classes
    }

    /// Batched logits through this variant's transmissions. Empty batches
    /// yield an empty vector.
    ///
    /// # Panics
    ///
    /// Panics if any image is not grid-sized.
    pub fn logits_batch(&self, images: &[&Grid], threads: usize) -> Vec<Vec<f64>> {
        if images.is_empty() {
            return Vec::new();
        }
        let field = self.donn.first_hop_batch(images, threads);
        self.logits_from_first_hop(field, threads)
    }

    /// Batched logits from already-propagated first-hop fields (the
    /// cache-assisted entry point).
    ///
    /// # Panics
    ///
    /// Panics if the fields are not grid-sized.
    pub fn logits_from_first_hop(&self, field: BatchCGrid, threads: usize) -> Vec<Vec<f64>> {
        self.donn
            .logits_batch_with_transmissions(&self.transmissions, field, threads)
    }

    /// Batched detector-plane intensity through this variant's
    /// transmissions — the entry point for serving-side selectable
    /// readout heads (the sum head over this plane is bit-identical to
    /// [`ServedModel::logits_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or any image is not grid-sized.
    pub fn intensity_batch(&self, images: &[&Grid], threads: usize) -> BatchGrid {
        let field = self.donn.first_hop_batch(images, threads);
        self.intensity_from_first_hop(field, threads)
    }

    /// Batched detector-plane intensity from already-propagated first-hop
    /// fields (the cache-assisted entry point).
    ///
    /// # Panics
    ///
    /// Panics if the fields are not grid-sized.
    pub fn intensity_from_first_hop(&self, field: BatchCGrid, threads: usize) -> BatchGrid {
        self.donn
            .intensity_batch_with_transmissions(&self.transmissions, field, threads)
    }

    /// Detector regions of the underlying model, in class order.
    pub fn regions(&self) -> &[Region] {
        self.donn.regions()
    }
}

impl fmt::Debug for ServedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServedModel")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("grid", &self.grid())
            .finish()
    }
}

/// A name-addressed collection of [`ServedModel`]s sharing one optical
/// front end. The first registered model is the default route.
#[derive(Clone, Default, Debug)]
pub struct ModelRegistry {
    entries: Vec<Arc<ServedModel>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Registers a model as the ideal (as-trained) variant.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or if the model's optics differ from the
    /// already-registered models (see [`optics_compatible`](photonn_donn::DonnConfig::optics_compatible)).
    pub fn register(&mut self, name: impl Into<String>, donn: Donn) {
        self.add(name.into(), Arc::new(donn), VariantKind::Ideal);
    }

    /// Registers a quantized variant: `base`'s masks snapped to `levels`
    /// uniform phase steps.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name, incompatible optics, or `levels == 0`.
    pub fn register_quantized(&mut self, name: impl Into<String>, base: &Donn, levels: usize) {
        let mut quantized = base.clone();
        quantized.set_masks(
            base.masks()
                .iter()
                .map(|m| quantize_mask(m, levels))
                .collect(),
        );
        self.add(
            name.into(),
            Arc::new(quantized),
            VariantKind::Quantized { levels },
        );
    }

    /// Registers a noise-injected variant: `base`'s masks perturbed by
    /// seeded Gaussian phase noise of standard deviation `sigma` radians,
    /// wrapped back into the `[0, 2π)` mask convention. This is the
    /// weight-noise-injection robustness probe of arXiv:2006.04462 as a
    /// servable model: clients A/B the clean and noisy variants per
    /// request to measure deploy-gap sensitivity.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name, incompatible optics, or a negative or
    /// non-finite `sigma`.
    pub fn register_noise_injected(
        &mut self,
        name: impl Into<String>,
        base: &Donn,
        sigma: f64,
        seed: u64,
    ) {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "noise sigma must be finite and non-negative"
        );
        let mut rng = Rng::seed_from(seed);
        let mut noisy = base.clone();
        noisy.set_masks(
            base.masks()
                .iter()
                .map(|mask| {
                    let mut out = mask.clone();
                    for v in out.as_mut_slice() {
                        *v = (*v + rng.normal_with(0.0, sigma)).rem_euclid(std::f64::consts::TAU);
                    }
                    out
                })
                .collect(),
        );
        self.add(
            name.into(),
            Arc::new(noisy),
            VariantKind::NoiseInjected { sigma, seed },
        );
    }

    /// Registers a deployed variant: `base` served through a fabrication
    /// model's crosstalk-corrupted transmissions.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or incompatible optics.
    pub fn register_deployed(
        &mut self,
        name: impl Into<String>,
        base: &Donn,
        fab: FabricationModel,
    ) {
        self.add(
            name.into(),
            Arc::new(base.clone()),
            VariantKind::Deployed { fab },
        );
    }

    fn add(&mut self, name: String, donn: Arc<Donn>, kind: VariantKind) {
        assert!(
            self.get(&name).is_none(),
            "model '{name}' already registered"
        );
        if let Some(first) = self.entries.first() {
            assert!(
                first.donn.config().optics_compatible(donn.config()),
                "model '{name}' has incompatible optics with '{}'",
                first.name
            );
        }
        self.entries
            .push(Arc::new(ServedModel::new(name, donn, kind)));
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<&Arc<ServedModel>> {
        self.entries.iter().find(|m| m.name == name)
    }

    /// The default route (first registered model).
    pub fn default_model(&self) -> Option<&Arc<ServedModel>> {
        self.entries.first()
    }

    /// All models in registration order.
    pub fn models(&self) -> &[Arc<ServedModel>] {
        &self.entries
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_datasets::{Dataset, Family};
    use photonn_donn::DonnConfig;
    use photonn_math::Rng;

    fn base() -> Donn {
        let mut rng = Rng::seed_from(3);
        Donn::random(DonnConfig::scaled(32), &mut rng)
    }

    fn three_variant_registry(donn: &Donn) -> ModelRegistry {
        let mut reg = ModelRegistry::new();
        reg.register("ideal", donn.clone());
        reg.register_quantized("q8", donn, 8);
        reg.register_deployed("fab", donn, FabricationModel::new(0.12));
        reg
    }

    #[test]
    fn routes_by_name_with_first_as_default() {
        let donn = base();
        let reg = three_variant_registry(&donn);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.default_model().unwrap().name(), "ideal");
        assert_eq!(
            reg.get("q8").unwrap().kind(),
            VariantKind::Quantized { levels: 8 }
        );
        assert!(reg.get("nope").is_none());
        assert_eq!(reg.get("fab").unwrap().num_classes(), 10);
    }

    #[test]
    fn ideal_variant_is_bit_identical_to_donn_logits_batch() {
        let donn = base();
        let reg = three_variant_registry(&donn);
        let data = Dataset::synthetic(Family::Mnist, 5, 4).resized(32);
        let images: Vec<&Grid> = (0..5).map(|i| data.image(i)).collect();
        assert_eq!(
            reg.get("ideal").unwrap().logits_batch(&images, 2),
            donn.logits_batch(&images, 2)
        );
    }

    #[test]
    fn variants_actually_differ_from_ideal() {
        let donn = base();
        let reg = three_variant_registry(&donn);
        let data = Dataset::synthetic(Family::Mnist, 3, 9).resized(32);
        let images: Vec<&Grid> = (0..3).map(|i| data.image(i)).collect();
        let ideal = reg.get("ideal").unwrap().logits_batch(&images, 2);
        let q = reg.get("q8").unwrap().logits_batch(&images, 2);
        let fab = reg.get("fab").unwrap().logits_batch(&images, 2);
        assert_ne!(ideal, q, "8-level quantization must move logits");
        assert_ne!(ideal, fab, "crosstalk must move logits");
    }

    #[test]
    fn deployed_variant_matches_fabrication_model_path() {
        use photonn_donn::deploy::Neighborhood;
        let donn = base();
        // A non-default neighborhood pins that the registry serves the
        // *given* fabrication model, not a reconstruction of it.
        let eight = FabricationModel::new(0.1);
        let four = FabricationModel {
            neighborhood: Neighborhood::Four,
            ..eight
        };
        let mut reg = ModelRegistry::new();
        reg.register_deployed("fab", &donn, four);
        let data = Dataset::synthetic(Family::Mnist, 4, 2).resized(32);
        let images: Vec<&Grid> = (0..4).map(|i| data.image(i)).collect();
        let served = reg.get("fab").unwrap().logits_batch(&images, 2);
        assert_eq!(served, four.logits_batch(&donn, &images, 2));
        assert_ne!(
            served,
            eight.logits_batch(&donn, &images, 2),
            "neighborhood must reach the served transmissions"
        );
    }

    #[test]
    fn first_hop_entry_matches_direct_path() {
        let donn = base();
        let reg = three_variant_registry(&donn);
        let data = Dataset::synthetic(Family::Mnist, 4, 6).resized(32);
        let images: Vec<&Grid> = (0..4).map(|i| data.image(i)).collect();
        for model in reg.models() {
            let direct = model.logits_batch(&images, 2);
            let hops: Vec<CGrid> = images.iter().map(|i| donn.first_hop(i)).collect();
            let via = model.logits_from_first_hop(BatchCGrid::from_samples(&hops), 2);
            assert_eq!(direct, via, "model {}", model.name());
        }
    }

    #[test]
    fn intensity_entry_points_back_the_logits_paths_bitwise() {
        let donn = base();
        let reg = three_variant_registry(&donn);
        let data = Dataset::synthetic(Family::Mnist, 4, 6).resized(32);
        let images: Vec<&Grid> = (0..4).map(|i| data.image(i)).collect();
        let model = reg.get("q8").unwrap();
        let logits = model.logits_batch(&images, 2);
        let intensity = model.intensity_batch(&images, 2);
        let cols = intensity.cols();
        for (sample, want) in intensity.samples().zip(&logits) {
            let sums = photonn_donn::region_sums_planar(sample, cols, model.regions());
            assert_eq!(
                &sums, want,
                "intensity + planar sums drifted from logits_batch"
            );
        }
    }

    #[test]
    fn noise_injected_variant_is_seeded_and_in_range() {
        let donn = base();
        let mut reg = ModelRegistry::new();
        reg.register("ideal", donn.clone());
        reg.register_noise_injected("noisy", &donn, 0.05, 42);
        reg.register_noise_injected("noisy2", &donn, 0.05, 42);
        reg.register_noise_injected("noisy3", &donn, 0.05, 43);
        let data = Dataset::synthetic(Family::Mnist, 3, 9).resized(32);
        let images: Vec<&Grid> = (0..3).map(|i| data.image(i)).collect();
        let clean = reg.get("ideal").unwrap().logits_batch(&images, 2);
        let a = reg.get("noisy").unwrap().logits_batch(&images, 2);
        let b = reg.get("noisy2").unwrap().logits_batch(&images, 2);
        let c = reg.get("noisy3").unwrap().logits_batch(&images, 2);
        assert_ne!(clean, a, "sigma=0.05 must move logits");
        assert_eq!(a, b, "same seed must reproduce the same variant");
        assert_ne!(a, c, "different seed must draw different noise");
        // Masks stay in the repo's [0, 2π) phase convention.
        for mask in reg.get("noisy").unwrap().donn().masks() {
            assert!(mask
                .as_slice()
                .iter()
                .all(|&v| (0.0..std::f64::consts::TAU).contains(&v)));
        }
        assert_eq!(
            reg.get("noisy").unwrap().kind(),
            VariantKind::NoiseInjected {
                sigma: 0.05,
                seed: 42
            }
        );
    }

    #[test]
    fn zero_sigma_noise_variant_matches_ideal() {
        let donn = base();
        let mut reg = ModelRegistry::new();
        reg.register("ideal", donn.clone());
        reg.register_noise_injected("noise0", &donn, 0.0, 1);
        let data = Dataset::synthetic(Family::Mnist, 2, 5).resized(32);
        let images: Vec<&Grid> = (0..2).map(|i| data.image(i)).collect();
        assert_eq!(
            reg.get("ideal").unwrap().logits_batch(&images, 1),
            reg.get("noise0").unwrap().logits_batch(&images, 1),
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_name_rejected() {
        let donn = base();
        let mut reg = ModelRegistry::new();
        reg.register("m", donn.clone());
        reg.register("m", donn);
    }

    #[test]
    #[should_panic(expected = "incompatible optics")]
    fn incompatible_optics_rejected() {
        let mut rng = Rng::seed_from(1);
        let a = Donn::random(DonnConfig::scaled(32), &mut rng);
        let b = Donn::random(DonnConfig::scaled(16), &mut rng);
        let mut reg = ModelRegistry::new();
        reg.register("a", a);
        reg.register("b", b);
    }
}
