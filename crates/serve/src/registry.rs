//! The model registry: named, immutable, ready-to-serve DONN variants.
//!
//! A production deployment rarely serves one set of masks: the paper's
//! deploy-gap study contrasts the *ideal* numerical model with what the
//! fabricated hardware actually computes, and discrete-level SLMs serve
//! *quantized* masks. The registry holds all of them side by side as
//! [`ServedModel`]s — each with its per-layer complex transmissions
//! precomputed at registration so the per-request path is pure batched
//! propagation — and routes requests by name.
//!
//! Every registered model must be [`optics_compatible`](photonn_donn::DonnConfig::optics_compatible) with
//! the first one: same grid, spacing, kernel and padding. That invariant
//! is what lets one input-hop cache serve every variant.

use photonn_donn::deploy::FabricationModel;
use photonn_donn::quantize::quantize_mask;
use photonn_donn::Donn;
use photonn_math::{BatchCGrid, CGrid, Grid};
use std::fmt;
use std::sync::Arc;

/// How a served variant was derived from its base model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VariantKind {
    /// The numerical model as trained.
    Ideal,
    /// Masks snapped to `levels` uniform phase steps (discrete SLM).
    Quantized {
        /// Number of phase levels.
        levels: usize,
    },
    /// Transmissions corrupted by interpixel crosstalk (deployed optics).
    Deployed {
        /// The full fabrication model (coefficient *and* neighborhood —
        /// both shape the served transmissions).
        fab: FabricationModel,
    },
}

impl fmt::Display for VariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariantKind::Ideal => write!(f, "ideal"),
            VariantKind::Quantized { levels } => write!(f, "quantized({levels})"),
            VariantKind::Deployed { fab } => write!(f, "deployed(k={})", fab.crosstalk),
        }
    }
}

/// A named model variant with its serving transmissions precomputed.
pub struct ServedModel {
    name: String,
    donn: Arc<Donn>,
    transmissions: Vec<CGrid>,
    kind: VariantKind,
}

impl ServedModel {
    fn new(name: String, donn: Arc<Donn>, kind: VariantKind) -> Self {
        let transmissions = match kind {
            VariantKind::Ideal | VariantKind::Quantized { .. } => {
                donn.masks().iter().map(CGrid::from_phase).collect()
            }
            VariantKind::Deployed { fab } => fab.transmissions(&donn),
        };
        ServedModel {
            name,
            donn,
            transmissions,
            kind,
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How this variant was derived.
    pub fn kind(&self) -> VariantKind {
        self.kind
    }

    /// The underlying model.
    pub fn donn(&self) -> &Arc<Donn> {
        &self.donn
    }

    /// Grid side length of expected input images.
    pub fn grid(&self) -> usize {
        self.donn.config().grid()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.donn.config().detector.num_classes
    }

    /// Batched logits through this variant's transmissions. Empty batches
    /// yield an empty vector.
    ///
    /// # Panics
    ///
    /// Panics if any image is not grid-sized.
    pub fn logits_batch(&self, images: &[&Grid], threads: usize) -> Vec<Vec<f64>> {
        if images.is_empty() {
            return Vec::new();
        }
        let field = self.donn.first_hop_batch(images, threads);
        self.logits_from_first_hop(field, threads)
    }

    /// Batched logits from already-propagated first-hop fields (the
    /// cache-assisted entry point).
    ///
    /// # Panics
    ///
    /// Panics if the fields are not grid-sized.
    pub fn logits_from_first_hop(&self, field: BatchCGrid, threads: usize) -> Vec<Vec<f64>> {
        self.donn
            .logits_batch_with_transmissions(&self.transmissions, field, threads)
    }
}

impl fmt::Debug for ServedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServedModel")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("grid", &self.grid())
            .finish()
    }
}

/// A name-addressed collection of [`ServedModel`]s sharing one optical
/// front end. The first registered model is the default route.
#[derive(Clone, Default, Debug)]
pub struct ModelRegistry {
    entries: Vec<Arc<ServedModel>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Registers a model as the ideal (as-trained) variant.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or if the model's optics differ from the
    /// already-registered models (see [`optics_compatible`](photonn_donn::DonnConfig::optics_compatible)).
    pub fn register(&mut self, name: impl Into<String>, donn: Donn) {
        self.add(name.into(), Arc::new(donn), VariantKind::Ideal);
    }

    /// Registers a quantized variant: `base`'s masks snapped to `levels`
    /// uniform phase steps.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name, incompatible optics, or `levels == 0`.
    pub fn register_quantized(&mut self, name: impl Into<String>, base: &Donn, levels: usize) {
        let mut quantized = base.clone();
        quantized.set_masks(
            base.masks()
                .iter()
                .map(|m| quantize_mask(m, levels))
                .collect(),
        );
        self.add(
            name.into(),
            Arc::new(quantized),
            VariantKind::Quantized { levels },
        );
    }

    /// Registers a deployed variant: `base` served through a fabrication
    /// model's crosstalk-corrupted transmissions.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or incompatible optics.
    pub fn register_deployed(
        &mut self,
        name: impl Into<String>,
        base: &Donn,
        fab: FabricationModel,
    ) {
        self.add(
            name.into(),
            Arc::new(base.clone()),
            VariantKind::Deployed { fab },
        );
    }

    fn add(&mut self, name: String, donn: Arc<Donn>, kind: VariantKind) {
        assert!(
            self.get(&name).is_none(),
            "model '{name}' already registered"
        );
        if let Some(first) = self.entries.first() {
            assert!(
                first.donn.config().optics_compatible(donn.config()),
                "model '{name}' has incompatible optics with '{}'",
                first.name
            );
        }
        self.entries
            .push(Arc::new(ServedModel::new(name, donn, kind)));
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<&Arc<ServedModel>> {
        self.entries.iter().find(|m| m.name == name)
    }

    /// The default route (first registered model).
    pub fn default_model(&self) -> Option<&Arc<ServedModel>> {
        self.entries.first()
    }

    /// All models in registration order.
    pub fn models(&self) -> &[Arc<ServedModel>] {
        &self.entries
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_datasets::{Dataset, Family};
    use photonn_donn::DonnConfig;
    use photonn_math::Rng;

    fn base() -> Donn {
        let mut rng = Rng::seed_from(3);
        Donn::random(DonnConfig::scaled(32), &mut rng)
    }

    fn three_variant_registry(donn: &Donn) -> ModelRegistry {
        let mut reg = ModelRegistry::new();
        reg.register("ideal", donn.clone());
        reg.register_quantized("q8", donn, 8);
        reg.register_deployed("fab", donn, FabricationModel::new(0.12));
        reg
    }

    #[test]
    fn routes_by_name_with_first_as_default() {
        let donn = base();
        let reg = three_variant_registry(&donn);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.default_model().unwrap().name(), "ideal");
        assert_eq!(
            reg.get("q8").unwrap().kind(),
            VariantKind::Quantized { levels: 8 }
        );
        assert!(reg.get("nope").is_none());
        assert_eq!(reg.get("fab").unwrap().num_classes(), 10);
    }

    #[test]
    fn ideal_variant_is_bit_identical_to_donn_logits_batch() {
        let donn = base();
        let reg = three_variant_registry(&donn);
        let data = Dataset::synthetic(Family::Mnist, 5, 4).resized(32);
        let images: Vec<&Grid> = (0..5).map(|i| data.image(i)).collect();
        assert_eq!(
            reg.get("ideal").unwrap().logits_batch(&images, 2),
            donn.logits_batch(&images, 2)
        );
    }

    #[test]
    fn variants_actually_differ_from_ideal() {
        let donn = base();
        let reg = three_variant_registry(&donn);
        let data = Dataset::synthetic(Family::Mnist, 3, 9).resized(32);
        let images: Vec<&Grid> = (0..3).map(|i| data.image(i)).collect();
        let ideal = reg.get("ideal").unwrap().logits_batch(&images, 2);
        let q = reg.get("q8").unwrap().logits_batch(&images, 2);
        let fab = reg.get("fab").unwrap().logits_batch(&images, 2);
        assert_ne!(ideal, q, "8-level quantization must move logits");
        assert_ne!(ideal, fab, "crosstalk must move logits");
    }

    #[test]
    fn deployed_variant_matches_fabrication_model_path() {
        use photonn_donn::deploy::Neighborhood;
        let donn = base();
        // A non-default neighborhood pins that the registry serves the
        // *given* fabrication model, not a reconstruction of it.
        let eight = FabricationModel::new(0.1);
        let four = FabricationModel {
            neighborhood: Neighborhood::Four,
            ..eight
        };
        let mut reg = ModelRegistry::new();
        reg.register_deployed("fab", &donn, four);
        let data = Dataset::synthetic(Family::Mnist, 4, 2).resized(32);
        let images: Vec<&Grid> = (0..4).map(|i| data.image(i)).collect();
        let served = reg.get("fab").unwrap().logits_batch(&images, 2);
        assert_eq!(served, four.logits_batch(&donn, &images, 2));
        assert_ne!(
            served,
            eight.logits_batch(&donn, &images, 2),
            "neighborhood must reach the served transmissions"
        );
    }

    #[test]
    fn first_hop_entry_matches_direct_path() {
        let donn = base();
        let reg = three_variant_registry(&donn);
        let data = Dataset::synthetic(Family::Mnist, 4, 6).resized(32);
        let images: Vec<&Grid> = (0..4).map(|i| data.image(i)).collect();
        for model in reg.models() {
            let direct = model.logits_batch(&images, 2);
            let hops: Vec<CGrid> = images.iter().map(|i| donn.first_hop(i)).collect();
            let via = model.logits_from_first_hop(BatchCGrid::from_samples(&hops), 2);
            assert_eq!(direct, via, "model {}", model.name());
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_name_rejected() {
        let donn = base();
        let mut reg = ModelRegistry::new();
        reg.register("m", donn.clone());
        reg.register("m", donn);
    }

    #[test]
    #[should_panic(expected = "incompatible optics")]
    fn incompatible_optics_rejected() {
        let mut rng = Rng::seed_from(1);
        let a = Donn::random(DonnConfig::scaled(32), &mut rng);
        let b = Donn::random(DonnConfig::scaled(16), &mut rng);
        let mut reg = ModelRegistry::new();
        reg.register("a", a);
        reg.register("b", b);
    }
}
