//! The event-loop front end: a readiness-polling HTTP/1.1 server over
//! `std::net` that feeds the sharded dispatcher and reports metrics.
//!
//! One event-loop thread owns every connection. Sockets are nonblocking;
//! a [`Poller`] (epoll on Linux, `poll(2)` elsewhere) reports readiness,
//! and each connection is a small state machine: bytes accumulate in a
//! read buffer, [`parse_available`] lifts complete requests out of it
//! zero-copy, inference work is submitted to the [`ShardPool`], and
//! responses serialize into a write buffer drained as the socket allows.
//! Dispatcher shards hand finished batches back through a
//! [`CompletionSink`] whose waker interrupts the poll.
//!
//! Pipelined requests on one connection are answered **in request
//! order** regardless of which shard finished first: each request takes a
//! response *slot*, and only the front slot of a connection may
//! serialize. That write-layer ordering is what lets work-stealing move
//! jobs freely between shards without ever reordering a client's view.
//!
//! Shutdown is graceful: the pool drains (every accepted request is
//! answered), the loop flushes every connection, then everything joins.
//!
//! Two HTTP namespaces share the loop:
//!
//! * `/v1` — the original wire format, **byte-identical** to the
//!   pre-event-loop server (pinned by committed fixtures).
//! * `/v2` — batched inputs, per-request model-variant and readout-head
//!   selection, and structured errors
//!   (`{"code", "message", "retry_after_ms"}`).

use crate::batcher::{BatchPolicy, SubmitError};
use crate::cache::FirstHopCache;
use crate::head::ReadoutHead;
use crate::http::{parse_available, write_response, ParseOutcome, ProtocolError, RequestRef};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::poll::{Interest, Poller, WakeHandle, Waker};
use crate::registry::ModelRegistry;
use crate::shard::{Completion, CompletionHandle, CompletionSink, Reply, ShardPool};
use photonn_donn::argmax;
use photonn_math::Grid;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll timeout while serving; bounds how stale the shutdown check gets
/// when neither sockets nor the waker fire.
const POLL_TIMEOUT: Duration = Duration::from_millis(100);
/// Poll timeout while draining for shutdown.
const SHUTDOWN_POLL: Duration = Duration::from_millis(10);
/// How long the listener stays paused after a persistent `accept` failure
/// (EMFILE/ENFILE under fd pressure) before the loop re-arms it.
const ACCEPT_RETRY: Duration = Duration::from_millis(100);
/// How long shutdown waits for stalled peers before force-closing them.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);
/// Read chunk size per `read(2)` call.
const READ_CHUNK: usize = 16 * 1024;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
/// Connection tokens start here; low half encodes `slot + 2`, high half
/// the slot's generation (so a completion for a closed-and-recycled
/// connection can never reach the wrong peer).
fn conn_token(slot: usize, generation: u32) -> u64 {
    (u64::from(generation) << 32) | (slot as u64 + 2)
}

/// Server construction options — the full set behind [`ServerBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Dispatcher coalescing policy (per shard).
    pub policy: BatchPolicy,
    /// Input-hop cache budget in bytes; `0` disables the cache.
    pub cache_budget_bytes: usize,
    /// Dispatcher shards (each with its own per-model queues; idle
    /// shards steal). `0` is treated as 1.
    pub shards: usize,
    /// Admission-control p99 latency target in microseconds; when the
    /// recent p99 exceeds it, batch ceilings degrade before any request
    /// is shed. `0` disables degradation.
    pub target_p99_us: u64,
    /// `retry_after_ms` hint attached to `/v2` shed (429) responses.
    pub retry_after_ms: u64,
    /// Most concurrent client connections; further accepts are dropped.
    pub max_connections: usize,
    /// Largest accepted request body in bytes.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    /// Defaults: the [`BatchPolicy`] default, a 64 MiB input-hop cache,
    /// up to 4 shards, admission degradation off, 50 ms retry hint,
    /// 8192 connections, 16 MiB bodies.
    fn default() -> Self {
        ServeConfig {
            policy: BatchPolicy::default(),
            cache_budget_bytes: 64 << 20,
            shards: std::thread::available_parallelism().map_or(1, |p| p.get().min(4)),
            target_p99_us: 0,
            retry_after_ms: 50,
            max_connections: 8192,
            max_body_bytes: crate::http::MAX_BODY_BYTES,
        }
    }
}

/// Legacy server construction options, kept so pre-redesign callers
/// compile unchanged. [`ServerBuilder`] exposes the full surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Dispatcher coalescing policy.
    pub policy: BatchPolicy,
    /// Input-hop cache budget in bytes; `0` disables the cache.
    pub cache_budget_bytes: usize,
}

impl Default for ServerConfig {
    /// Default policy with a 64 MiB input-hop cache.
    fn default() -> Self {
        ServerConfig {
            policy: BatchPolicy::default(),
            cache_budget_bytes: 64 << 20,
        }
    }
}

/// Typed constructor for the inference server.
///
/// ```no_run
/// # use photonn_serve::{ModelRegistry, ServerBuilder};
/// # fn demo(registry: ModelRegistry) -> std::io::Result<()> {
/// let server = ServerBuilder::new(registry)
///     .shards(4)
///     .target_p99_us(20_000)
///     .bind("127.0.0.1:8080")?;
/// # drop(server); Ok(())
/// # }
/// ```
pub struct ServerBuilder {
    registry: ModelRegistry,
    config: ServeConfig,
}

impl ServerBuilder {
    /// A builder over `registry` with [`ServeConfig::default`] settings.
    pub fn new(registry: ModelRegistry) -> ServerBuilder {
        ServerBuilder {
            registry,
            config: ServeConfig::default(),
        }
    }

    /// Replaces the whole configuration at once.
    pub fn config(mut self, config: ServeConfig) -> ServerBuilder {
        self.config = config;
        self
    }

    /// Sets the dispatcher coalescing policy.
    pub fn policy(mut self, policy: BatchPolicy) -> ServerBuilder {
        self.config.policy = policy;
        self
    }

    /// Sets the number of dispatcher shards.
    pub fn shards(mut self, shards: usize) -> ServerBuilder {
        self.config.shards = shards;
        self
    }

    /// Sets the input-hop cache budget (`0` disables the cache).
    pub fn cache_budget_bytes(mut self, bytes: usize) -> ServerBuilder {
        self.config.cache_budget_bytes = bytes;
        self
    }

    /// Sets the admission-control p99 target (`0` disables degradation).
    pub fn target_p99_us(mut self, us: u64) -> ServerBuilder {
        self.config.target_p99_us = us;
        self
    }

    /// Sets the `retry_after_ms` hint on `/v2` shed responses.
    pub fn retry_after_ms(mut self, ms: u64) -> ServerBuilder {
        self.config.retry_after_ms = ms;
        self
    }

    /// Sets the concurrent-connection ceiling.
    pub fn max_connections(mut self, connections: usize) -> ServerBuilder {
        self.config.max_connections = connections;
        self
    }

    /// Sets the largest accepted request body.
    pub fn max_body_bytes(mut self, bytes: usize) -> ServerBuilder {
        self.config.max_body_bytes = bytes;
        self
    }

    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// event loop.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding or poller creation.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty or the policy is degenerate.
    pub fn bind(self, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let mut config = self.config;
        config.shards = config.shards.max(1);
        let metrics = Arc::new(Metrics::new());
        let cache = if config.cache_budget_bytes > 0 {
            Some(FirstHopCache::new(config.cache_budget_bytes))
        } else {
            None
        };
        let pool = ShardPool::new(
            Arc::new(self.registry),
            config.policy,
            config.shards,
            cache,
            Arc::clone(&metrics),
            config.target_p99_us,
        );
        let core = Arc::new(Core {
            pool,
            metrics,
            shutting: AtomicBool::new(false),
            config,
        });
        let waker = Waker::new()?;
        let wake = waker.handle()?;
        let sink = CompletionSink::new(waker.handle()?);
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(waker.fd(), TOKEN_WAKER, Interest::READ)?;
        let event_loop = EventLoop {
            core: Arc::clone(&core),
            listener,
            poller,
            waker,
            sink,
            conns: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            active: 0,
            pending: 0,
            shutdown_seen: None,
            accept_paused: None,
        };
        let thread = std::thread::Builder::new()
            .name("photonn-eventloop".into())
            .spawn(move || event_loop.run())
            .expect("spawn event loop");
        Ok(ServerHandle {
            addr,
            core,
            wake,
            event_loop: Some(thread),
        })
    }
}

/// The inference server's legacy constructor namespace.
pub struct Server;

impl Server {
    /// Binds `addr` and starts serving `registry` under the legacy
    /// `config` — a thin shim over [`ServerBuilder`], kept so
    /// pre-redesign call sites compile unchanged.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty or the policy is degenerate.
    #[deprecated(note = "use ServerBuilder for the full v2 surface")]
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: ModelRegistry,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        ServerBuilder::new(registry)
            .policy(config.policy)
            .cache_budget_bytes(config.cache_budget_bytes)
            .bind(addr)
    }
}

struct Core {
    pool: ShardPool,
    metrics: Arc<Metrics>,
    shutting: AtomicBool,
    config: ServeConfig,
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    core: Arc<Core>,
    wake: WakeHandle,
    event_loop: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.core.metrics.snapshot()
    }

    /// Current admission-control degradation level (0 = healthy).
    pub fn admission_level(&self) -> usize {
        self.core.pool.admission_level()
    }

    /// Graceful shutdown: stop accepting, drain the dispatcher pool
    /// (queued requests are still answered), flush every connection, join
    /// every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.core.shutting.swap(true, Ordering::SeqCst) {
            return;
        }
        // Draining the pool first guarantees every pending slot's
        // completion is on the sink before the loop starts closing.
        self.core.pool.shutdown();
        self.wake.wake();
        if let Some(handle) = self.event_loop.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// -------------------------------------------------- connection machine

/// Which API dialect renders a pending slot's response.
enum Api {
    V1,
    V2,
}

/// A submitted inference request awaiting its completion.
struct Pending {
    api: Api,
    model: String,
    head: ReadoutHead,
    started: Instant,
    close: bool,
}

/// A fully-formed response awaiting serialization.
struct Response {
    status: u16,
    body: String,
    close: bool,
}

enum SlotState {
    Pending(Pending),
    Ready(Response),
}

/// One response slot; slots serialize strictly in id order per
/// connection, which is what keeps pipelined responses in request order.
struct Slot {
    id: usize,
    state: SlotState,
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    slots: VecDeque<Slot>,
    next_slot: usize,
    interest: Interest,
    close_after_flush: bool,
    /// Peer hung up (or a protocol error occurred): stop reading, flush
    /// what is owed, close.
    read_closed: bool,
}

impl Conn {
    fn pending_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Pending(_)))
            .count()
    }
}

// ----------------------------------------------------------- the loop

struct EventLoop {
    core: Arc<Core>,
    listener: TcpListener,
    poller: Poller,
    waker: Waker,
    sink: Arc<CompletionSink>,
    conns: Vec<Option<Conn>>,
    generations: Vec<u32>,
    free: Vec<usize>,
    active: usize,
    pending: usize,
    shutdown_seen: Option<Instant>,
    /// When `Some`, the listener is deregistered after a persistent
    /// `accept` failure; holds the pause start for the re-arm backoff.
    accept_paused: Option<Instant>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = Vec::new();
        loop {
            let shutting = self.core.shutting.load(Ordering::SeqCst);
            if shutting && self.shutdown_seen.is_none() {
                self.shutdown_seen = Some(Instant::now());
            }
            self.maybe_resume_accept();
            let timeout = if shutting {
                SHUTDOWN_POLL
            } else if self.accept_paused.is_some() {
                // Wake in time to re-arm the listener even when every
                // live connection is quiet.
                POLL_TIMEOUT.min(ACCEPT_RETRY)
            } else {
                POLL_TIMEOUT
            };
            {
                let _span = photonn_trace::span("serve.poll_wait");
                if self.poller.wait(&mut events, Some(timeout)).is_err() {
                    // An unrecoverable poller failure: nothing left to
                    // drive; drop every connection.
                    return;
                }
            }
            let mut woke = false;
            for event in events.drain(..) {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(shutting),
                    TOKEN_WAKER => woke = true,
                    token => self.conn_ready(token, event.readable, event.writable),
                }
            }
            if woke {
                self.waker.drain();
            }
            // Completions are drained every iteration (not only on a
            // wake): a wake posted while the loop was mid-iteration
            // coalesces into the level-triggered waker byte, and draining
            // here keeps the common case one lock acquisition.
            for completion in self.sink.drain() {
                self.apply_completion(completion);
            }
            if shutting && self.drain_for_shutdown() {
                return;
            }
        }
    }

    // ---- accept

    fn accept_ready(&mut self, shutting: bool) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted | io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    continue // transient: the next accept may succeed
                }
                Err(_) => {
                    // Persistent failure (typically EMFILE/ENFILE when fd
                    // pressure outruns max_connections). Retrying here
                    // would spin this thread forever and starve every
                    // live connection; pause the listener instead and let
                    // run() re-arm it once closes have freed fds.
                    self.pause_accept();
                    return;
                }
            };
            if shutting || self.active >= self.core.config.max_connections {
                // Beyond capacity (or draining): shed at the accept
                // boundary; the client sees a clean close.
                drop(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                continue;
            }
            let slot = match self.free.pop() {
                Some(slot) => slot,
                None => {
                    self.conns.push(None);
                    self.generations.push(0);
                    self.conns.len() - 1
                }
            };
            let token = conn_token(slot, self.generations[slot]);
            if self
                .poller
                .register(stream.as_raw_fd(), token, Interest::READ)
                .is_err()
            {
                self.free.push(slot);
                continue;
            }
            self.conns[slot] = Some(Conn {
                stream,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                written: 0,
                slots: VecDeque::new(),
                next_slot: 0,
                interest: Interest::READ,
                close_after_flush: false,
                read_closed: false,
            });
            self.active += 1;
            self.core.metrics.set_connections(self.active);
        }
    }

    /// Takes the listener out of the poll set after a persistent accept
    /// failure, so the level-triggered readiness stops re-firing into a
    /// failing `accept` every iteration.
    fn pause_accept(&mut self) {
        if self.accept_paused.is_none() {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.accept_paused = Some(Instant::now());
        }
    }

    /// Re-arms a paused listener once the backoff has elapsed; on a
    /// failed re-registration the backoff restarts.
    fn maybe_resume_accept(&mut self) {
        let Some(since) = self.accept_paused else {
            return;
        };
        if since.elapsed() < ACCEPT_RETRY {
            return;
        }
        if self
            .poller
            .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .is_ok()
        {
            self.accept_paused = None;
        } else {
            self.accept_paused = Some(Instant::now());
        }
    }

    // ---- per-connection events

    fn decode(&self, token: u64) -> Option<usize> {
        let slot = (token & 0xFFFF_FFFF) as usize - 2;
        if slot >= self.conns.len() || self.generations[slot] != (token >> 32) as u32 {
            return None; // stale: the connection was closed (and possibly recycled)
        }
        self.conns[slot].as_ref()?;
        Some(slot)
    }

    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool) {
        let Some(slot) = self.decode(token) else {
            return;
        };
        let mut conn = self.conns[slot].take().expect("decoded live conn");
        let mut dead = false;
        if readable && !conn.read_closed {
            dead = self.read_and_parse(&mut conn, slot);
        }
        if !dead && (writable || !conn.write_buf.is_empty() || !conn.slots.is_empty()) {
            dead = self.flush(&mut conn);
        }
        self.finish_event(slot, conn, dead);
    }

    /// Re-registers interest or closes, after any event or completion.
    fn finish_event(&mut self, slot: usize, mut conn: Conn, dead: bool) {
        let flushed = conn.write_buf.len() == conn.written;
        let drained = conn.slots.is_empty() && flushed;
        let shutting = self.core.shutting.load(Ordering::SeqCst);
        if dead
            || (conn.close_after_flush && drained)
            || (conn.read_closed && drained)
            || (shutting && drained)
        {
            self.close(slot, conn);
            return;
        }
        let want = Interest {
            readable: !conn.read_closed && !conn.close_after_flush,
            writable: !flushed,
        };
        if want != conn.interest {
            let token = conn_token(slot, self.generations[slot]);
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_err()
            {
                self.close(slot, conn);
                return;
            }
            conn.interest = want;
        }
        self.conns[slot] = Some(conn);
    }

    fn close(&mut self, slot: usize, conn: Conn) {
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.pending -= conn.pending_count();
        self.generations[slot] = self.generations[slot].wrapping_add(1);
        self.active -= 1;
        self.core.metrics.set_connections(self.active);
        self.free.push(slot);
        drop(conn); // closes the socket
    }

    /// Reads whatever the socket has, then lifts complete requests out of
    /// the buffer. Returns `true` when the connection died.
    fn read_and_parse(&mut self, conn: &mut Conn, slot: usize) -> bool {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        let token = conn_token(slot, self.generations[slot]);
        while !conn.close_after_flush {
            let parsed = parse_available(&conn.read_buf, self.core.config.max_body_bytes);
            match parsed {
                Ok(ParseOutcome::Partial) => break,
                Ok(ParseOutcome::Ready { request, consumed }) => {
                    let close = request.wants_close();
                    let slot_id = conn.next_slot;
                    let state = route(&self.core, &self.sink, token, slot_id, &request, close);
                    if matches!(state, SlotState::Pending(_)) {
                        self.pending += 1;
                    }
                    if let SlotState::Ready(r) = &state {
                        if r.close {
                            conn.close_after_flush = true;
                        }
                    } else if close {
                        conn.close_after_flush = true;
                    }
                    conn.slots.push_back(Slot { id: slot_id, state });
                    conn.next_slot += 1;
                    conn.read_buf.drain(..consumed);
                }
                Err(violation) => {
                    let response = protocol_error_response(&violation);
                    conn.slots.push_back(Slot {
                        id: conn.next_slot,
                        state: SlotState::Ready(response),
                    });
                    conn.next_slot += 1;
                    conn.close_after_flush = true;
                    conn.read_closed = true;
                    conn.read_buf.clear();
                }
            }
        }
        false
    }

    // ---- completions

    fn apply_completion(&mut self, completion: Completion) {
        let Some(slot) = self.decode(completion.conn) else {
            return; // client already gone
        };
        let mut conn = self.conns[slot].take().expect("decoded live conn");
        if let Some(entry) = conn.slots.iter_mut().find(|s| s.id == completion.slot) {
            if let SlotState::Pending(pending) = &entry.state {
                entry.state = SlotState::Ready(render(pending, completion.results));
                self.pending -= 1;
            }
        }
        let dead = self.flush(&mut conn);
        self.finish_event(slot, conn, dead);
    }

    // ---- shutdown

    /// Sweeps connections while draining; `true` once the loop may exit.
    fn drain_for_shutdown(&mut self) -> bool {
        let grace_expired = self
            .shutdown_seen
            .is_some_and(|at| at.elapsed() > SHUTDOWN_GRACE);
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            let dead = self.flush(&mut conn);
            if dead || grace_expired {
                self.close(slot, conn);
            } else {
                self.finish_event(slot, conn, false);
            }
        }
        self.active == 0
    }

    /// Serializes every leading ready slot into the write buffer, then
    /// pushes bytes to the socket. Returns `true` when the connection
    /// died.
    fn flush(&mut self, conn: &mut Conn) -> bool {
        while let Some(front) = conn.slots.front() {
            if !matches!(front.state, SlotState::Ready(_)) {
                break;
            }
            let slot = conn.slots.pop_front().expect("checked front");
            let SlotState::Ready(response) = slot.state else {
                unreachable!("checked ready")
            };
            self.core.metrics.record_status(response.status);
            let _span = photonn_trace::span("serve.write");
            write_response(
                &mut conn.write_buf,
                response.status,
                "application/json",
                &response.body,
                response.close,
            )
            .expect("write to Vec cannot fail");
            if response.close {
                conn.close_after_flush = true;
                // Later pipelined slots are behind a close: drop them
                // (any pending among them will resolve into a stale
                // token), keeping the loop-wide pending count honest.
                self.pending -= conn.pending_count();
                conn.slots.clear();
            }
        }
        while conn.written < conn.write_buf.len() {
            let _span = photonn_trace::span("serve.write");
            match conn.stream.write(&conn.write_buf[conn.written..]) {
                Ok(0) => return true,
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        if conn.written == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.written = 0;
        }
        false
    }
}

// ------------------------------------------------------------- routing

fn ready(status: u16, body: String, close: bool) -> SlotState {
    SlotState::Ready(Response {
        status,
        body,
        close,
    })
}

fn error_body(message: &str) -> String {
    Json::object(vec![("error".into(), Json::Str(message.into()))]).to_string()
}

/// The `/v2` structured error document: `{"code", "message",
/// "retry_after_ms"}` with `retry_after_ms` null for non-retryable
/// failures.
fn v2_error_body(code: &str, message: &str, retry_after_ms: Option<u64>) -> String {
    Json::object(vec![
        ("code".into(), Json::Str(code.into())),
        ("message".into(), Json::Str(message.into())),
        (
            "retry_after_ms".into(),
            retry_after_ms.map_or(Json::Null, |ms| Json::Num(ms as f64)),
        ),
    ])
    .to_string()
}

/// Answers a protocol violation in the dialect of the path (when known)
/// and closes the connection.
fn protocol_error_response(violation: &ProtocolError) -> Response {
    let v2 = violation
        .path
        .as_deref()
        .is_some_and(|p| p.starts_with("/v2"));
    if v2 {
        let code = if violation.status == 413 {
            "payload_too_large"
        } else {
            "bad_request"
        };
        Response {
            status: violation.status,
            body: v2_error_body(code, violation.message, None),
            close: true,
        }
    } else {
        // The legacy surface answered every protocol violation 400 with
        // the plain error body — pinned behavior.
        Response {
            status: 400,
            body: error_body(violation.message),
            close: true,
        }
    }
}

fn route(
    core: &Arc<Core>,
    sink: &Arc<CompletionSink>,
    token: u64,
    slot: usize,
    request: &RequestRef<'_>,
    close: bool,
) -> SlotState {
    match (request.method, request.path) {
        ("GET", "/healthz") => ready(
            200,
            Json::object(vec![("status".into(), Json::Str("ok".into()))]).to_string(),
            close,
        ),
        ("GET", "/models") => ready(200, models_body(core), close),
        ("GET", "/v2/models") => ready(200, v2_models_body(core), close),
        ("GET", "/metrics") => ready(200, core.metrics.snapshot().to_json().to_string(), close),
        ("POST", "/v1/logits") => v1_infer(core, sink, token, slot, request.body, close),
        ("POST", "/v2/logits") => v2_infer(core, sink, token, slot, request.body, close),
        ("GET" | "POST", path) if path.starts_with("/v2") => ready(
            404,
            v2_error_body("not_found", "no such endpoint", None),
            close,
        ),
        ("GET" | "POST", _) => ready(404, error_body("no such endpoint"), close),
        (_, path) if path.starts_with("/v2") => ready(
            405,
            v2_error_body("method_not_allowed", "method not allowed", None),
            close,
        ),
        _ => ready(405, error_body("method not allowed"), close),
    }
}

fn models_body(core: &Arc<Core>) -> String {
    let registry = core.pool.registry();
    let models = registry
        .models()
        .iter()
        .map(|m| {
            Json::object(vec![
                ("name".into(), Json::Str(m.name().into())),
                ("kind".into(), Json::Str(m.kind().to_string())),
                ("grid".into(), Json::Num(m.grid() as f64)),
                ("classes".into(), Json::Num(m.num_classes() as f64)),
            ])
        })
        .collect();
    let default = registry
        .default_model()
        .map_or(Json::Null, |m| Json::Str(m.name().into()));
    Json::object(vec![
        ("models".into(), Json::Arr(models)),
        ("default".into(), default),
    ])
    .to_string()
}

/// `/v2/models`: the `/v1` listing plus the selectable readout heads.
fn v2_models_body(core: &Arc<Core>) -> String {
    let registry = core.pool.registry();
    let models = registry
        .models()
        .iter()
        .map(|m| {
            Json::object(vec![
                ("name".into(), Json::Str(m.name().into())),
                ("kind".into(), Json::Str(m.kind().to_string())),
                ("grid".into(), Json::Num(m.grid() as f64)),
                ("classes".into(), Json::Num(m.num_classes() as f64)),
            ])
        })
        .collect();
    let default = registry
        .default_model()
        .map_or(Json::Null, |m| Json::Str(m.name().into()));
    let heads = ReadoutHead::all()
        .iter()
        .map(|h| Json::Str(h.name().into()))
        .collect();
    Json::object(vec![
        ("models".into(), Json::Arr(models)),
        ("default".into(), default),
        ("heads".into(), Json::Arr(heads)),
    ])
    .to_string()
}

/// `POST /v1/logits` — body `{"model": <optional name>, "image": <n*n
/// numbers, flat or as n rows>}`; answers the sample's logits and argmax
/// class. Byte-identical to the pre-redesign server.
fn v1_infer(
    core: &Arc<Core>,
    sink: &Arc<CompletionSink>,
    token: u64,
    slot: usize,
    body: &[u8],
    close: bool,
) -> SlotState {
    let started = Instant::now();
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return ready(400, error_body("body is not UTF-8"), close),
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return ready(400, error_body(&e.to_string()), close),
    };
    let model_name = match doc.get("model") {
        None | Some(Json::Null) => None,
        Some(Json::Str(name)) => Some(name.as_str()),
        Some(_) => return ready(400, error_body("'model' must be a string"), close),
    };
    let image = match parse_image(&doc) {
        Ok(image) => image,
        Err(message) => return ready(400, error_body(&message), close),
    };
    let model = match core.pool.resolve(model_name) {
        Ok(model) => Arc::clone(model),
        Err(e) => return ready(404, error_body(&e.to_string()), close),
    };
    let handle = CompletionHandle::batch(sink, token, slot, 1)
        .pop()
        .expect("one handle");
    match core
        .pool
        .submit(&model, ReadoutHead::Sum, image, Reply::Completion(handle))
    {
        // Counted only on acceptance, as MetricsSnapshot documents;
        // refusals are visible in the 4xx/429 counters.
        Ok(()) => {
            core.metrics.record_request();
            SlotState::Pending(Pending {
                api: Api::V1,
                model: model.name().to_string(),
                head: ReadoutHead::Sum,
                started,
                close,
            })
        }
        Err(SubmitError::QueueFull) => {
            core.metrics.record_shed();
            ready(429, error_body("queue full"), close)
        }
        Err(SubmitError::ShuttingDown) => ready(503, error_body("shutting down"), close),
        Err(e @ SubmitError::UnknownModel(_)) => ready(404, error_body(&e.to_string()), close),
        Err(e @ SubmitError::ShapeMismatch { .. }) => ready(400, error_body(&e.to_string()), close),
    }
}

/// `POST /v2/logits` — body `{"model": <optional name>, "head":
/// <optional "sum"|"differential">, "inputs": [<image>, ...]}`; answers
/// per-input results through one coalesced submission. Errors are
/// structured (`{"code", "message", "retry_after_ms"}`).
fn v2_infer(
    core: &Arc<Core>,
    sink: &Arc<CompletionSink>,
    token: u64,
    slot: usize,
    body: &[u8],
    close: bool,
) -> SlotState {
    let started = Instant::now();
    let bad = |message: &str| ready(400, v2_error_body("bad_request", message, None), close);
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return bad("body is not UTF-8"),
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return bad(&e.to_string()),
    };
    let model_name = match doc.get("model") {
        None | Some(Json::Null) => None,
        Some(Json::Str(name)) => Some(name.as_str()),
        Some(_) => return bad("'model' must be a string"),
    };
    let head = match doc.get("head") {
        None | Some(Json::Null) => ReadoutHead::default(),
        Some(Json::Str(name)) => match ReadoutHead::parse(name) {
            Some(head) => head,
            None => {
                return ready(
                    400,
                    v2_error_body("unknown_head", &format!("unknown head '{name}'"), None),
                    close,
                )
            }
        },
        Some(_) => return bad("'head' must be a string"),
    };
    let inputs = match doc.get("inputs").and_then(Json::as_array) {
        Some(inputs) => inputs,
        None => return bad("'inputs' must be an array"),
    };
    if inputs.is_empty() {
        return bad("'inputs' is empty");
    }
    let mut images = Vec::with_capacity(inputs.len());
    for (i, input) in inputs.iter().enumerate() {
        match image_from_json(input) {
            Ok(image) => images.push(image),
            Err(message) => return bad(&format!("inputs[{i}]: {message}")),
        }
    }
    let model = match core.pool.resolve(model_name) {
        Ok(model) => Arc::clone(model),
        Err(e) => {
            return ready(
                404,
                v2_error_body("unknown_model", &e.to_string(), None),
                close,
            )
        }
    };
    let replies = CompletionHandle::batch(sink, token, slot, images.len())
        .into_iter()
        .map(Reply::Completion)
        .collect();
    match core.pool.submit_batch(&model, head, images, replies) {
        Ok(()) => {
            core.metrics.record_request();
            SlotState::Pending(Pending {
                api: Api::V2,
                model: model.name().to_string(),
                head,
                started,
                close,
            })
        }
        Err(SubmitError::QueueFull) => {
            core.metrics.record_shed();
            ready(
                429,
                v2_error_body("shed", "queue full", Some(core.config.retry_after_ms)),
                close,
            )
        }
        Err(SubmitError::ShuttingDown) => ready(
            503,
            v2_error_body("shutting_down", "server is shutting down", None),
            close,
        ),
        Err(e @ SubmitError::UnknownModel(_)) => ready(
            404,
            v2_error_body("unknown_model", &e.to_string(), None),
            close,
        ),
        Err(e @ SubmitError::ShapeMismatch { .. }) => bad(&e.to_string()),
    }
}

/// Renders a pending slot's response from its completion results.
fn render(pending: &Pending, mut results: Vec<Vec<f64>>) -> Response {
    let latency = Json::Num(pending.started.elapsed().as_micros() as f64);
    let body = match pending.api {
        Api::V1 => {
            let logits = results.pop().expect("v1 has one sample");
            Json::object(vec![
                ("model".into(), Json::Str(pending.model.clone())),
                ("class".into(), Json::Num(argmax(&logits) as f64)),
                ("logits".into(), Json::numbers(&logits)),
                ("latency_us".into(), latency),
            ])
        }
        Api::V2 => {
            let entries = results
                .iter()
                .map(|logits| {
                    Json::object(vec![
                        ("class".into(), Json::Num(argmax(logits) as f64)),
                        ("logits".into(), Json::numbers(logits)),
                    ])
                })
                .collect();
            Json::object(vec![
                ("model".into(), Json::Str(pending.model.clone())),
                ("head".into(), Json::Str(pending.head.name().into())),
                ("results".into(), Json::Arr(entries)),
                ("latency_us".into(), latency),
            ])
        }
    };
    Response {
        status: 200,
        body: body.to_string(),
        close: pending.close,
    }
}

/// Accepts a v1 document's `"image": [v; n*n]` (flat, row-major) or
/// `"image": [[v; n]; n]`.
fn parse_image(doc: &Json) -> Result<Grid, String> {
    let image = doc.get("image").ok_or("'image' must be an array")?;
    image_from_json_with_field(image, "image")
}

/// Accepts one image value — flat `[v; n*n]` or nested `[[v; n]; n]` —
/// phrased with v2's field naming.
fn image_from_json(value: &Json) -> Result<Grid, String> {
    image_from_json_with_field(value, "input")
}

fn image_from_json_with_field(value: &Json, field: &str) -> Result<Grid, String> {
    let items = value
        .as_array()
        .ok_or_else(|| format!("'{field}' must be an array"))?;
    if items.is_empty() {
        return Err(format!("'{field}' is empty"));
    }
    let (values, side) = if items.iter().all(|v| matches!(v, Json::Num(_))) {
        let values: Vec<f64> = items.iter().map(|v| v.as_f64().expect("checked")).collect();
        let side = (values.len() as f64).sqrt().round() as usize;
        if side * side != values.len() {
            return Err(format!(
                "'{field}' length {} is not a perfect square",
                values.len()
            ));
        }
        (values, side)
    } else {
        // Nested rows: every element must be an equal-length number row,
        // and the declared row structure must itself be square — a DONN
        // grid is n×n, so silently reshaping e.g. 64×16 would scramble
        // the pixel layout while passing the later shape check.
        let rows: Vec<&[Json]> = items
            .iter()
            .map(|row| {
                row.as_array()
                    .ok_or_else(|| format!("'{field}' mixes rows and scalars"))
            })
            .collect::<Result<_, _>>()?;
        let width = rows[0].len();
        if rows.len() != width {
            return Err(format!(
                "'{field}' rows declare a {}x{width} shape; a square grid is required",
                rows.len()
            ));
        }
        let mut values = Vec::with_capacity(rows.len() * width);
        for row in &rows {
            if row.len() != width {
                return Err(format!("'{field}' rows have unequal lengths"));
            }
            for v in *row {
                values.push(
                    v.as_f64()
                        .ok_or_else(|| format!("'{field}' contains a non-number"))?,
                );
            }
        }
        (values, width)
    };
    if values.iter().any(|v| !v.is_finite()) {
        return Err(format!("'{field}' contains a non-finite value"));
    }
    Ok(Grid::from_vec(side, side, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_image_accepts_flat_and_nested() {
        let flat = Json::parse(r#"{"image": [0, 1, 2, 3]}"#).unwrap();
        let nested = Json::parse(r#"{"image": [[0, 1], [2, 3]]}"#).unwrap();
        let a = parse_image(&flat).unwrap();
        let b = parse_image(&nested).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.shape(), (2, 2));
        assert_eq!(a[(1, 0)], 2.0);
    }

    #[test]
    fn parse_image_rejects_bad_payloads() {
        for body in [
            r#"{}"#,
            r#"{"image": "x"}"#,
            r#"{"image": []}"#,
            r#"{"image": [0, 1, 2]}"#,
            r#"{"image": [[0, 1], [2]]}"#,
            r#"{"image": [[0, 1], 2]}"#,
            r#"{"image": [0, true, 2, 3]}"#,
            // 1x4 nested: right element count, wrong declared shape.
            r#"{"image": [[0, 1, 2, 3]]}"#,
            // 4x1 nested: transposed non-square declaration.
            r#"{"image": [[0], [1], [2], [3]]}"#,
        ] {
            let doc = Json::parse(body).unwrap();
            assert!(parse_image(&doc).is_err(), "accepted {body}");
        }
    }

    #[test]
    fn v1_error_strings_unchanged_by_shared_image_parser() {
        // These exact strings are pinned by the /v1 byte-compat fixtures;
        // the shared parser must keep producing them for the v1 field.
        let doc = Json::parse(r#"{"model": "ideal"}"#).unwrap();
        assert_eq!(parse_image(&doc).unwrap_err(), "'image' must be an array");
        let doc = Json::parse(r#"{"image": []}"#).unwrap();
        assert_eq!(parse_image(&doc).unwrap_err(), "'image' is empty");
        let doc = Json::parse(r#"{"image": [0, 1, 2]}"#).unwrap();
        assert_eq!(
            parse_image(&doc).unwrap_err(),
            "'image' length 3 is not a perfect square"
        );
        let doc = Json::parse(r#"{"image": [[0, 1], 2]}"#).unwrap();
        assert_eq!(
            parse_image(&doc).unwrap_err(),
            "'image' mixes rows and scalars"
        );
    }

    #[test]
    fn v2_error_body_shape() {
        let body = v2_error_body("shed", "queue full", Some(50));
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("code").and_then(Json::as_str), Some("shed"));
        assert_eq!(
            doc.get("message").and_then(Json::as_str),
            Some("queue full")
        );
        assert_eq!(doc.get("retry_after_ms").and_then(Json::as_usize), Some(50));
        let body = v2_error_body("bad_request", "nope", None);
        let doc = Json::parse(&body).unwrap();
        assert!(matches!(doc.get("retry_after_ms"), Some(Json::Null)));
    }

    #[test]
    fn builder_accumulates_config() {
        let builder = ServerBuilder::new(ModelRegistry::new())
            .shards(3)
            .target_p99_us(5_000)
            .retry_after_ms(120)
            .max_connections(64)
            .max_body_bytes(1 << 20)
            .cache_budget_bytes(0)
            .policy(BatchPolicy::unbatched());
        assert_eq!(builder.config.shards, 3);
        assert_eq!(builder.config.target_p99_us, 5_000);
        assert_eq!(builder.config.retry_after_ms, 120);
        assert_eq!(builder.config.max_connections, 64);
        assert_eq!(builder.config.max_body_bytes, 1 << 20);
        assert_eq!(builder.config.cache_budget_bytes, 0);
        assert_eq!(builder.config.policy, BatchPolicy::unbatched());
    }

    #[test]
    fn conn_tokens_embed_generation() {
        let a = conn_token(5, 0);
        let b = conn_token(5, 1);
        assert_ne!(a, b);
        assert_eq!(a & 0xFFFF_FFFF, b & 0xFFFF_FFFF);
        assert!(conn_token(0, 0) >= 2, "reserved tokens must not collide");
    }
}
