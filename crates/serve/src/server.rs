//! The TCP front end: a threaded HTTP/1.1 listener over `std::net` that
//! feeds the dynamic micro-batcher and reports metrics.
//!
//! One acceptor thread hands each connection to its own handler thread
//! (keep-alive: a connection serves many requests). Handlers park on the
//! batcher's response channel while the dispatcher coalesces traffic, so
//! the number of in-flight HTTP requests — not the number of threads —
//! bounds batching opportunity. Shutdown is graceful: the acceptor stops,
//! handlers finish their in-flight exchanges, and the batcher drains its
//! queue so every accepted request is answered.

use crate::batcher::{BatchPolicy, Batcher, SubmitError};
use crate::cache::FirstHopCache;
use crate::http::{read_request, write_response, Request};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::registry::ModelRegistry;
use photonn_donn::argmax;
use photonn_math::Grid;
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a handler blocks on an idle keep-alive connection before
/// polling the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Per-read timeout once a request has started arriving: generous enough
/// for a slow client to push a multi-megabyte body segment by segment,
/// small enough that a truly stalled peer cannot pin a handler forever.
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Sleep between nonblocking accept attempts; bounds both connection
/// latency under no load and shutdown latency of the acceptor.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Server construction options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Dispatcher coalescing policy.
    pub policy: BatchPolicy,
    /// Input-hop cache budget in bytes; `0` disables the cache.
    pub cache_budget_bytes: usize,
}

impl Default for ServerConfig {
    /// Default policy with a 64 MiB input-hop cache.
    fn default() -> Self {
        ServerConfig {
            policy: BatchPolicy::default(),
            cache_budget_bytes: 64 << 20,
        }
    }
}

/// The inference server. [`Server::bind`] starts it and returns a handle.
pub struct Server;

struct Core {
    batcher: Batcher,
    metrics: Arc<Metrics>,
    shutting: AtomicBool,
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    core: Arc<Core>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `registry` under `config`.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty or the policy is degenerate.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: ModelRegistry,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let cache = if config.cache_budget_bytes > 0 {
            Some(FirstHopCache::new(config.cache_budget_bytes))
        } else {
            None
        };
        let batcher = Batcher::new(
            Arc::new(registry),
            config.policy,
            cache,
            Arc::clone(&metrics),
        );
        let core = Arc::new(Core {
            batcher,
            metrics,
            shutting: AtomicBool::new(false),
        });
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let core = Arc::clone(&core);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("photonn-accept".into())
                .spawn(move || accept_loop(&listener, &core, &handlers))
                .expect("spawn acceptor")
        };
        Ok(ServerHandle {
            addr,
            core,
            acceptor: Some(acceptor),
            handlers,
        })
    }
}

impl ServerHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.core.metrics.snapshot()
    }

    /// Graceful shutdown: stop accepting, drain the batcher (queued
    /// requests are still answered), join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.core.shutting.swap(true, Ordering::SeqCst) {
            return;
        }
        // The acceptor polls the flag between nonblocking accepts, so no
        // self-connect (which can fail on wildcard binds) is needed.
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Drain parked jobs so handlers blocked on recv() complete.
        self.core.batcher.shutdown();
        let handles = std::mem::take(&mut *self.handlers.lock().expect("handler registry"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    core: &Arc<Core>,
    handlers: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    // Nonblocking accept + flag poll: a blocking accept would need a
    // successful self-connect to unblock on shutdown, which is not
    // guaranteed for wildcard/firewalled binds.
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if core.shutting.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(_) => continue, // transient accept failure
        };
        // Handlers use read timeouts, which require blocking mode (the
        // accepted socket may inherit nonblocking on some platforms).
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        let core = Arc::clone(core);
        // Thread exhaustion (EAGAIN under a pid cap during a spike) must
        // shed this one connection, not kill the acceptor: a panic here
        // would silently stop the server from ever accepting again.
        let spawned = std::thread::Builder::new()
            .name("photonn-conn".into())
            .spawn(move || handle_connection(stream, &core));
        let handle = match spawned {
            Ok(handle) => handle,
            Err(_) => continue, // stream drops; the client sees a close
        };
        let mut registry = handlers.lock().expect("handler registry");
        // Reap finished handlers so a long-lived server does not
        // accumulate join handles.
        let mut alive = Vec::with_capacity(registry.len() + 1);
        for h in registry.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                alive.push(h);
            }
        }
        alive.push(handle);
        *registry = alive;
    }
}

fn handle_connection(stream: TcpStream, core: &Arc<Core>) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Idle boundary: poll for the first byte of the next request with
        // the short timeout so shutdown is noticed promptly. fill_buf
        // consumes nothing, so a timeout here never desyncs the stream.
        match reader.fill_buf() {
            Ok([]) => return, // clean close
            Ok(_) => {}       // a request has started
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if core.shutting.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return, // transport failure
        }
        // A request is in flight: give slow transfers a real deadline
        // (the 200 ms idle poll would 400 any >200 ms inter-segment gap).
        let _ = reader
            .get_ref()
            .set_read_timeout(Some(REQUEST_READ_TIMEOUT));
        let outcome = read_request(&mut reader);
        let _ = reader.get_ref().set_read_timeout(Some(IDLE_POLL));
        let request = match outcome {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean close
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let body = error_body(&e.to_string());
                let _ = write_response(&mut writer, 400, "application/json", &body, true);
                core.metrics.record_status(400);
                return;
            }
            Err(_) => return, // transport failure (incl. a stalled peer)
        };
        let close = request.wants_close();
        let (status, body) = route(&request, core);
        core.metrics.record_status(status);
        let wrote = {
            let _span = photonn_trace::span("serve.write");
            write_response(&mut writer, status, "application/json", &body, close)
        };
        if wrote.is_err() {
            return;
        }
        if close || core.shutting.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn error_body(message: &str) -> String {
    Json::object(vec![("error".into(), Json::Str(message.into()))]).to_string()
}

fn route(request: &Request, core: &Arc<Core>) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (
            200,
            Json::object(vec![("status".into(), Json::Str("ok".into()))]).to_string(),
        ),
        ("GET", "/models") => (200, models_body(core)),
        ("GET", "/metrics") => (200, core.metrics.snapshot().to_json().to_string()),
        ("POST", "/v1/logits") => infer(request, core),
        ("GET" | "POST", _) => (404, error_body("no such endpoint")),
        _ => (405, error_body("method not allowed")),
    }
}

fn models_body(core: &Arc<Core>) -> String {
    let registry = core.batcher.registry();
    let models = registry
        .models()
        .iter()
        .map(|m| {
            Json::object(vec![
                ("name".into(), Json::Str(m.name().into())),
                ("kind".into(), Json::Str(m.kind().to_string())),
                ("grid".into(), Json::Num(m.grid() as f64)),
                ("classes".into(), Json::Num(m.num_classes() as f64)),
            ])
        })
        .collect();
    let default = registry
        .default_model()
        .map_or(Json::Null, |m| Json::Str(m.name().into()));
    Json::object(vec![
        ("models".into(), Json::Arr(models)),
        ("default".into(), default),
    ])
    .to_string()
}

/// `POST /v1/logits` — body `{"model": <optional name>, "image": <n*n
/// numbers, flat or as n rows>}`; answers the sample's logits and argmax
/// class.
fn infer(request: &Request, core: &Arc<Core>) -> (u16, String) {
    let started = Instant::now();
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return (400, error_body("body is not UTF-8")),
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    let model_name = match doc.get("model") {
        None | Some(Json::Null) => None,
        Some(Json::Str(name)) => Some(name.as_str()),
        Some(_) => return (400, error_body("'model' must be a string")),
    };
    let image = match parse_image(&doc) {
        Ok(image) => image,
        Err(message) => return (400, error_body(&message)),
    };
    let receiver = match core.batcher.submit(model_name, image) {
        // Counted only on acceptance, as MetricsSnapshot documents;
        // refusals are visible in the 4xx/429 counters.
        Ok(receiver) => {
            core.metrics.record_request();
            receiver
        }
        Err(SubmitError::QueueFull) => return (429, error_body("queue full")),
        Err(SubmitError::ShuttingDown) => return (503, error_body("shutting down")),
        Err(e @ SubmitError::UnknownModel(_)) => return (404, error_body(&e.to_string())),
        Err(e @ SubmitError::ShapeMismatch { .. }) => return (400, error_body(&e.to_string())),
    };
    let logits = match receiver.recv() {
        Ok(logits) => logits,
        Err(_) => return (500, error_body("dispatcher dropped the request")),
    };
    let model = model_name.unwrap_or_else(|| {
        core.batcher
            .registry()
            .default_model()
            .expect("non-empty registry")
            .name()
    });
    let body = Json::object(vec![
        ("model".into(), Json::Str(model.into())),
        ("class".into(), Json::Num(argmax(&logits) as f64)),
        ("logits".into(), Json::numbers(&logits)),
        (
            "latency_us".into(),
            Json::Num(started.elapsed().as_micros() as f64),
        ),
    ])
    .to_string();
    (200, body)
}

/// Accepts `"image": [v; n*n]` (flat, row-major) or `"image": [[v; n]; n]`.
fn parse_image(doc: &Json) -> Result<Grid, String> {
    let items = doc
        .get("image")
        .and_then(Json::as_array)
        .ok_or("'image' must be an array")?;
    if items.is_empty() {
        return Err("'image' is empty".into());
    }
    let (values, side) = if items.iter().all(|v| matches!(v, Json::Num(_))) {
        let values: Vec<f64> = items.iter().map(|v| v.as_f64().expect("checked")).collect();
        let side = (values.len() as f64).sqrt().round() as usize;
        if side * side != values.len() {
            return Err(format!(
                "'image' length {} is not a perfect square",
                values.len()
            ));
        }
        (values, side)
    } else {
        // Nested rows: every element must be an equal-length number row,
        // and the declared row structure must itself be square — a DONN
        // grid is n×n, so silently reshaping e.g. 64×16 would scramble
        // the pixel layout while passing the later shape check.
        let rows: Vec<&[Json]> = items
            .iter()
            .map(|row| row.as_array().ok_or("'image' mixes rows and scalars"))
            .collect::<Result<_, _>>()?;
        let width = rows[0].len();
        if rows.len() != width {
            return Err(format!(
                "'image' rows declare a {}x{width} shape; a square grid is required",
                rows.len()
            ));
        }
        let mut values = Vec::with_capacity(rows.len() * width);
        for row in &rows {
            if row.len() != width {
                return Err("'image' rows have unequal lengths".into());
            }
            for v in *row {
                values.push(v.as_f64().ok_or("'image' contains a non-number")?);
            }
        }
        (values, width)
    };
    if values.iter().any(|v| !v.is_finite()) {
        return Err("'image' contains a non-finite value".into());
    }
    Ok(Grid::from_vec(side, side, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_image_accepts_flat_and_nested() {
        let flat = Json::parse(r#"{"image": [0, 1, 2, 3]}"#).unwrap();
        let nested = Json::parse(r#"{"image": [[0, 1], [2, 3]]}"#).unwrap();
        let a = parse_image(&flat).unwrap();
        let b = parse_image(&nested).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.shape(), (2, 2));
        assert_eq!(a[(1, 0)], 2.0);
    }

    #[test]
    fn parse_image_rejects_bad_payloads() {
        for body in [
            r#"{}"#,
            r#"{"image": "x"}"#,
            r#"{"image": []}"#,
            r#"{"image": [0, 1, 2]}"#,
            r#"{"image": [[0, 1], [2]]}"#,
            r#"{"image": [[0, 1], 2]}"#,
            r#"{"image": [0, true, 2, 3]}"#,
            // 1x4 nested: right element count, wrong declared shape.
            r#"{"image": [[0, 1, 2, 3]]}"#,
            // 4x1 nested: transposed non-square declaration.
            r#"{"image": [[0], [1], [2], [3]]}"#,
        ] {
            let doc = Json::parse(body).unwrap();
            assert!(parse_image(&doc).is_err(), "accepted {body}");
        }
    }
}
