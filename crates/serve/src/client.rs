//! A minimal blocking HTTP/1.1 client — just enough to drive the server
//! from examples, integration tests and benchmarks without a second
//! protocol implementation in every caller.
//!
//! Not a general-purpose client: it speaks exactly the dialect the server
//! emits (`Content-Length` bodies, keep-alive by default). Three layers:
//!
//! * [`request`] — one-shot, one fresh connection per call.
//! * [`Connection`] — a raw keep-alive connection.
//! * [`Client`] — typed `/v1` and `/v2` calls over a keep-alive
//!   connection that transparently reconnects when the server closed it
//!   (idle timeout, restart); API-level failures come back as
//!   [`ApiError`] with the `/v2` structured fields populated.

use crate::json::Json;
use photonn_math::Grid;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A keep-alive connection to a server.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to `addr` with a generous request timeout.
    ///
    /// # Errors
    ///
    /// Returns any socket error.
    pub fn connect(addr: SocketAddr) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Connection {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the response. `body = None` sends a
    /// bodyless request (GET).
    ///
    /// # Errors
    ///
    /// Returns transport errors and `InvalidData` for malformed responses.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        self.send(method, path, body)?;
        read_response(&mut self.reader)
    }

    /// Writes one request without reading the response.
    fn send(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<()> {
        // Single buffered write (see `http::write_response` on Nagle).
        let request = match body {
            Some(body) => format!(
                "{method} {path} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
            None => format!("{method} {path} HTTP/1.1\r\n\r\n"),
        };
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()
    }

    /// Blocks until the response starts arriving: `Ok(true)` once at
    /// least one byte is buffered, `Ok(false)` on clean EOF before any
    /// byte (the server closed without answering).
    fn response_started(&mut self) -> io::Result<bool> {
        Ok(!self.reader.fill_buf()?.is_empty())
    }
}

/// One-shot request over a fresh connection.
///
/// # Errors
///
/// Returns transport errors and `InvalidData` for malformed responses.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    Connection::connect(addr)?.request(method, path, body)
}

// ------------------------------------------------------- typed client

/// An API-level failure: the server answered, but with an error status.
/// `/v2` responses populate `code` and `retry_after_ms` from the
/// structured error document; `/v1` responses carry code `"error"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status.
    pub status: u16,
    /// `/v2` machine-readable code (`"shed"`, `"unknown_model"`, ...).
    pub code: String,
    /// Human-readable message.
    pub message: String,
    /// Retry hint on shed responses.
    pub retry_after_ms: Option<u64>,
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HTTP {} {}: {}", self.status, self.code, self.message)
    }
}

/// Transport failure or API-level error from a typed call.
#[derive(Debug)]
pub enum ClientError {
    /// The request never completed (connect, write, read, malformed
    /// response).
    Io(io::Error),
    /// The server answered with an error status.
    Api(ApiError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Api(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A `/v1/logits` answer.
#[derive(Clone, Debug, PartialEq)]
pub struct Inference {
    /// Registered name of the model that ran.
    pub model: String,
    /// Argmax class.
    pub class: usize,
    /// Per-class detector sums.
    pub logits: Vec<f64>,
    /// Server-side latency in microseconds.
    pub latency_us: f64,
}

/// One sample's answer inside a `/v2/logits` batch.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassLogits {
    /// Argmax class.
    pub class: usize,
    /// Per-class readout values.
    pub logits: Vec<f64>,
}

/// A `/v2/logits` answer.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchInference {
    /// Registered name of the model that ran.
    pub model: String,
    /// Readout head that produced the logits.
    pub head: String,
    /// One entry per input, in input order.
    pub results: Vec<ClassLogits>,
    /// Server-side latency in microseconds.
    pub latency_us: f64,
}

/// A typed client over a keep-alive connection. The connection is opened
/// lazily and reopened transparently when the server has closed it; a
/// request is retried at most once, and only when a *reused* connection
/// fails before delivering any response byte (write error, clean EOF, or
/// reset) — the signature of a server idle-close or restart between
/// requests. A failure after the first response byte, or a read timeout,
/// is surfaced as-is, so a request that is slow or mid-execution
/// server-side is never replayed. (Against a server that crashes after
/// reading a request but before answering, the replay is still possible;
/// this API is stateless, so such a replay is harmless.)
pub struct Client {
    addr: SocketAddr,
    conn: Option<Connection>,
}

impl Client {
    /// A client for the server at `addr`. Does not connect yet.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, conn: None }
    }

    /// Sends over the kept-alive connection, reconnecting once when the
    /// previous connection turns out to be dead (see the type docs for
    /// exactly when a retry happens).
    ///
    /// # Errors
    ///
    /// Returns any transport error from both attempts.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let had_conn = self.conn.is_some();
        if self.conn.is_none() {
            self.conn = Some(Connection::connect(self.addr)?);
        }
        let conn = self.conn.as_mut().expect("just ensured");
        // A reused connection the server idle-closed or restarted under
        // surfaces as a write failure, a clean EOF, or a reset before the
        // first response byte — all meaning this request was never
        // answered, so one replay on a fresh connection is safe. Once
        // response bytes have started flowing (or on a timeout, where the
        // request may still be executing), any failure is final.
        let stale = match conn.send(method, path, body).and_then(|()| conn.response_started()) {
            Ok(true) => {
                let reply = read_response(&mut conn.reader);
                if reply.is_err() {
                    self.conn = None;
                }
                return reply;
            }
            Ok(false) if had_conn => true,
            Ok(false) => {
                self.conn = None;
                return Err(bad("empty response"));
            }
            Err(e)
                if had_conn
                    && !matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                true
            }
            Err(e) => {
                self.conn = None;
                return Err(e);
            }
        };
        debug_assert!(stale);
        self.conn = None;
        let mut fresh = Connection::connect(self.addr)?;
        let reply = fresh.request(method, path, body)?;
        self.conn = Some(fresh);
        Ok(reply)
    }

    /// `POST /v1/logits` for one image; `model = None` uses the server
    /// default.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure, [`ClientError::Api`] on
    /// an error status.
    pub fn logits_v1(
        &mut self,
        model: Option<&str>,
        image: &Grid,
    ) -> Result<Inference, ClientError> {
        let mut pairs = Vec::new();
        if let Some(name) = model {
            pairs.push(("model".to_string(), Json::Str(name.into())));
        }
        pairs.push(("image".to_string(), Json::numbers(image.as_slice())));
        let body = Json::object(pairs).to_string();
        let (status, text) = self.request("POST", "/v1/logits", Some(&body))?;
        let doc = parse_reply(status, &text)?;
        Ok(Inference {
            model: field_str(&doc, "model")?,
            class: field_usize(&doc, "class")?,
            logits: field_numbers(&doc, "logits")?,
            latency_us: field_f64(&doc, "latency_us")?,
        })
    }

    /// `POST /v2/logits` for a batch of images; `model`/`head` of `None`
    /// use the server defaults.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure, [`ClientError::Api`] on
    /// an error status (structured `/v2` fields populated).
    pub fn logits_v2(
        &mut self,
        model: Option<&str>,
        head: Option<&str>,
        inputs: &[&Grid],
    ) -> Result<BatchInference, ClientError> {
        let mut pairs = Vec::new();
        if let Some(name) = model {
            pairs.push(("model".to_string(), Json::Str(name.into())));
        }
        if let Some(name) = head {
            pairs.push(("head".to_string(), Json::Str(name.into())));
        }
        pairs.push((
            "inputs".to_string(),
            Json::Arr(inputs.iter().map(|g| Json::numbers(g.as_slice())).collect()),
        ));
        let body = Json::object(pairs).to_string();
        let (status, text) = self.request("POST", "/v2/logits", Some(&body))?;
        let doc = parse_reply(status, &text)?;
        let results = doc
            .get("results")
            .and_then(Json::as_array)
            .ok_or_else(|| malformed("results"))?
            .iter()
            .map(|entry| {
                Ok(ClassLogits {
                    class: field_usize(entry, "class")?,
                    logits: field_numbers(entry, "logits")?,
                })
            })
            .collect::<Result<_, ClientError>>()?;
        Ok(BatchInference {
            model: field_str(&doc, "model")?,
            head: field_str(&doc, "head")?,
            results,
            latency_us: field_f64(&doc, "latency_us")?,
        })
    }
}

/// Parses a reply body, converting error statuses into [`ApiError`]
/// (understanding both the `/v1` `{"error"}` and `/v2`
/// `{"code","message","retry_after_ms"}` shapes).
fn parse_reply(status: u16, text: &str) -> Result<Json, ClientError> {
    let doc = Json::parse(text).map_err(|_| malformed("response body"))?;
    if (200..300).contains(&status) {
        return Ok(doc);
    }
    let error = if let Some(code) = doc.get("code").and_then(Json::as_str) {
        ApiError {
            status,
            code: code.to_string(),
            message: doc
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            retry_after_ms: doc
                .get("retry_after_ms")
                .and_then(Json::as_f64)
                .map(|ms| ms as u64),
        }
    } else {
        ApiError {
            status,
            code: "error".to_string(),
            message: doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or(text)
                .to_string(),
            retry_after_ms: None,
        }
    };
    Err(ClientError::Api(error))
}

fn malformed(what: &str) -> ClientError {
    ClientError::Io(bad(&format!("malformed {what} in server reply")))
}

fn field_str(doc: &Json, name: &str) -> Result<String, ClientError> {
    doc.get(name)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| malformed(name))
}

fn field_usize(doc: &Json, name: &str) -> Result<usize, ClientError> {
    doc.get(name)
        .and_then(Json::as_usize)
        .ok_or_else(|| malformed(name))
}

fn field_f64(doc: &Json, name: &str) -> Result<f64, ClientError> {
    doc.get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| malformed(name))
}

fn field_numbers(doc: &Json, name: &str) -> Result<Vec<f64>, ClientError> {
    doc.get(name)
        .and_then(Json::as_array)
        .map(|values| values.iter().filter_map(Json::as_f64).collect())
        .ok_or_else(|| malformed(name))
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

fn read_response(reader: &mut impl BufRead) -> io::Result<(u16, String)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(bad("empty response"));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("eof in response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|text| (status, text))
        .map_err(|_| bad("non-UTF-8 response body"))
}
