//! A minimal blocking HTTP/1.1 client — just enough to drive the server
//! from examples, integration tests and benchmarks without a second
//! protocol implementation in every caller.
//!
//! Not a general-purpose client: it speaks exactly the dialect the server
//! emits (`Content-Length` bodies, keep-alive by default).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A keep-alive connection to a server.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to `addr` with a generous request timeout.
    ///
    /// # Errors
    ///
    /// Returns any socket error.
    pub fn connect(addr: SocketAddr) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Connection {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the response. `body = None` sends a
    /// bodyless request (GET).
    ///
    /// # Errors
    ///
    /// Returns transport errors and `InvalidData` for malformed responses.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        // Single buffered write (see `http::write_response` on Nagle).
        let request = match body {
            Some(body) => format!(
                "{method} {path} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
            None => format!("{method} {path} HTTP/1.1\r\n\r\n"),
        };
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }
}

/// One-shot request over a fresh connection.
///
/// # Errors
///
/// Returns transport errors and `InvalidData` for malformed responses.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    Connection::connect(addr)?.request(method, path, body)
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

fn read_response(reader: &mut impl BufRead) -> io::Result<(u16, String)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(bad("empty response"));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("eof in response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|text| (status, text))
        .map_err(|_| bad("non-UTF-8 response body"))
}
