//! Server observability: request counters, the coalesced-batch-size
//! histogram, end-to-end latency percentiles and cache statistics —
//! everything the `/metrics` endpoint reports.
//!
//! Counters are lock-free atomics on the hot path; latencies go into a
//! fixed-size ring reservoir guarded by a mutex (one push per request, and
//! percentile computation sorts a copy off the hot path).

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Batch-size histogram bucket upper bounds (inclusive); the last bucket
/// is open-ended.
pub const BATCH_BUCKETS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, usize::MAX];

/// Capacity of the latency reservoir (most recent samples win).
const LATENCY_RESERVOIR: usize = 4096;

#[derive(Default)]
struct LatencyRing {
    samples_us: Vec<u64>,
    next: usize,
}

/// Per-model accumulators behind the [`Metrics`] per-model map.
#[derive(Default)]
struct ModelCounters {
    requests: u64,
    completed: u64,
    latency_total_us: u64,
    latency_max_us: u64,
}

/// Live per-shard counters, written by one dispatcher shard and read by
/// `/metrics` snapshots. The shard pool installs one per shard via
/// [`Metrics::install_shards`].
#[derive(Default)]
pub struct ShardCounters {
    /// Jobs currently parked in this shard's queues.
    pub queue_depth: AtomicUsize,
    /// Model groups this shard stole from a peer.
    pub steals: AtomicU64,
    /// Batches this shard dispatched.
    pub batches: AtomicU64,
    /// Jobs this shard completed.
    pub jobs: AtomicU64,
}

/// A point-in-time copy of one shard's counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// Jobs currently parked in this shard's queues.
    pub queue_depth: usize,
    /// Model groups this shard stole from a peer.
    pub steals: u64,
    /// Batches this shard dispatched.
    pub batches: u64,
    /// Jobs this shard completed.
    pub jobs: u64,
}

/// Shared server metrics. All recording methods take `&self` and are safe
/// to call from any thread.
pub struct Metrics {
    started: Instant,
    requests_total: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_429: AtomicU64,
    responses_5xx: AtomicU64,
    batches_total: AtomicU64,
    batch_hist: [AtomicU64; 8],
    max_batch_observed: AtomicUsize,
    queue_depth: AtomicUsize,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    sheds_total: AtomicU64,
    steals_total: AtomicU64,
    degraded_batches: AtomicU64,
    connections: AtomicUsize,
    latencies: Mutex<LatencyRing>,
    per_model: Mutex<BTreeMap<String, ModelCounters>>,
    shards: Mutex<Arc<Vec<ShardCounters>>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_429: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            batches_total: AtomicU64::new(0),
            batch_hist: Default::default(),
            max_batch_observed: AtomicUsize::new(0),
            queue_depth: AtomicUsize::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            sheds_total: AtomicU64::new(0),
            steals_total: AtomicU64::new(0),
            degraded_batches: AtomicU64::new(0),
            connections: AtomicUsize::new(0),
            latencies: Mutex::new(LatencyRing::default()),
            per_model: Mutex::new(BTreeMap::new()),
            shards: Mutex::new(Arc::new(Vec::new())),
        }
    }
}

/// Per-model request/latency statistics in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct ModelStats {
    /// Registry name of the model variant.
    pub name: String,
    /// Requests accepted into this model's queue.
    pub requests: u64,
    /// Responses fanned back out for this model.
    pub completed: u64,
    /// Mean end-to-end latency of completed requests, microseconds.
    pub mean_latency_us: f64,
    /// Worst completed-request latency, microseconds.
    pub max_latency_us: u64,
}

/// A point-in-time copy of every metric, with percentiles computed.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds since these metrics (i.e. the server) were created.
    pub uptime_seconds: f64,
    /// Requests accepted into the inference path.
    pub requests_total: u64,
    /// Responses by class.
    pub responses_2xx: u64,
    /// 4xx responses other than 429.
    pub responses_4xx: u64,
    /// Backpressure rejections.
    pub responses_429: u64,
    /// Server-side failures.
    pub responses_5xx: u64,
    /// Number of coalesced batches dispatched.
    pub batches_total: u64,
    /// Histogram counts aligned with [`BATCH_BUCKETS`].
    pub batch_hist: [u64; 8],
    /// Largest batch ever dispatched.
    pub max_batch_observed: usize,
    /// Jobs currently parked in the dispatcher queue.
    pub queue_depth: usize,
    /// Input-hop cache hits (0 when the cache is disabled).
    pub cache_hits: u64,
    /// Input-hop cache misses (0 when the cache is disabled).
    pub cache_misses: u64,
    /// Requests shed by admission control (answered 429 + retry hint).
    pub sheds_total: u64,
    /// Model groups moved between shards by work-stealing.
    pub steals_total: u64,
    /// Batches dispatched while admission control was degrading batch
    /// sizes under p99 pressure.
    pub degraded_batches: u64,
    /// Live client connections on the event loop.
    pub connections: usize,
    /// Per-shard dispatcher statistics, in shard order.
    pub per_shard: Vec<ShardStats>,
    /// Latency samples currently in the reservoir.
    pub latency_samples: usize,
    /// Median end-to-end latency in microseconds (0 with no samples).
    pub p50_latency_us: u64,
    /// 99th-percentile end-to-end latency in microseconds.
    pub p99_latency_us: u64,
    /// Per-model request/latency statistics, sorted by model name.
    pub per_model: Vec<ModelStats>,
    /// Engine-level `photonn-trace` counters (SIMD kernel dispatches, FFT
    /// stage sweeps) at snapshot time. Empty unless `PHOTONN_TRACE` is
    /// enabled for the server process.
    pub engine_counters: Vec<(String, u64)>,
}

impl Metrics {
    /// Fresh all-zero metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one request entering the inference path.
    pub fn record_request(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a response by status code.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            429 => &self.responses_429,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dispatched batch of `size` jobs.
    pub fn record_batch(&self, size: usize) {
        self.batches_total.fetch_add(1, Ordering::Relaxed);
        let bucket = BATCH_BUCKETS
            .iter()
            .position(|&b| size <= b)
            .expect("last bucket is open-ended");
        self.batch_hist[bucket].fetch_add(1, Ordering::Relaxed);
        self.max_batch_observed.fetch_max(size, Ordering::Relaxed);
    }

    /// Records one request's end-to-end latency.
    pub fn record_latency_us(&self, us: u64) {
        let mut ring = self.latencies.lock().expect("metrics lock");
        if ring.samples_us.len() < LATENCY_RESERVOIR {
            ring.samples_us.push(us);
        } else {
            let at = ring.next;
            ring.samples_us[at] = us;
        }
        ring.next = (ring.next + 1) % LATENCY_RESERVOIR;
    }

    /// Updates the queue-depth gauge.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Counts one input-hop cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one input-hop cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request shed by admission control.
    pub fn record_shed(&self) {
        self.sheds_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one model group stolen between shards.
    pub fn record_steal(&self) {
        self.steals_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one batch dispatched under admission-control degradation.
    pub fn record_degraded_batch(&self) {
        self.degraded_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the live-connections gauge.
    pub fn set_connections(&self, count: usize) {
        self.connections.store(count, Ordering::Relaxed);
    }

    /// Installs the per-shard counter block (called once by the shard
    /// pool; the previous block, if any, is replaced).
    pub fn install_shards(&self, shards: Arc<Vec<ShardCounters>>) {
        *self.shards.lock().expect("metrics lock") = shards;
    }

    /// Counts one request accepted for the named model.
    pub fn record_model_request(&self, model: &str) {
        let mut map = self.per_model.lock().expect("metrics lock");
        map.entry(model.to_string()).or_default().requests += 1;
    }

    /// Records one completed request's end-to-end latency for the named
    /// model (alongside the global reservoir in
    /// [`Metrics::record_latency_us`]).
    pub fn record_model_latency(&self, model: &str, us: u64) {
        let mut map = self.per_model.lock().expect("metrics lock");
        let entry = map.entry(model.to_string()).or_default();
        entry.completed += 1;
        entry.latency_total_us += us;
        entry.latency_max_us = entry.latency_max_us.max(us);
    }

    /// Copies every metric out and computes latency percentiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let (latency_samples, p50, p99) = {
            let ring = self.latencies.lock().expect("metrics lock");
            let mut sorted = ring.samples_us.clone();
            sorted.sort_unstable();
            let pick = |p: usize| {
                if sorted.is_empty() {
                    0
                } else {
                    sorted[(sorted.len() - 1) * p / 100]
                }
            };
            (sorted.len(), pick(50), pick(99))
        };
        let mut batch_hist = [0u64; 8];
        for (out, counter) in batch_hist.iter_mut().zip(&self.batch_hist) {
            *out = counter.load(Ordering::Relaxed);
        }
        let per_model = {
            let map = self.per_model.lock().expect("metrics lock");
            map.iter()
                .map(|(name, c)| ModelStats {
                    name: name.clone(),
                    requests: c.requests,
                    completed: c.completed,
                    mean_latency_us: if c.completed == 0 {
                        0.0
                    } else {
                        c.latency_total_us as f64 / c.completed as f64
                    },
                    max_latency_us: c.latency_max_us,
                })
                .collect()
        };
        let engine_counters = photonn_trace::counters_snapshot()
            .into_iter()
            .map(|(name, value)| (name.to_string(), value))
            .collect();
        let per_shard = {
            let shards = self.shards.lock().expect("metrics lock");
            shards
                .iter()
                .map(|s| ShardStats {
                    queue_depth: s.queue_depth.load(Ordering::Relaxed),
                    steals: s.steals.load(Ordering::Relaxed),
                    batches: s.batches.load(Ordering::Relaxed),
                    jobs: s.jobs.load(Ordering::Relaxed),
                })
                .collect()
        };
        MetricsSnapshot {
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            requests_total: self.requests_total.load(Ordering::Relaxed),
            responses_2xx: self.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: self.responses_4xx.load(Ordering::Relaxed),
            responses_429: self.responses_429.load(Ordering::Relaxed),
            responses_5xx: self.responses_5xx.load(Ordering::Relaxed),
            batches_total: self.batches_total.load(Ordering::Relaxed),
            batch_hist,
            max_batch_observed: self.max_batch_observed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            sheds_total: self.sheds_total.load(Ordering::Relaxed),
            steals_total: self.steals_total.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            per_shard,
            latency_samples,
            p50_latency_us: p50,
            p99_latency_us: p99,
            per_model,
            engine_counters,
        }
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as the `/metrics` JSON document.
    pub fn to_json(&self) -> Json {
        let hist = BATCH_BUCKETS
            .iter()
            .zip(&self.batch_hist)
            .map(|(&le, &count)| {
                let le_json = if le == usize::MAX {
                    Json::Str("inf".into())
                } else {
                    Json::Num(le as f64)
                };
                Json::object(vec![
                    ("le".into(), le_json),
                    ("count".into(), Json::Num(count as f64)),
                ])
            })
            .collect();
        let models = self
            .per_model
            .iter()
            .map(|m| {
                (
                    m.name.clone(),
                    Json::object(vec![
                        ("requests".into(), Json::Num(m.requests as f64)),
                        ("completed".into(), Json::Num(m.completed as f64)),
                        ("mean_latency_us".into(), Json::Num(m.mean_latency_us)),
                        ("max_latency_us".into(), Json::Num(m.max_latency_us as f64)),
                    ]),
                )
            })
            .collect();
        let engine = self
            .engine_counters
            .iter()
            .map(|(name, value)| (name.clone(), Json::Num(*value as f64)))
            .collect();
        let shards = self
            .per_shard
            .iter()
            .map(|s| {
                Json::object(vec![
                    ("queue_depth".into(), Json::Num(s.queue_depth as f64)),
                    ("steals".into(), Json::Num(s.steals as f64)),
                    ("batches".into(), Json::Num(s.batches as f64)),
                    ("jobs".into(), Json::Num(s.jobs as f64)),
                ])
            })
            .collect();
        Json::object(vec![
            ("uptime_seconds".into(), Json::Num(self.uptime_seconds)),
            (
                "requests_total".into(),
                Json::Num(self.requests_total as f64),
            ),
            ("responses_2xx".into(), Json::Num(self.responses_2xx as f64)),
            ("responses_4xx".into(), Json::Num(self.responses_4xx as f64)),
            ("responses_429".into(), Json::Num(self.responses_429 as f64)),
            ("responses_5xx".into(), Json::Num(self.responses_5xx as f64)),
            ("queue_depth".into(), Json::Num(self.queue_depth as f64)),
            ("batches_total".into(), Json::Num(self.batches_total as f64)),
            (
                "max_batch_observed".into(),
                Json::Num(self.max_batch_observed as f64),
            ),
            ("batch_size_hist".into(), Json::Arr(hist)),
            ("cache_hits".into(), Json::Num(self.cache_hits as f64)),
            ("cache_misses".into(), Json::Num(self.cache_misses as f64)),
            (
                "latency_samples".into(),
                Json::Num(self.latency_samples as f64),
            ),
            (
                "p50_latency_us".into(),
                Json::Num(self.p50_latency_us as f64),
            ),
            (
                "p99_latency_us".into(),
                Json::Num(self.p99_latency_us as f64),
            ),
            ("sheds_total".into(), Json::Num(self.sheds_total as f64)),
            ("steals_total".into(), Json::Num(self.steals_total as f64)),
            (
                "degraded_batches".into(),
                Json::Num(self.degraded_batches as f64),
            ),
            ("connections".into(), Json::Num(self.connections as f64)),
            ("shards".into(), Json::Arr(shards)),
            ("models".into(), Json::object(models)),
            ("engine".into(), Json::object(engine)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_histogram_buckets() {
        let m = Metrics::new();
        for size in [1, 2, 3, 4, 9, 100] {
            m.record_batch(size);
        }
        let s = m.snapshot();
        assert_eq!(s.batches_total, 6);
        assert_eq!(s.batch_hist[0], 1); // 1
        assert_eq!(s.batch_hist[1], 1); // 2
        assert_eq!(s.batch_hist[2], 2); // 3, 4 -> ≤4
        assert_eq!(s.batch_hist[4], 1); // 9 -> ≤16
        assert_eq!(s.batch_hist[7], 1); // 100 -> inf
        assert_eq!(s.max_batch_observed, 100);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let m = Metrics::new();
        for us in 1..=100u64 {
            m.record_latency_us(us);
        }
        let s = m.snapshot();
        assert_eq!(s.latency_samples, 100);
        assert_eq!(s.p50_latency_us, 50);
        assert_eq!(s.p99_latency_us, 99);
        // Empty reservoir is all-zero, not a panic.
        assert_eq!(Metrics::new().snapshot().p99_latency_us, 0);
    }

    #[test]
    fn reservoir_wraps_without_growing() {
        let m = Metrics::new();
        for us in 0..(LATENCY_RESERVOIR as u64 + 10) {
            m.record_latency_us(us);
        }
        assert_eq!(m.snapshot().latency_samples, LATENCY_RESERVOIR);
    }

    #[test]
    fn status_classes_routed() {
        let m = Metrics::new();
        for s in [200, 200, 400, 429, 500, 503] {
            m.record_status(s);
        }
        let s = m.snapshot();
        assert_eq!(s.responses_2xx, 2);
        assert_eq!(s.responses_4xx, 1);
        assert_eq!(s.responses_429, 1);
        assert_eq!(s.responses_5xx, 2);
    }

    #[test]
    fn per_model_counters_and_uptime() {
        let m = Metrics::new();
        m.record_model_request("mnist-16");
        m.record_model_request("mnist-16");
        m.record_model_request("fashion-16");
        m.record_model_latency("mnist-16", 100);
        m.record_model_latency("mnist-16", 300);
        let s = m.snapshot();
        assert!(s.uptime_seconds >= 0.0);
        assert_eq!(s.per_model.len(), 2);
        // BTreeMap ordering: "fashion-16" before "mnist-16".
        assert_eq!(s.per_model[0].name, "fashion-16");
        assert_eq!(s.per_model[0].requests, 1);
        assert_eq!(s.per_model[0].completed, 0);
        assert_eq!(s.per_model[0].mean_latency_us, 0.0);
        assert_eq!(s.per_model[1].name, "mnist-16");
        assert_eq!(s.per_model[1].requests, 2);
        assert_eq!(s.per_model[1].completed, 2);
        assert_eq!(s.per_model[1].mean_latency_us, 200.0);
        assert_eq!(s.per_model[1].max_latency_us, 300);
        let text = s.to_json().to_string();
        let parsed = Json::parse(&text).unwrap();
        assert!(parsed
            .get("uptime_seconds")
            .and_then(Json::as_f64)
            .is_some());
        let models = parsed.get("models").unwrap();
        assert_eq!(
            models
                .get("mnist-16")
                .and_then(|m| m.get("requests"))
                .and_then(Json::as_usize),
            Some(2)
        );
        // The engine object is always present (possibly empty).
        assert!(parsed.get("engine").is_some());
    }

    #[test]
    fn shard_and_admission_counters_surface_in_json() {
        let m = Metrics::new();
        let shards = Arc::new(vec![ShardCounters::default(), ShardCounters::default()]);
        shards[1].steals.fetch_add(3, Ordering::Relaxed);
        shards[1].queue_depth.store(5, Ordering::Relaxed);
        m.install_shards(Arc::clone(&shards));
        m.record_shed();
        m.record_shed();
        m.record_steal();
        m.record_degraded_batch();
        m.set_connections(17);
        let s = m.snapshot();
        assert_eq!(s.sheds_total, 2);
        assert_eq!(s.steals_total, 1);
        assert_eq!(s.degraded_batches, 1);
        assert_eq!(s.connections, 17);
        assert_eq!(s.per_shard.len(), 2);
        assert_eq!(s.per_shard[1].steals, 3);
        assert_eq!(s.per_shard[1].queue_depth, 5);
        let parsed = Json::parse(&s.to_json().to_string()).unwrap();
        assert_eq!(parsed.get("sheds_total").and_then(Json::as_usize), Some(2));
        assert_eq!(parsed.get("connections").and_then(Json::as_usize), Some(17));
        let shards_json = parsed.get("shards").and_then(Json::as_array).unwrap();
        assert_eq!(shards_json.len(), 2);
        assert_eq!(
            shards_json[1].get("steals").and_then(Json::as_usize),
            Some(3)
        );
    }

    #[test]
    fn snapshot_serializes() {
        let m = Metrics::new();
        m.record_request();
        m.record_batch(3);
        m.record_latency_us(250);
        m.set_queue_depth(7);
        let text = m.snapshot().to_json().to_string();
        let parsed = crate::json::Json::parse(&text).unwrap();
        assert_eq!(parsed.get("queue_depth").and_then(Json::as_usize), Some(7));
        assert_eq!(
            parsed
                .get("batch_size_hist")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(8)
        );
    }
}
