//! The dynamic micro-batcher: the classic blocking API over the sharded
//! dispatcher.
//!
//! Requests park on a bounded queue. A dispatcher coalesces consecutive
//! same-model jobs under a [`BatchPolicy`]: it dispatches as soon as
//! `max_batch` jobs for the head model are waiting, or when the head job
//! has waited `max_wait_us`, whichever comes first. The coalesced batch
//! runs as a *single* `logits_batch`-shaped call whose FFT work is spread
//! over the policy's worker threads, and per-sample logits fan back to
//! the parked callers over per-job channels.
//!
//! Since the event-loop redesign this type is a thin façade over a
//! 1-shard [`crate::shard::ShardPool`] — same queueing semantics, same
//! backpressure, same bit-identical results — kept for embedders that
//! want a blocking submit/recv interface without running a server. The
//! server itself drives a multi-shard pool directly.
//!
//! Backpressure is structural: when the queue holds `queue_capacity`
//! jobs, [`Batcher::submit`] refuses with [`SubmitError::QueueFull`] and
//! the HTTP layer answers 429 instead of letting latency grow without
//! bound.

use crate::cache::FirstHopCache;
use crate::head::ReadoutHead;
use crate::metrics::Metrics;
use crate::registry::ModelRegistry;
use crate::shard::{Reply, ShardPool};
use photonn_math::Grid;
use std::fmt;
use std::sync::{mpsc, Arc};

/// Coalescing and capacity policy of the dispatcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest number of requests fused into one batch.
    pub max_batch: usize,
    /// Longest time the head request may wait for co-travelers, in
    /// microseconds. `0` dispatches immediately (batch size becomes
    /// whatever already queued).
    pub max_wait_us: u64,
    /// Bounded-queue capacity per dispatcher shard; submissions beyond it
    /// are refused.
    pub queue_capacity: usize,
    /// FFT worker threads per dispatched batch (`0` is treated as 1).
    pub threads: usize,
}

impl Default for BatchPolicy {
    /// A balanced default: coalesce up to 16 requests for at most 2 ms,
    /// queue at most 256, and use up to 8 cores.
    fn default() -> Self {
        BatchPolicy {
            max_batch: 16,
            max_wait_us: 2_000,
            queue_capacity: 256,
            threads: std::thread::available_parallelism().map_or(2, |p| p.get().min(8)),
        }
    }
}

impl BatchPolicy {
    /// The no-batching baseline: every request dispatches alone.
    pub fn unbatched() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_wait_us: 0,
            ..BatchPolicy::default()
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(self.queue_capacity > 0, "queue_capacity must be positive");
    }
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity (HTTP 429).
    QueueFull,
    /// No model with this name is registered (HTTP 404).
    UnknownModel(String),
    /// The image does not match the model's grid (HTTP 400).
    ShapeMismatch {
        /// Expected side length.
        expected: usize,
        /// Received shape.
        got: (usize, usize),
    },
    /// The batcher is shutting down (HTTP 503).
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "queue full"),
            SubmitError::UnknownModel(name) => write!(f, "unknown model '{name}'"),
            SubmitError::ShapeMismatch { expected, got } => write!(
                f,
                "image shape {got:?} does not match the {expected}x{expected} grid"
            ),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The request-coalescing dispatcher. Dropping it shuts the dispatcher
/// down gracefully (queued jobs are still answered).
pub struct Batcher {
    pool: ShardPool,
}

impl Batcher {
    /// Starts a dispatcher over `registry` with an optional input-hop
    /// cache.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty or the policy is degenerate.
    pub fn new(
        registry: Arc<ModelRegistry>,
        policy: BatchPolicy,
        cache: Option<FirstHopCache>,
        metrics: Arc<Metrics>,
    ) -> Self {
        Batcher {
            pool: ShardPool::new(registry, policy, 1, cache, metrics, 0),
        }
    }

    /// The registry this batcher serves.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        self.pool.registry()
    }

    /// Enqueues one inference job. On success, the returned receiver
    /// yields the sample's logits once its batch has run.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`]; the job is refused *before* queueing in every
    /// error case.
    pub fn submit(
        &self,
        model_name: Option<&str>,
        image: Grid,
    ) -> Result<mpsc::Receiver<Vec<f64>>, SubmitError> {
        let model = Arc::clone(self.pool.resolve(model_name)?);
        let (tx, rx) = mpsc::channel();
        self.pool
            .submit(&model, ReadoutHead::Sum, image, Reply::Channel(tx))?;
        Ok(rx)
    }

    /// Jobs currently parked in the queue.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// Stops accepting jobs, drains the queue (every parked job still
    /// receives its logits), and joins the dispatcher. Idempotent.
    pub fn shutdown(&self) {
        self.pool.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_datasets::{Dataset, Family};
    use photonn_donn::{Donn, DonnConfig};
    use photonn_math::Rng;
    use std::time::{Duration, Instant};

    fn registry() -> (Arc<ModelRegistry>, Donn) {
        let mut rng = Rng::seed_from(3);
        let donn = Donn::random(DonnConfig::scaled(32), &mut rng);
        let mut reg = ModelRegistry::new();
        reg.register("ideal", donn.clone());
        (Arc::new(reg), donn)
    }

    fn images(count: usize) -> Vec<Grid> {
        let data = Dataset::synthetic(Family::Mnist, count, 11).resized(32);
        (0..count).map(|i| data.image(i).clone()).collect()
    }

    fn policy(max_batch: usize, max_wait_us: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_wait_us,
            queue_capacity: 64,
            threads: 2,
        }
    }

    #[test]
    fn responses_map_back_to_their_submitters_bit_identically() {
        let (reg, donn) = registry();
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(reg, policy(8, 5_000), None, Arc::clone(&metrics));
        let imgs = images(6);
        // Submit six *distinct* images quickly; coalescing may slice them
        // arbitrarily — every receiver must still get its own image's
        // logits, bit-identical to the direct call.
        let receivers: Vec<_> = imgs
            .iter()
            .map(|img| batcher.submit(None, img.clone()).unwrap())
            .collect();
        for (img, rx) in imgs.iter().zip(receivers) {
            let served = rx.recv().unwrap();
            assert_eq!(served, donn.logits(img), "fan-out routed wrong sample");
        }
        assert_eq!(metrics.snapshot().queue_depth, 0);
    }

    #[test]
    fn coalescing_respects_max_batch() {
        let (reg, _) = registry();
        let metrics = Arc::new(Metrics::new());
        // Generous wait so the dispatcher *wants* to coalesce everything;
        // max_batch must still cap every dispatched group at 2.
        let batcher = Batcher::new(reg, policy(2, 50_000), None, Arc::clone(&metrics));
        let imgs = images(5);
        let receivers: Vec<_> = imgs
            .iter()
            .map(|img| batcher.submit(None, img.clone()).unwrap())
            .collect();
        for rx in receivers {
            rx.recv().unwrap();
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.batch_hist.iter().sum::<u64>(), snap.batches_total);
        assert!(snap.max_batch_observed <= 2, "max_batch violated");
        assert!(snap.batches_total >= 3, "5 jobs need >= 3 batches of <= 2");
        // Every job was dispatched exactly once.
        let jobs: u64 = snap.batch_hist[0] + 2 * snap.batch_hist[1];
        assert_eq!(jobs, 5);
    }

    #[test]
    fn max_wait_dispatches_partial_batches() {
        let (reg, donn) = registry();
        let metrics = Arc::new(Metrics::new());
        // max_batch far above traffic: only the deadline can trigger.
        let batcher = Batcher::new(reg, policy(64, 20_000), None, metrics);
        let img = images(1).remove(0);
        let start = Instant::now();
        let rx = batcher.submit(None, img.clone()).unwrap();
        let logits = rx.recv().unwrap();
        let elapsed = start.elapsed();
        assert_eq!(logits, donn.logits(&img));
        assert!(
            elapsed >= Duration::from_micros(10_000),
            "dispatched before the deadline could have elapsed: {elapsed:?}"
        );
        assert!(elapsed < Duration::from_secs(5), "deadline never fired");
    }

    #[test]
    fn bounded_queue_refuses_beyond_capacity() {
        let (reg, _) = registry();
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(
            reg,
            BatchPolicy {
                max_batch: 8,
                max_wait_us: 500_000,
                queue_capacity: 2,
                threads: 1,
            },
            None,
            metrics,
        );
        let imgs = images(3);
        // The dispatcher waits 500 ms for a batch of 8, so the first two
        // jobs park in the queue and the third must bounce.
        let rx1 = batcher.submit(None, imgs[0].clone()).unwrap();
        let rx2 = batcher.submit(None, imgs[1].clone()).unwrap();
        assert_eq!(
            batcher.submit(None, imgs[2].clone()).unwrap_err(),
            SubmitError::QueueFull
        );
        // The parked jobs still complete.
        assert_eq!(rx1.recv().unwrap().len(), 10);
        assert_eq!(rx2.recv().unwrap().len(), 10);
    }

    #[test]
    fn submit_validates_model_and_shape_upfront() {
        let (reg, _) = registry();
        let batcher = Batcher::new(reg, policy(4, 100), None, Arc::new(Metrics::new()));
        assert_eq!(
            batcher
                .submit(Some("nope"), Grid::zeros(32, 32))
                .unwrap_err(),
            SubmitError::UnknownModel("nope".into())
        );
        assert_eq!(
            batcher.submit(None, Grid::zeros(16, 16)).unwrap_err(),
            SubmitError::ShapeMismatch {
                expected: 32,
                got: (16, 16)
            }
        );
    }

    #[test]
    fn shutdown_drains_parked_jobs_then_refuses() {
        let (reg, donn) = registry();
        let batcher = Batcher::new(reg, policy(64, 1_000_000), None, Arc::new(Metrics::new()));
        let imgs = images(3);
        let receivers: Vec<_> = imgs
            .iter()
            .map(|img| batcher.submit(None, img.clone()).unwrap())
            .collect();
        // Shutdown before the 1 s coalescing deadline: the drain must
        // still answer every parked job.
        batcher.shutdown();
        for (img, rx) in imgs.iter().zip(receivers) {
            assert_eq!(rx.recv().unwrap(), donn.logits(img));
        }
        assert_eq!(
            batcher.submit(None, imgs[0].clone()).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn cache_path_is_bit_identical_and_counts_hits() {
        let (reg, donn) = registry();
        let metrics = Arc::new(Metrics::new());
        let cache = FirstHopCache::new(64 << 20);
        let batcher = Batcher::new(reg, policy(4, 2_000), Some(cache), Arc::clone(&metrics));
        let imgs = images(4);
        for round in 0..2 {
            for img in &imgs {
                let rx = batcher.submit(None, img.clone()).unwrap();
                assert_eq!(rx.recv().unwrap(), donn.logits(img), "round {round}");
            }
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.cache_hits + snap.cache_misses, 8);
        assert!(
            snap.cache_hits >= 4,
            "second round must hit the cache: {snap:?}"
        );
        assert!(snap.cache_misses >= 4, "first round must miss");
    }

    #[test]
    fn duplicate_images_within_a_batch_share_one_first_hop() {
        let (reg, donn) = registry();
        let metrics = Arc::new(Metrics::new());
        let cache = FirstHopCache::new(64 << 20);
        // Large max_wait so all submissions coalesce into one batch.
        let batcher = Batcher::new(reg, policy(8, 100_000), Some(cache), Arc::clone(&metrics));
        let img = images(1).remove(0);
        let receivers: Vec<_> = (0..4)
            .map(|_| batcher.submit(None, img.clone()).unwrap())
            .collect();
        let want = donn.logits(&img);
        for rx in receivers {
            assert_eq!(rx.recv().unwrap(), want);
        }
        // Per-request accounting: every request was either a cold miss
        // (deduped into one computation when coalesced) or — if timing
        // split the batch — a hit on the freshly cached hop.
        let snap = metrics.snapshot();
        assert_eq!(snap.cache_hits + snap.cache_misses, 4);
        assert!(snap.cache_misses >= 1);
    }

    #[test]
    fn mixed_model_traffic_groups_by_model() {
        let mut rng = Rng::seed_from(5);
        let donn = Donn::random(DonnConfig::scaled(32), &mut rng);
        let mut reg = ModelRegistry::new();
        reg.register("ideal", donn.clone());
        reg.register_quantized("q4", &donn, 4);
        let reg = Arc::new(reg);
        let batcher = Batcher::new(
            Arc::clone(&reg),
            policy(8, 5_000),
            None,
            Arc::new(Metrics::new()),
        );
        let imgs = images(4);
        let mut expect = Vec::new();
        let mut receivers = Vec::new();
        for (i, img) in imgs.iter().enumerate() {
            let name = if i % 2 == 0 { "ideal" } else { "q4" };
            expect.push(reg.get(name).unwrap().logits_batch(&[img], 1).remove(0));
            receivers.push(batcher.submit(Some(name), img.clone()).unwrap());
        }
        for (want, rx) in expect.into_iter().zip(receivers) {
            assert_eq!(rx.recv().unwrap(), want, "cross-model routing broke");
        }
    }
}
