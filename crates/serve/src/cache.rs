//! The input-hop cache: a memory-budgeted LRU over `P(encode(image))`.
//!
//! Every DONN forward pass starts with a free-space hop that no trainable
//! mask has touched — it depends only on the image and the optics. For
//! serving traffic with repeated inputs (the ROADMAP's input-hop-caching
//! item), caching that first hop removes one of `L+1` propagation hops per
//! request, and because `DonnConfig::optics_compatible` models share the
//! propagator, one cache serves every registered variant.
//!
//! Keys are the raw little-endian bytes of the image (dimensions + `f64`
//! bits), so lookups are exact — two images hash equal iff every pixel is
//! bit-identical. The budget is expressed in bytes of *cached payload*
//! (key + field); least-recently-used entries are evicted until the
//! inserted entry fits.

use photonn_math::{CGrid, Grid};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Approximate bookkeeping overhead charged per entry.
const ENTRY_OVERHEAD: usize = 64;

struct Entry {
    // Arc so a hit clones a pointer under the lock, not a field buffer
    // (~640 KB at paper scale); the memcopy into the batch stack happens
    // outside the critical section.
    field: Arc<CGrid>,
    cost: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Vec<u8>, Entry>,
    bytes: usize,
    tick: u64,
}

/// A thread-safe, memory-budgeted LRU cache of first-hop fields.
pub struct FirstHopCache {
    inner: Mutex<Inner>,
    budget_bytes: usize,
}

impl FirstHopCache {
    /// Creates a cache bounded to roughly `budget_bytes` of payload.
    ///
    /// # Panics
    ///
    /// Panics if the budget is zero (use `Option<FirstHopCache>` to
    /// disable caching instead).
    pub fn new(budget_bytes: usize) -> Self {
        assert!(
            budget_bytes > 0,
            "zero cache budget; omit the cache instead"
        );
        FirstHopCache {
            inner: Mutex::new(Inner::default()),
            budget_bytes,
        }
    }

    /// The exact-match cache key of an image: dimensions plus the
    /// little-endian bit pattern of every pixel.
    pub fn key(image: &Grid) -> Vec<u8> {
        let mut key = Vec::with_capacity(16 + image.len() * 8);
        key.extend((image.rows() as u64).to_le_bytes());
        key.extend((image.cols() as u64).to_le_bytes());
        for &v in image.as_slice() {
            key.extend(v.to_bits().to_le_bytes());
        }
        key
    }

    /// Looks up a first-hop field, bumping its recency. Hit/miss
    /// accounting is the caller's job (the server records it in
    /// `Metrics`, the single source of truth).
    pub fn get(&self, key: &[u8]) -> Option<Arc<CGrid>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.field)
        })
    }

    /// Inserts a first-hop field, evicting least-recently-used entries
    /// until the budget holds. An entry larger than the whole budget is
    /// silently not cached.
    pub fn insert(&self, key: Vec<u8>, field: Arc<CGrid>) {
        let cost = key.len()
            + field.len() * std::mem::size_of::<photonn_math::Complex64>()
            + ENTRY_OVERHEAD;
        if cost > self.budget_bytes {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.cost;
        }
        while inner.bytes + cost > self.budget_bytes {
            // O(n) LRU scan: the budget bounds n, and eviction is off the
            // per-request fast path (only on insert of a new image).
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("over budget implies non-empty");
            let evicted = inner.map.remove(&oldest).expect("key just found");
            inner.bytes -= evicted.cost;
        }
        inner.bytes += cost;
        inner.map.insert(
            key,
            Entry {
                field,
                cost,
                last_used: tick,
            },
        );
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current payload bytes.
    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("cache lock").bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_math::Complex64;

    fn field(seed: f64) -> Arc<CGrid> {
        Arc::new(CGrid::from_fn(4, 4, |r, c| {
            Complex64::new(seed + r as f64, c as f64)
        }))
    }

    fn image(seed: f64) -> Grid {
        Grid::from_fn(4, 4, |r, c| seed + (r * 4 + c) as f64 / 16.0)
    }

    #[test]
    fn keys_are_exact() {
        let a = image(0.1);
        let mut b = a.clone();
        assert_eq!(FirstHopCache::key(&a), FirstHopCache::key(&b));
        b[(3, 3)] = f64::from_bits(b[(3, 3)].to_bits() ^ 1); // one-ulp flip changes the key
        assert_ne!(FirstHopCache::key(&a), FirstHopCache::key(&b));
        // Shape is part of the key even when bytes would collide.
        let row = Grid::zeros(1, 16);
        let col = Grid::zeros(16, 1);
        assert_ne!(FirstHopCache::key(&row), FirstHopCache::key(&col));
    }

    #[test]
    fn hit_returns_identical_field() {
        let cache = FirstHopCache::new(1 << 20);
        let key = FirstHopCache::key(&image(0.0));
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), field(7.0));
        assert_eq!(cache.get(&key).unwrap(), field(7.0));
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        // Each entry costs key (16 + 128) + field (4*4*16) + overhead.
        let one = FirstHopCache::key(&image(1.0)).len() + 16 * 16 + ENTRY_OVERHEAD;
        let cache = FirstHopCache::new(one * 2 + 1); // room for two entries
        let keys: Vec<Vec<u8>> = (0..3)
            .map(|i| FirstHopCache::key(&image(i as f64)))
            .collect();
        cache.insert(keys[0].clone(), field(0.0));
        cache.insert(keys[1].clone(), field(1.0));
        assert_eq!(cache.len(), 2);
        // Touch entry 0 so entry 1 is the LRU victim.
        assert!(cache.get(&keys[0]).is_some());
        cache.insert(keys[2].clone(), field(2.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&keys[0]).is_some(), "recently used survived");
        assert!(cache.get(&keys[1]).is_none(), "LRU evicted");
        assert!(cache.get(&keys[2]).is_some());
        assert!(cache.bytes() <= one * 2 + 1);
    }

    #[test]
    fn oversized_entry_skipped() {
        let cache = FirstHopCache::new(8);
        cache.insert(FirstHopCache::key(&image(0.0)), field(0.0));
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_replaces_without_double_charge() {
        let cache = FirstHopCache::new(1 << 20);
        let key = FirstHopCache::key(&image(0.0));
        cache.insert(key.clone(), field(1.0));
        let bytes = cache.bytes();
        cache.insert(key.clone(), field(2.0));
        assert_eq!(cache.bytes(), bytes);
        assert_eq!(cache.get(&key).unwrap(), field(2.0));
    }
}
