//! A minimal readiness-polling shim over `epoll(7)` (Linux) or `poll(2)`
//! (other Unixes) — the kernel interface behind the event-loop frontend,
//! with no runtime dependency.
//!
//! The workspace is offline (no mio, no tokio), so the syscalls are
//! declared directly against the C runtime that `std` already links, in
//! the same confined-unsafe style as `photonn_math::simd`: this module is
//! the only `unsafe` surface in the crate, every call site is a thin
//! wrapper that checks the return value, and nothing here touches pointers
//! that outlive the call.
//!
//! The surface is deliberately tiny:
//!
//! * [`Poller`] — register/modify/deregister interest in a file
//!   descriptor under a caller-chosen `u64` token, and [`Poller::wait`]
//!   for readiness events. Level-triggered on both backends, so a handler
//!   that does not drain a socket is re-notified rather than wedged.
//! * [`Waker`] — a self-pipe (a `UnixStream` pair, no syscalls of its
//!   own) that other threads use to interrupt a blocked
//!   [`Poller::wait`]; the dispatcher shards ring it when completed
//!   batches are ready to fan back out.
//! * [`raise_nofile_limit`] — lifts `RLIMIT_NOFILE` toward its hard cap
//!   so a 10k-connection saturation run does not die on the default soft
//!   limit.

#![allow(unsafe_code)]

use std::io;
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Readiness interest for a registered descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — a connection with queued output.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Readable (includes peer hang-up and error conditions, so a read
    /// is always attempted and observes the failure directly).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// A readiness poller over the platform's level-triggered polling
/// facility. One event-loop thread owns it; registration methods take
/// `&mut self` to make that single-threaded ownership explicit.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Creates a poller.
    ///
    /// # Errors
    ///
    /// Returns the OS error when the polling facility cannot be created.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: Backend::new()?,
        })
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Returns the OS error (e.g. on a duplicate registration).
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.register(fd, token, interest)
    }

    /// Changes the interest of an already-registered descriptor.
    ///
    /// # Errors
    ///
    /// Returns the OS error (e.g. when `fd` was never registered).
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.modify(fd, token, interest)
    }

    /// Removes a descriptor from the interest set. Safe to call on a
    /// descriptor about to be closed (closing also deregisters, but doing
    /// it explicitly keeps the fallback backend's bookkeeping exact).
    ///
    /// # Errors
    ///
    /// Returns the OS error.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.backend.deregister(fd)
    }

    /// Blocks until at least one registered descriptor is ready or the
    /// timeout elapses, appending events to `events` (cleared first).
    /// `None` blocks indefinitely. Spurious wakeups with zero events are
    /// normal; interrupted waits (`EINTR`) return empty rather than erroring.
    ///
    /// # Errors
    ///
    /// Returns the OS error from the underlying wait.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.backend.wait(events, timeout)
    }
}

/// Converts an `Option<Duration>` into the millisecond timeout convention
/// shared by `epoll_wait` and `poll`: `-1` blocks, `0` polls.
/// Sub-millisecond waits round up to 1 ms so a 100 µs request never
/// busy-spins.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => i32::try_from(
            d.as_millis()
                .max(u128::from(d.subsec_nanos() % 1_000_000 != 0)),
        )
        .unwrap_or(i32::MAX),
    }
}

// ---------------------------------------------------------------- epoll

#[cfg(target_os = "linux")]
use epoll_backend::Backend;

#[cfg(target_os = "linux")]
mod epoll_backend {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`; packed on x86-64 only, matching the kernel ABI
    /// (and libc's definition) on every Linux architecture.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    pub struct Backend {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            // SAFETY: epoll_create1 takes no pointers; the fd is checked
            // and owned (closed in Drop).
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Backend {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it before
            // returning. DEL ignores the event pointer.
            check(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let cap = self.buf.len() as i32;
            // SAFETY: the buffer pointer/length pair is valid for the
            // whole call and `n` is bounded by `cap`.
            let n =
                unsafe { epoll_wait(self.epfd, self.buf.as_mut_ptr(), cap, timeout_ms(timeout)) };
            let n = match check(n) {
                Ok(n) => n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            // A full buffer means more events may be pending; grow so a
            // 10k-connection stampede is drained in O(1) wait calls.
            if n == self.buf.len() {
                self.buf
                    .resize(self.buf.len() * 2, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            // SAFETY: closing an owned fd exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

// ---------------------------------------------------------------- poll(2)

#[cfg(not(target_os = "linux"))]
use poll_backend::Backend;

#[cfg(not(target_os = "linux"))]
mod poll_backend {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        // `nfds_t` is `u32` on the BSD-derived platforms this fallback
        // targets (the Linux build uses epoll above).
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.readable {
            m |= POLLIN;
        }
        if interest.writable {
            m |= POLLOUT;
        }
        m
    }

    /// O(n)-per-wait fallback: a flat interest list re-submitted to
    /// `poll(2)` each time. Fine for the non-Linux development case; the
    /// production target is the epoll backend.
    pub struct Backend {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Ok(Backend {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        fn position(&self, fd: RawFd) -> Option<usize> {
            self.fds.iter().position(|p| p.fd == fd)
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.position(fd).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.fds.push(PollFd {
                fd,
                events: mask(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let at = self
                .position(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds[at].events = mask(interest);
            self.tokens[at] = token;
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let at = self
                .position(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds.swap_remove(at);
            self.tokens.swap_remove(at);
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            if self.fds.is_empty() {
                if let Some(d) = timeout {
                    std::thread::sleep(d);
                }
                return Ok(());
            }
            // SAFETY: the slice pointer/length pair is valid for the call.
            let n = unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as u32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (p, &token) in self.fds.iter().zip(&self.tokens) {
                let bits = p.revents;
                if bits == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: bits & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: bits & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

// ----------------------------------------------------------------- waker

/// A cross-thread wakeup for a parked [`Poller::wait`].
///
/// Built on a connected `UnixStream` pair (std-only, no extra syscall
/// declarations): [`WakeHandle::wake`] writes one byte to the far end, which
/// makes the near end — registered with the poller — readable. Cloneable
/// and safe to ring from any thread; coalesces naturally (a full pipe
/// means a wake is already pending, which is exactly the semantics
/// needed).
pub struct Waker {
    tx: std::os::unix::net::UnixStream,
    rx: std::os::unix::net::UnixStream,
}

impl Waker {
    /// Creates a waker pair.
    ///
    /// # Errors
    ///
    /// Returns the OS error when the socket pair cannot be created.
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The descriptor to register (readable) with the poller.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// A send-only handle for other threads.
    ///
    /// # Errors
    ///
    /// Returns the OS error when the descriptor cannot be duplicated.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle {
            tx: self.tx.try_clone()?,
        })
    }

    /// Drains pending wake bytes so level-triggered polling stops
    /// reporting the waker readable.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// The sending half of a [`Waker`], cloneable into any thread.
pub struct WakeHandle {
    tx: std::os::unix::net::UnixStream,
}

impl WakeHandle {
    /// Interrupts the poller. A full pipe (`WouldBlock`) means a wake is
    /// already pending and is treated as success.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }
}

impl Clone for WakeHandle {
    fn clone(&self) -> Self {
        WakeHandle {
            tx: self.tx.try_clone().expect("clone waker stream"),
        }
    }
}

/// Registers a plain `TcpStream`'s descriptor — the common case, kept as
/// a helper so call sites do not repeat the `AsRawFd` dance.
pub fn fd_of(stream: &TcpStream) -> RawFd {
    stream.as_raw_fd()
}

// --------------------------------------------------------------- rlimits

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// `RLIMIT_NOFILE` on Linux and the BSDs (macOS included).
const RLIMIT_NOFILE: i32 = if cfg!(target_os = "linux") { 7 } else { 8 };

/// Raises the soft open-file limit to `min(want, hard limit)` and returns
/// the resulting soft limit. A saturation bench driving 10k+ sockets from
/// one process calls this first; failure to raise is reported, not fatal,
/// so callers can degrade to fewer connections loudly.
///
/// # Errors
///
/// Returns the OS error when the limit cannot be read or raised.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: out-pointer valid for the call; checked return.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur >= want {
        return Ok(lim.cur);
    }
    let target = want.min(lim.max);
    let new = RLimit {
        cur: target,
        max: lim.max,
    };
    // SAFETY: in-pointer valid for the call; checked return.
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_reports_accept_read_write_readiness() {
        let mut poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(listener.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        // Nothing connected yet: a short wait returns no listener event.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7));

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "pending connection must make the listener readable: {events:?}"
        );

        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .register(server_side.as_raw_fd(), 9, Interest::READ_WRITE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 9 && e.writable),
            "fresh socket must be writable: {events:?}"
        );

        // Data from the client makes the server side readable.
        poller
            .modify(server_side.as_raw_fd(), 9, Interest::READ)
            .unwrap();
        client.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 9 && e.readable),
            "pending byte must make the socket readable: {events:?}"
        );
        let mut buf = [0u8; 8];
        assert_eq!((&server_side).read(&mut buf).unwrap(), 1);

        poller.deregister(server_side.as_raw_fd()).unwrap();
        poller.deregister(listener.as_raw_fd()).unwrap();
        // Deregistered fds produce no further events.
        client.write_all(b"y").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            events.is_empty(),
            "deregistered fd still reported: {events:?}"
        );
    }

    #[test]
    fn waker_interrupts_a_blocked_wait_and_drains() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.fd(), 1, Interest::READ).unwrap();
        let handle = waker.handle().unwrap();
        let ringer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            handle.wake();
        });
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "wake did not interrupt the wait"
        );
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        ringer.join().unwrap();

        // Drained, the waker stops reporting readable.
        waker.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "drained waker still readable");
    }

    #[test]
    fn repeated_wakes_coalesce() {
        let waker = Waker::new().unwrap();
        let handle = waker.handle().unwrap();
        // Far more wakes than the pipe buffer holds: all must be absorbed
        // without blocking the caller.
        for _ in 0..100_000 {
            handle.wake();
        }
        waker.drain();
    }

    #[test]
    fn nofile_limit_is_reported() {
        let now = raise_nofile_limit(64).unwrap();
        assert!(now >= 64);
    }
}
