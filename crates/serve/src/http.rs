//! A minimal HTTP/1.1 codec: a blocking reader/writer pair for clients,
//! plus an incremental zero-copy parser ([`parse_available`]) for the
//! event-loop frontend.
//!
//! The workspace is offline (no tokio/hyper), so the server hand-rolls the
//! protocol the same way `photonn-fft` hand-rolls its worker pool: just
//! enough HTTP/1.1 for JSON inference traffic — request-line + headers +
//! `Content-Length` bodies, keep-alive by default, explicit size limits on
//! every input so a hostile peer cannot balloon memory.
//!
//! The incremental parser works over whatever bytes a non-blocking read
//! has accumulated so far: it either yields a [`RequestRef`] **borrowing**
//! the connection buffer (method, path, headers, and body are slices — no
//! copies before the JSON decode that feeds the planar batch stack),
//! reports [`ParseOutcome::Partial`] to wait for more bytes, or fails with
//! a [`ProtocolError`] that carries the request path when known, so the
//! server can answer in the right API dialect before closing.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line and on any single header line.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;
/// Upper bound on a request body (a 200×200 float image is ~1 MB of JSON).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method verb (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// Request target path (query string included, if any).
    pub path: String,
    /// Header name/value pairs in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for a (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the peer asked to close the connection after this
    /// exchange (`Connection: close`); HTTP/1.1 defaults to keep-alive.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one request from the stream.
///
/// Returns `Ok(None)` on a clean end-of-stream before any byte of a new
/// request (the peer closed a keep-alive connection).
///
/// # Errors
///
/// `io::ErrorKind::InvalidData` for protocol violations (malformed request
/// line, oversized lines/body, bad `Content-Length`). A read timeout is
/// passed through as `WouldBlock`/`TimedOut` **only when no byte of the
/// request was consumed yet** (an idle keep-alive connection — callers use
/// it to poll a shutdown flag); once parsing has consumed bytes, a timeout
/// becomes `InvalidData`, because retrying from mid-stream would desync
/// the connection.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let line = match read_line(reader, true)? {
        None => return Ok(None),
        Some(line) => line,
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v),
        _ => return Err(bad_data("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad_data("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, false)
            .map_err(fatal_timeout)?
            .ok_or_else(|| bad_data("eof in headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad_data("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad_data("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    let body = match request.header("content-length") {
        None => Vec::new(),
        Some(text) => {
            let length: usize = text.parse().map_err(|_| bad_data("bad content-length"))?;
            if length > MAX_BODY_BYTES {
                return Err(bad_data("body too large"));
            }
            let mut body = vec![0u8; length];
            reader.read_exact(&mut body).map_err(fatal_timeout)?;
            body
        }
    };
    Ok(Some(Request { body, ..request }))
}

/// Writes a complete response with a string body.
///
/// # Errors
///
/// Returns any transport error.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    // One buffer, one write: a headers-then-body write pair would let
    // Nagle hold the body back until the headers are ACKed (~40 ms per
    // exchange on loopback keep-alive traffic).
    let mut response = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    )
    .into_bytes();
    response.extend_from_slice(body.as_bytes());
    writer.write_all(&response)?;
    writer.flush()
}

/// Canonical reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn bad_data(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Once part of a request has been consumed, a read timeout can no longer
/// be retried (the next parse would start mid-stream): reclassify it as a
/// protocol error so the connection is answered 400 and closed.
fn fatal_timeout(e: io::Error) -> io::Error {
    if matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    ) {
        bad_data("timed out mid-request")
    } else {
        e
    }
}

/// Reads one CRLF- (or LF-) terminated line, without the terminator.
/// `None` on end-of-stream before any byte when `eof_ok` is set.
fn read_line(reader: &mut impl BufRead, eof_ok: bool) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = match reader.read(&mut byte) {
            Ok(n) => n,
            // A timeout after part of a line was consumed cannot be
            // retried; only a timeout at a clean boundary may pass
            // through untouched.
            Err(e) if !line.is_empty() => return Err(fatal_timeout(e)),
            Err(e) => return Err(e),
        };
        if n == 0 {
            if line.is_empty() && eof_ok {
                return Ok(None);
            }
            return Err(bad_data("unexpected end of stream"));
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            let text = String::from_utf8(line).map_err(|_| bad_data("non-UTF-8 header data"))?;
            return Ok(Some(text));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(bad_data("line too long"));
        }
    }
}

// ------------------------------------------------ incremental parsing

/// A request parsed in place: every field borrows the connection buffer.
#[derive(Debug)]
pub struct RequestRef<'a> {
    /// Method verb, uppercase as sent.
    pub method: &'a str,
    /// Request target path (query string included, if any).
    pub path: &'a str,
    /// Header name/value pairs in arrival order, trimmed but otherwise
    /// as sent; use [`RequestRef::header`] for case-insensitive lookup.
    pub headers: Vec<(&'a str, &'a str)>,
    /// Raw request body (empty when no `Content-Length` was sent).
    pub body: &'a [u8],
}

impl RequestRef<'_> {
    /// First header value for a (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| *v)
    }

    /// `true` when the peer asked to close the connection after this
    /// exchange (`Connection: close`); HTTP/1.1 defaults to keep-alive.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Result of feeding accumulated bytes to [`parse_available`].
#[derive(Debug)]
pub enum ParseOutcome<'a> {
    /// The buffer does not yet hold a complete request; read more bytes
    /// and call again with the grown buffer.
    Partial,
    /// One complete request. The caller must drain exactly `consumed`
    /// bytes from the front of the buffer afterwards; pipelined followers
    /// may already sit behind them.
    Ready {
        /// The parsed request, borrowing the buffer.
        request: RequestRef<'a>,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
}

/// A protocol violation found while parsing. The connection is beyond
/// recovery (retrying would parse from mid-stream); the server answers
/// once and closes.
#[derive(Debug)]
pub struct ProtocolError {
    /// Suggested status: `400`, or `413` for an oversized body.
    pub status: u16,
    /// What went wrong, phrased exactly like the blocking parser.
    pub message: &'static str,
    /// The request path, when the request line had already parsed —
    /// lets the server pick the v1 or v2 error dialect.
    pub path: Option<String>,
}

fn perr(status: u16, message: &'static str) -> ProtocolError {
    ProtocolError {
        status,
        message,
        path: None,
    }
}

/// Takes the next complete line out of `buf` starting at `*at`, advancing
/// `*at` past its terminator. `None` when the line is still incomplete.
fn take_line<'a>(buf: &'a [u8], at: &mut usize) -> Result<Option<&'a str>, ProtocolError> {
    let rest = &buf[*at..];
    match rest.iter().position(|&b| b == b'\n') {
        None => {
            if rest.len() > MAX_LINE_BYTES {
                Err(perr(400, "line too long"))
            } else {
                Ok(None)
            }
        }
        Some(nl) => {
            if nl > MAX_LINE_BYTES {
                return Err(perr(400, "line too long"));
            }
            let mut line = &rest[..nl];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            let text = std::str::from_utf8(line).map_err(|_| perr(400, "non-UTF-8 header data"))?;
            *at += nl + 1;
            Ok(Some(text))
        }
    }
}

/// Incrementally parses one request from the bytes accumulated so far.
///
/// Pure over the input slice: a `Partial` outcome leaves no state behind,
/// so the event loop simply re-parses once more bytes land (header blocks
/// are ≤ 8 KB + 64 lines, re-scanning is noise next to a forward pass).
/// Limits mirror the blocking parser; the body cap is a parameter because
/// the server makes it configurable per deployment.
///
/// # Errors
///
/// [`ProtocolError`] on any protocol violation — malformed request line,
/// bad version, oversized lines/headers/body, bad `Content-Length`.
pub fn parse_available(buf: &[u8], max_body: usize) -> Result<ParseOutcome<'_>, ProtocolError> {
    let mut at = 0usize;
    let line = match take_line(buf, &mut at)? {
        None => return Ok(ParseOutcome::Partial),
        Some(line) => line,
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(perr(400, "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(perr(400, "unsupported HTTP version"));
    }
    let with_path = |mut e: ProtocolError| {
        e.path = Some(path.to_string());
        e
    };

    let mut headers = Vec::new();
    loop {
        let line = match take_line(buf, &mut at).map_err(with_path)? {
            None => return Ok(ParseOutcome::Partial),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(with_path(perr(400, "too many headers")));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| with_path(perr(400, "malformed header")))?;
        headers.push((name.trim(), value.trim()));
    }

    let request = RequestRef {
        method,
        path,
        headers,
        body: &[],
    };
    let length = match request.header("content-length") {
        None => 0,
        Some(text) => text
            .parse::<usize>()
            .map_err(|_| with_path(perr(400, "bad content-length")))?,
    };
    if length > max_body {
        return Err(with_path(perr(413, "body too large")));
    }
    if buf.len() - at < length {
        return Ok(ParseOutcome::Partial);
    }
    Ok(ParseOutcome::Ready {
        request: RequestRef {
            body: &buf[at..at + length],
            ..request
        },
        consumed: at + length,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> io::Result<Option<Request>> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/logits HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/logits");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_lf_only_lines() {
        let raw = b"GET /healthz HTTP/1.1\nConnection: close\n\n";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_yields_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_inputs_rejected() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET /x HTTP/2\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"[..],
        ] {
            assert!(parse(raw).is_err(), "accepted: {raw:?}");
        }
    }

    #[test]
    fn oversized_body_rejected_before_allocation() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(parse(raw.as_bytes()).is_err());
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", "{\"a\":1}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));

        let mut out = Vec::new();
        write_response(&mut out, 429, "application/json", "{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    /// Yields `limit` bytes of `data`, then fails every read with
    /// `WouldBlock` — a socket whose peer stalled mid-request.
    struct Stalling<'a> {
        data: &'a [u8],
        at: usize,
        limit: usize,
    }

    impl io::Read for Stalling<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.at >= self.limit {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stall"));
            }
            let n = buf
                .len()
                .min(self.limit - self.at)
                .min(self.data.len() - self.at);
            buf[..n].copy_from_slice(&self.data[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    #[test]
    fn timeout_at_request_boundary_passes_through_but_mid_request_is_fatal() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 8\r\n\r\n12345678";
        // Stall before any byte: an idle keep-alive poll, retryable.
        let mut idle = BufReader::new(Stalling {
            data: raw,
            at: 0,
            limit: 0,
        });
        let err = read_request(&mut idle).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);

        // Stall mid-request-line, mid-headers, and mid-body: retrying
        // would parse from mid-stream, so all must become InvalidData.
        for limit in [4, 20, raw.len() - 3] {
            let mut stalled = BufReader::new(Stalling {
                data: raw,
                at: 0,
                limit,
            });
            let err = read_request(&mut stalled).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "stall after {limit} bytes must be fatal, got {err:?}"
            );
        }
    }

    #[test]
    fn keep_alive_stream_yields_sequential_requests() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        assert_eq!(read_request(&mut reader).unwrap().unwrap().path, "/a");
        assert_eq!(read_request(&mut reader).unwrap().unwrap().path, "/b");
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    // ------------------------------------------ incremental parser

    #[test]
    fn incremental_parse_is_partial_at_every_prefix_then_ready() {
        let raw = b"POST /v2/logits HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcdLEFTOVER";
        let full = raw.len() - b"LEFTOVER".len();
        for cut in 0..full {
            match parse_available(&raw[..cut], MAX_BODY_BYTES).unwrap() {
                ParseOutcome::Partial => {}
                ParseOutcome::Ready { .. } => panic!("ready at {cut} of {full} bytes"),
            }
        }
        match parse_available(raw, MAX_BODY_BYTES).unwrap() {
            ParseOutcome::Ready { request, consumed } => {
                assert_eq!(consumed, full, "must not consume pipelined follower bytes");
                assert_eq!(request.method, "POST");
                assert_eq!(request.path, "/v2/logits");
                assert_eq!(request.header("HOST"), Some("x"));
                assert_eq!(request.body, b"abcd");
                assert!(!request.wants_close());
            }
            other => panic!("expected ready: {other:?}"),
        }
    }

    #[test]
    fn incremental_parse_pipelined_requests_consume_exactly() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let first = match parse_available(raw, MAX_BODY_BYTES).unwrap() {
            ParseOutcome::Ready { request, consumed } => {
                assert_eq!(request.path, "/a");
                consumed
            }
            other => panic!("expected ready: {other:?}"),
        };
        match parse_available(&raw[first..], MAX_BODY_BYTES).unwrap() {
            ParseOutcome::Ready { request, consumed } => {
                assert_eq!(request.path, "/b");
                assert_eq!(request.body, b"hi");
                assert_eq!(first + consumed, raw.len());
            }
            other => panic!("expected ready: {other:?}"),
        }
    }

    #[test]
    fn incremental_parse_rejects_protocol_violations() {
        for (raw, message) in [
            (&b"GARBAGE\r\n\r\n"[..], "malformed request line"),
            (&b"GET /x HTTP/2\r\n\r\n"[..], "unsupported HTTP version"),
            (
                &b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n"[..],
                "malformed header",
            ),
            (
                &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
                "bad content-length",
            ),
        ] {
            let err = parse_available(raw, MAX_BODY_BYTES).unwrap_err();
            assert_eq!(err.message, message);
            assert_eq!(err.status, 400);
        }
        // Once the request line parsed, errors carry the path.
        let err =
            parse_available(b"GET /v2/x HTTP/1.1\r\nbad\r\n\r\n", MAX_BODY_BYTES).unwrap_err();
        assert_eq!(err.path.as_deref(), Some("/v2/x"));
    }

    #[test]
    fn incremental_parse_oversized_body_is_413_with_path() {
        let raw = b"POST /v2/logits HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        let err = parse_available(raw, 64).unwrap_err();
        assert_eq!(err.status, 413);
        assert_eq!(err.message, "body too large");
        assert_eq!(err.path.as_deref(), Some("/v2/logits"));
        // Under the cap the same request is simply partial.
        assert!(matches!(
            parse_available(raw, 128).unwrap(),
            ParseOutcome::Partial
        ));
    }

    #[test]
    fn incremental_parse_bounds_runaway_lines() {
        // An attacker streaming an endless request line is cut off as soon
        // as the accumulated (incomplete) line passes the cap.
        let raw = vec![b'A'; MAX_LINE_BYTES + 2];
        let err = parse_available(&raw, MAX_BODY_BYTES).unwrap_err();
        assert_eq!(err.message, "line too long");
    }
}
