//! # photonn-serve
//!
//! A request-batching inference server over the `photonn` batched
//! propagation engine — the ROADMAP's "async serving frontend" realized
//! with the standard library only (the workspace is offline: no tokio, no
//! hyper; the listener is hand-rolled the way `photonn-fft` hand-rolls
//! its worker pool).
//!
//! ```text
//!  clients ──HTTP──▶ handler threads ──submit──▶ bounded queue
//!                                                    │ coalesce
//!                                                    ▼ (max_batch / max_wait_us)
//!                                   dispatcher: one BatchCGrid ─▶ logits_batch
//!                                                    │
//!  clients ◀──JSON── handler threads ◀──channels── fan-out
//! ```
//!
//! The crate's pieces, bottom-up:
//!
//! | Module | Role |
//! |---|---|
//! | [`json`] | hand-rolled JSON codec (bit-exact `f64` round-trips), shared via `photonn-wire` |
//! | [`http`] | minimal HTTP/1.1 request/response over blocking streams |
//! | [`metrics`] | queue depth, batch-size histogram, p50/p99 latency |
//! | [`cache`] | memory-budgeted LRU over the mask-independent first hop |
//! | [`registry`] | named model variants: ideal / quantized / deployed |
//! | [`batcher`] | the dynamic micro-batcher with bounded-queue backpressure |
//! | [`server`] | threaded TCP listener, routing, graceful shutdown |
//!
//! Because the batched engine is per-sample deterministic across batch
//! sizes and thread counts, a served logits vector is **bit-identical** to
//! a direct [`photonn_donn::Donn::logits`] call on the same image, no
//! matter how the dispatcher coalesced the traffic — the end-to-end tests
//! assert exactly that through a real TCP socket.
//!
//! # Examples
//!
//! ```
//! use photonn_donn::{Donn, DonnConfig};
//! use photonn_math::{Grid, Rng};
//! use photonn_serve::{ModelRegistry, Server, ServerConfig};
//!
//! let mut rng = Rng::seed_from(7);
//! let donn = Donn::random(DonnConfig::scaled(32), &mut rng);
//! let mut registry = ModelRegistry::new();
//! registry.register("ideal", donn.clone());
//!
//! let mut server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
//! let addr = server.addr();
//! // ... POST {"image": [...]} to http://{addr}/v1/logits ...
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod server;

// The JSON codec moved to `photonn-wire` so the distributed trainer can
// speak the same dialect; re-exported here to keep `photonn_serve::json`
// (and every existing caller) working unchanged.
pub use photonn_wire::json;

pub use batcher::{BatchPolicy, Batcher, SubmitError};
pub use cache::FirstHopCache;
pub use json::Json;
pub use metrics::{Metrics, MetricsSnapshot};
pub use registry::{ModelRegistry, ServedModel, VariantKind};
pub use server::{Server, ServerConfig, ServerHandle};
