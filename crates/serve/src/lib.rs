//! # photonn-serve
//!
//! An event-loop inference server over the `photonn` batched propagation
//! engine — the ROADMAP's "async serving frontend" realized with the
//! standard library only (the workspace is offline: no tokio, no hyper,
//! no mio; the readiness poller is a hand-rolled `epoll`/`poll(2)` shim
//! the way `photonn-fft` hand-rolls its worker pool).
//!
//! ```text
//!  10k clients ──HTTP──▶ event loop (epoll) ── conn state machines
//!                              │  incremental parse → planar batch stack
//!                              ▼
//!              N dispatcher shards (per-model queues, work-stealing,
//!              admission control: degrade batches under p99 pressure,
//!              then shed with 429 + retry_after_ms)
//!                              │  one BatchCGrid ─▶ logits_batch
//!                              ▼
//!  10k clients ◀──JSON── event loop ◀── completion queue + waker
//! ```
//!
//! The crate's pieces, bottom-up:
//!
//! | Module | Role |
//! |---|---|
//! | [`json`] | hand-rolled JSON codec (bit-exact `f64` round-trips), shared via `photonn-wire` |
//! | [`poll`] | minimal `epoll`/`poll(2)` readiness shim + cross-thread waker (the crate's only `unsafe`) |
//! | [`http`] | minimal HTTP/1.1: blocking codec for clients + incremental zero-copy parser for the event loop |
//! | [`metrics`] | queue depth, batch-size histogram, p50/p99 latency, per-shard steal/shed counters |
//! | [`cache`] | memory-budgeted LRU over the mask-independent first hop |
//! | [`registry`] | named model variants: ideal / quantized / deployed / noise-injected |
//! | [`head`] | selectable readout heads: region sums or differential detection |
//! | [`shard`] | sharded dispatch: per-model queues, work-stealing, admission control |
//! | [`batcher`] | the classic dynamic micro-batcher API, now a 1-shard façade over [`shard`] |
//! | [`server`] | the event-loop frontend: [`ServerBuilder`], `/v1` + `/v2` routing, graceful drain |
//!
//! Because the batched engine is per-sample deterministic across batch
//! sizes and thread counts, a served logits vector is **bit-identical** to
//! a direct [`photonn_donn::Donn::logits`] call on the same image, no
//! matter how the dispatcher coalesced the traffic — the end-to-end tests
//! assert exactly that through a real TCP socket, and the `/v1` wire
//! format is pinned byte-for-byte by committed fixtures.
//!
//! # Examples
//!
//! ```
//! use photonn_donn::{Donn, DonnConfig};
//! use photonn_math::{Grid, Rng};
//! use photonn_serve::{ModelRegistry, ServerBuilder};
//!
//! let mut rng = Rng::seed_from(7);
//! let donn = Donn::random(DonnConfig::scaled(32), &mut rng);
//! let mut registry = ModelRegistry::new();
//! registry.register("ideal", donn.clone());
//!
//! let mut server = ServerBuilder::new(registry)
//!     .shards(2)
//!     .bind("127.0.0.1:0")
//!     .unwrap();
//! let addr = server.addr();
//! // ... POST {"inputs": [[...]]} to http://{addr}/v2/logits ...
//! server.shutdown();
//! ```

#![deny(unsafe_code)] // confined: `poll` opts back in at module level
#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod client;
pub mod head;
pub mod http;
pub mod metrics;
pub mod poll;
pub mod registry;
pub mod server;
pub mod shard;

// The JSON codec moved to `photonn-wire` so the distributed trainer can
// speak the same dialect; re-exported here to keep `photonn_serve::json`
// (and every existing caller) working unchanged.
pub use photonn_wire::json;

pub use batcher::{BatchPolicy, Batcher, SubmitError};
pub use cache::FirstHopCache;
pub use client::{ApiError, BatchInference, Client, ClientError, Inference};
pub use head::ReadoutHead;
pub use json::Json;
pub use metrics::{Metrics, MetricsSnapshot};
pub use registry::{ModelRegistry, ServedModel, VariantKind};
pub use server::{ServeConfig, Server, ServerBuilder, ServerConfig, ServerHandle};
