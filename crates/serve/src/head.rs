//! Selectable readout heads: how per-region detector intensity becomes a
//! logits vector.
//!
//! The paper reads out a DONN by summing intensity over each class's
//! detector region ([`ReadoutHead::Sum`], §III-A). Class-specific
//! **differential detection** (Li et al., arXiv:1906.03417) instead
//! assigns each class a positive and a negative sub-region and scores by
//! their normalized difference — the physical analogue of a signed
//! output neuron, which sharpens decision margins on hardware where
//! absolute intensity drifts. [`ReadoutHead::Differential`] implements
//! that by splitting each region into left (+) and right (−) halves.
//!
//! Heads are selected per request on the `/v2` API; `/v1` is pinned to
//! [`ReadoutHead::Sum`], whose float-op sequence is shared with
//! [`photonn_donn::region_sums_planar`] so a served sum-head logit stays
//! bit-identical to the direct `logits_batch` path.

use photonn_donn::{region_sums_planar, Region};

/// Normalization floor for the differential head: keeps the score finite
/// when a region receives (numerically) zero light.
const DIFF_EPS: f64 = 1e-12;

/// A readout head, selected per `/v2` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReadoutHead {
    /// Per-region intensity sums — the paper's readout and the `/v1`
    /// wire behavior. Bit-identical to `Donn::logits` by construction.
    #[default]
    Sum,
    /// Class-specific differential detection (arXiv:1906.03417): each
    /// region is split into a left (positive) and right (negative) half
    /// and scored as `(S⁺ − S⁻) / (S⁺ + S⁻ + ε)`.
    Differential,
}

impl ReadoutHead {
    /// Parses a wire name (`"sum"` / `"differential"`).
    pub fn parse(name: &str) -> Option<ReadoutHead> {
        match name {
            "sum" => Some(ReadoutHead::Sum),
            "differential" => Some(ReadoutHead::Differential),
            _ => None,
        }
    }

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            ReadoutHead::Sum => "sum",
            ReadoutHead::Differential => "differential",
        }
    }

    /// All heads, for `/v2/models` listings.
    pub fn all() -> [ReadoutHead; 2] {
        [ReadoutHead::Sum, ReadoutHead::Differential]
    }

    /// Reads one sample's row-major intensity plane of width `cols` into
    /// per-class logits.
    pub fn readout(self, sample: &[f64], cols: usize, regions: &[Region]) -> Vec<f64> {
        match self {
            ReadoutHead::Sum => region_sums_planar(sample, cols, regions),
            ReadoutHead::Differential => regions
                .iter()
                .map(|reg| {
                    let (plus, minus) = split_region(reg);
                    let s_plus = half_sum(sample, cols, &plus);
                    let s_minus = half_sum(sample, cols, &minus);
                    (s_plus - s_minus) / (s_plus + s_minus + DIFF_EPS)
                })
                .collect(),
        }
    }
}

/// Splits a region into its left (+) and right (−) halves. A 1-pixel-wide
/// region degenerates to an empty negative half, reducing to a normalized
/// sum rather than failing.
fn split_region(reg: &Region) -> (Region, Region) {
    let half = reg.w / 2;
    let plus = Region {
        r0: reg.r0,
        c0: reg.c0,
        h: reg.h,
        w: half.max(reg.w.min(1)),
    };
    let minus = Region {
        r0: reg.r0,
        c0: reg.c0 + plus.w,
        h: reg.h,
        w: reg.w - plus.w,
    };
    (plus, minus)
}

fn half_sum(sample: &[f64], cols: usize, reg: &Region) -> f64 {
    (reg.r0..reg.r0 + reg.h)
        .map(|r| {
            let o = r * cols + reg.c0;
            sample[o..o + reg.w].iter().sum::<f64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(r0: usize, c0: usize, h: usize, w: usize) -> Region {
        Region { r0, c0, h, w }
    }

    #[test]
    fn parse_round_trips() {
        for head in ReadoutHead::all() {
            assert_eq!(ReadoutHead::parse(head.name()), Some(head));
        }
        assert_eq!(ReadoutHead::parse("softmax"), None);
        assert_eq!(ReadoutHead::default(), ReadoutHead::Sum);
    }

    #[test]
    fn sum_head_matches_region_sums_planar_bitwise() {
        let cols = 8;
        let sample: Vec<f64> = (0..64).map(|i| (i as f64) * 0.37 + 0.01).collect();
        let regions = [region(1, 1, 3, 4), region(4, 2, 2, 2)];
        let via_head = ReadoutHead::Sum.readout(&sample, cols, &regions);
        let direct = region_sums_planar(&sample, cols, &regions);
        assert_eq!(via_head.len(), direct.len());
        for (a, b) in via_head.iter().zip(&direct) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "sum head drifted from planar sums"
            );
        }
    }

    #[test]
    fn differential_head_scores_signed_halves() {
        let cols = 4;
        // 4×4 plane: light only in columns 0–1 (the + half of a full-width region).
        let mut sample = vec![0.0; 16];
        for r in 0..4 {
            sample[r * 4] = 1.0;
            sample[r * 4 + 1] = 1.0;
        }
        let regions = [region(0, 0, 4, 4)];
        let bright_left = ReadoutHead::Differential.readout(&sample, cols, &regions)[0];
        assert!(
            bright_left > 0.99,
            "all-positive light must score ≈ +1, got {bright_left}"
        );

        // Mirror: light only in columns 2–3.
        let mut sample = vec![0.0; 16];
        for r in 0..4 {
            sample[r * 4 + 2] = 1.0;
            sample[r * 4 + 3] = 1.0;
        }
        let bright_right = ReadoutHead::Differential.readout(&sample, cols, &regions)[0];
        assert!(
            bright_right < -0.99,
            "all-negative light must score ≈ −1, got {bright_right}"
        );

        // Balanced light cancels.
        let sample = vec![0.5; 16];
        let balanced = ReadoutHead::Differential.readout(&sample, cols, &regions)[0];
        assert!(
            balanced.abs() < 1e-9,
            "balanced light must cancel, got {balanced}"
        );
    }

    #[test]
    fn differential_head_is_finite_on_dark_plane() {
        let sample = vec![0.0; 16];
        let regions = [region(0, 0, 4, 4)];
        let score = ReadoutHead::Differential.readout(&sample, 4, &regions)[0];
        assert!(score.is_finite());
        assert_eq!(score, 0.0);
    }

    #[test]
    fn one_pixel_wide_region_degenerates_gracefully() {
        let sample = vec![2.0; 16];
        let regions = [region(0, 0, 4, 1)];
        let score = ReadoutHead::Differential.readout(&sample, 4, &regions)[0];
        assert!(score.is_finite());
        assert!(score > 0.0, "all light, empty minus half: positive score");
    }
}
