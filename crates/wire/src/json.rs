//! A minimal hand-rolled JSON codec — the wire format of the inference
//! server's HTTP API and of the distributed trainer's gradient protocol.
//!
//! The workspace is offline and dependency-free, so this module implements
//! exactly the JSON subset those protocols need: UTF-8 text, the six
//! standard value kinds, `\uXXXX` escapes (including surrogate pairs) and
//! strict number syntax. Numbers are stored as `f64` and serialized with
//! Rust's shortest-roundtrip [`std::fmt::Display`], so an `f64` written by
//! one process parses back to the *identical* bits in another — the
//! property that makes end-to-end bit-identity of served logits (and of
//! TCP-shipped shard gradients) testable at all.

use std::fmt;

/// Maximum nesting depth accepted by the parser (defense against
/// stack-overflow payloads on a public port).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order. Duplicate keys are preserved as
    /// parsed; [`Json::get`] returns the *first* match.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with byte offset and description.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax violation.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= usize::MAX as f64 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn object(pairs: Vec<(String, Json)>) -> Json {
        Json::Obj(pairs)
    }

    /// Builds an array of numbers.
    pub fn numbers(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest representation that round-trips the bits.
                    out.push_str(&format!("{v}"));
                } else {
                    // JSON has no NaN/Inf; null is the least-surprising spelling.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a low surrogate escape must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            other => return Err(self.err(format!("invalid escape '\\{}'", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Num(42.0)),
            ("-0.5e3", Json::Num(-500.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value);
        }
    }

    #[test]
    fn f64_display_roundtrips_bits() {
        for v in [
            0.1 + 0.2,
            1.234e-17,
            f64::MIN_POSITIVE,
            1e300,
            -0.0034053745584437397,
        ] {
            let text = Json::Num(v).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {text} -> {back}");
        }
    }

    #[test]
    fn nested_document_roundtrips() {
        let doc = Json::object(vec![
            ("model".into(), Json::Str("ideal".into())),
            ("image".into(), Json::numbers(&[0.0, 0.5, 1.0])),
            (
                "nested".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true)]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert_eq!(doc.get("model").and_then(Json::as_str), Some("ideal"));
        assert_eq!(doc.get("image").and_then(Json::as_array).unwrap().len(), 3);
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn string_escapes_parse_and_serialize() {
        let parsed = Json::parse(r#""a\"b\\c\nd\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str().unwrap(), "a\"b\\c\ndé😀");
        let reserialized = parsed.to_string();
        assert_eq!(Json::parse(&reserialized).unwrap(), parsed);
        // Control characters must be escaped on output.
        assert_eq!(Json::Str("\u{1}".into()).to_string(), r#""\u0001""#);
    }

    #[test]
    fn malformed_documents_rejected() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"abc",
            "\"\\q\"",
            "[1] x",
            "\"\\ud800\"",
            "+1",
        ] {
            assert!(Json::parse(text).is_err(), "accepted: {text:?}");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn as_usize_accepts_whole_numbers_only() {
        assert_eq!(Json::Num(7.0).as_usize(), Some(7));
        assert_eq!(Json::Num(7.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Str("7".into()).as_usize(), None);
    }
}
