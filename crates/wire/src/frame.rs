//! Length-prefixed message framing over any byte stream.
//!
//! The `photonn-dist` gradient protocol exchanges JSON documents over
//! loopback TCP. TCP is a byte stream with no message boundaries, so every
//! document travels as one *frame*: a 4-byte little-endian payload length
//! followed by that many bytes of UTF-8 JSON. The reader enforces a hard
//! size cap so a corrupt or hostile length prefix cannot trigger an
//! arbitrary-size allocation.

use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (1 GiB). The largest real message is
/// `photonn-dist`'s full-dataset init handshake, which at the paper-native
/// grid 200 fits several hundred images per GiB of JSON (~0.75 MiB per
/// image); a paper-scale 60k-sample dataset does **not** fit and needs the
/// ROADMAP's chunked/compressed handshake. An oversized *send* is a clean
/// [`FrameError::TooLarge`], not a panic, so a coordinator refuses the
/// session instead of aborting; on the read side the cap keeps a corrupt
/// or hostile length prefix from triggering an arbitrary-size allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// Errors from frame reading.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport failure.
    Io(io::Error),
    /// The stream closed cleanly before a length prefix (end of session).
    Closed,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge(usize),
    /// The payload is not valid UTF-8.
    NotUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Closed => write!(f, "stream closed"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds cap of {MAX_FRAME_BYTES}")
            }
            FrameError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        match e {
            FrameError::Io(inner) => inner,
            FrameError::Closed => io::Error::new(io::ErrorKind::UnexpectedEof, "stream closed"),
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Writes one framed message (length prefix + payload) and flushes.
///
/// # Errors
///
/// Returns any transport error, or `InvalidInput` when `payload` exceeds
/// [`MAX_FRAME_BYTES`] (e.g. an init handshake shipping a dataset too
/// large for one frame) — the message is then not sent at all, so the
/// stream stays consistent and the caller can surface the refusal.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            FrameError::TooLarge(payload.len()).to_string(),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one framed message. [`FrameError::Closed`] distinguishes a clean
/// end-of-stream (peer hung up between messages) from a mid-frame EOF,
/// which surfaces as [`FrameError::Io`].
///
/// # Errors
///
/// Returns [`FrameError`] on transport failure, clean close, an oversized
/// length prefix, or a non-UTF-8 payload.
pub fn read_frame(r: &mut impl Read) -> Result<String, FrameError> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no bytes at all" (clean close) from a torn prefix.
    match r.read(&mut len_buf).map_err(FrameError::Io)? {
        0 => return Err(FrameError::Closed),
        n => r.read_exact(&mut len_buf[n..]).map_err(FrameError::Io)?,
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    String::from_utf8(payload).map_err(|_| FrameError::NotUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_preserves_payload() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "second message é😀").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), "{\"a\":1}");
        assert_eq!(read_frame(&mut r).unwrap(), "");
        assert_eq!(read_frame(&mut r).unwrap(), "second message é😀");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend((u32::MAX).to_le_bytes());
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn torn_prefix_is_io_error_not_clean_close() {
        let mut r = Cursor::new(vec![1u8, 0]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let mut buf = Vec::new();
        buf.extend(10u32.to_le_bytes());
        buf.extend(b"short");
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn non_utf8_payload_rejected() {
        let mut buf = Vec::new();
        buf.extend(2u32.to_le_bytes());
        buf.extend([0xff, 0xfe]);
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::NotUtf8)));
    }
}
