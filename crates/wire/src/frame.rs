//! Length-prefixed message framing over any byte stream.
//!
//! The `photonn-dist` gradient protocol exchanges JSON documents over
//! loopback TCP. TCP is a byte stream with no message boundaries, so every
//! document travels as one *frame*: a 4-byte little-endian payload length
//! followed by that many bytes of UTF-8 JSON. The reader enforces a hard
//! size cap so a corrupt or hostile length prefix cannot trigger an
//! arbitrary-size allocation.

use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (1 GiB). The largest real message is
/// `photonn-dist`'s full-dataset init handshake, which at the paper-native
/// grid 200 fits several hundred images per GiB of JSON (~0.75 MiB per
/// image); a paper-scale 60k-sample dataset does **not** fit and needs the
/// ROADMAP's chunked/compressed handshake. An oversized *send* is a clean
/// [`FrameError::TooLarge`], not a panic, so a coordinator refuses the
/// session instead of aborting; on the read side the cap keeps a corrupt
/// or hostile length prefix from triggering an arbitrary-size allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// Errors from frame reading.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport failure.
    Io(io::Error),
    /// The stream closed cleanly before a length prefix (end of session).
    Closed,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge(usize),
    /// The payload is not valid UTF-8.
    NotUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Closed => write!(f, "stream closed"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds cap of {MAX_FRAME_BYTES}")
            }
            FrameError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        match e {
            FrameError::Io(inner) => inner,
            FrameError::Closed => io::Error::new(io::ErrorKind::UnexpectedEof, "stream closed"),
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Writes one framed message (length prefix + payload) and flushes.
///
/// # Errors
///
/// Returns any transport error, or `InvalidInput` when `payload` exceeds
/// [`MAX_FRAME_BYTES`] (e.g. an init handshake shipping a dataset too
/// large for one frame) — the message is then not sent at all, so the
/// stream stays consistent and the caller can surface the refusal.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            FrameError::TooLarge(payload.len()).to_string(),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one framed message. [`FrameError::Closed`] distinguishes a clean
/// end-of-stream (peer hung up between messages) from a mid-frame EOF,
/// which surfaces as [`FrameError::Io`] with `UnexpectedEof`.
///
/// The payload buffer grows with the bytes actually received rather than
/// being preallocated at the advertised length, so a corrupt length prefix
/// *below* [`MAX_FRAME_BYTES`] followed by a short stream costs only the
/// bytes that arrived, never the advertised allocation.
///
/// # Errors
///
/// Returns [`FrameError`] on transport failure, clean close, an oversized
/// length prefix, or a non-UTF-8 payload.
pub fn read_frame(r: &mut impl Read) -> Result<String, FrameError> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no bytes at all" (clean close) from a torn prefix.
    match r.read(&mut len_buf).map_err(FrameError::Io)? {
        0 => return Err(FrameError::Closed),
        n => r.read_exact(&mut len_buf[n..]).map_err(FrameError::Io)?,
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    // take + read_to_end grows the buffer as bytes arrive; a mid-frame EOF
    // surfaces as UnexpectedEof instead of handing back a short payload.
    let mut payload = Vec::new();
    let got = r
        .take(len as u64)
        .read_to_end(&mut payload)
        .map_err(FrameError::Io)?;
    if got < len {
        return Err(FrameError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("stream ended {got} bytes into a {len}-byte frame"),
        )));
    }
    String::from_utf8(payload).map_err(|_| FrameError::NotUtf8)
}

/// `true` when an I/O error is a read/write *timeout* (the socket's
/// `set_read_timeout` deadline elapsing surfaces as `WouldBlock` on Unix
/// and `TimedOut` on Windows) rather than a transport failure. Timeouts
/// are the one retryable error class: a peer that is alive but slow keeps
/// heartbeating, so the reader loops; everything else means the
/// connection is gone.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_preserves_payload() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "second message é😀").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), "{\"a\":1}");
        assert_eq!(read_frame(&mut r).unwrap(), "");
        assert_eq!(read_frame(&mut r).unwrap(), "second message é😀");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend((u32::MAX).to_le_bytes());
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn torn_prefix_is_io_error_not_clean_close() {
        let mut r = Cursor::new(vec![1u8, 0]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let mut buf = Vec::new();
        buf.extend(10u32.to_le_bytes());
        buf.extend(b"short");
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn non_utf8_payload_rejected() {
        let mut buf = Vec::new();
        buf.extend(2u32.to_le_bytes());
        buf.extend([0xff, 0xfe]);
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::NotUtf8)));
    }

    #[test]
    fn timeout_classifier_only_matches_timeouts() {
        assert!(is_timeout(&io::Error::from(io::ErrorKind::WouldBlock)));
        assert!(is_timeout(&io::Error::from(io::ErrorKind::TimedOut)));
        for kind in [
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::InvalidData,
        ] {
            assert!(!is_timeout(&io::Error::from(kind)), "{kind:?}");
        }
    }

    /// A tiny xorshift so the corruption property tests stay seeded and
    /// dependency-free (`photonn-wire` sits below `photonn-math`).
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn sample_frame(rng: &mut XorShift) -> Vec<u8> {
        let len = (rng.next() % 64) as usize;
        let payload: String = (0..len)
            .map(|_| char::from(b'a' + (rng.next() % 26) as u8))
            .collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        buf
    }

    #[test]
    fn property_truncation_at_every_byte_errors_cleanly() {
        // Cutting a valid frame at any byte boundary must yield Closed
        // (nothing at all) or an Io error (torn prefix / mid-frame EOF) —
        // never a panic, never a short payload handed back as success.
        let mut rng = XorShift(0x9e3779b97f4a7c15);
        for _ in 0..16 {
            let frame = sample_frame(&mut rng);
            for cut in 0..frame.len() {
                let mut r = Cursor::new(frame[..cut].to_vec());
                match read_frame(&mut r) {
                    Err(FrameError::Closed) => assert_eq!(cut, 0, "Closed only with no bytes"),
                    Err(FrameError::Io(e)) => assert!(cut > 0, "torn read at {cut}: {e}"),
                    Err(other) => panic!("cut at {cut}: unexpected {other}"),
                    Ok(s) => panic!("cut at {cut} of {} decoded {s:?}", frame.len()),
                }
            }
        }
    }

    #[test]
    fn property_random_byte_corruption_never_panics_or_overallocates() {
        // Flip random bytes of valid frames: the reader must return *some*
        // Result without panicking, and an inflated-but-under-cap length
        // prefix over a short stream must cost only the bytes that arrived
        // (mid-frame EOF), not the advertised allocation.
        let mut rng = XorShift(0xdeadbeefcafe1234);
        for _ in 0..64 {
            let mut frame = sample_frame(&mut rng);
            let flips = 1 + (rng.next() % 4) as usize;
            for _ in 0..flips {
                let at = (rng.next() as usize) % frame.len();
                frame[at] ^= (rng.next() % 255) as u8 + 1;
            }
            let mut r = Cursor::new(frame.clone());
            let _ = read_frame(&mut r); // any Ok/Err is fine; panics are not
        }
        // The targeted version of the allocation property: a prefix
        // claiming MAX_FRAME_BYTES over a 3-byte stream.
        let mut buf = Vec::new();
        buf.extend((MAX_FRAME_BYTES as u32).to_le_bytes());
        buf.extend(b"abc");
        let mut r = Cursor::new(buf);
        match read_frame(&mut r) {
            Err(FrameError::Io(e)) => {
                assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "{e}");
            }
            other => panic!("expected mid-frame EOF, got {other:?}"),
        }
    }

    #[test]
    fn property_corrupt_length_prefix_roundtrip_survivors_decode_exactly() {
        // Corrupting only the *payload* of a frame (never the prefix) must
        // still read back exactly len bytes — framing never desyncs on
        // payload content.
        let mut rng = XorShift(0x0123456789abcdef);
        for _ in 0..32 {
            let mut frame = sample_frame(&mut rng);
            if frame.len() > 4 {
                let at = 4 + (rng.next() as usize) % (frame.len() - 4);
                frame[at] = (rng.next() % 128) as u8; // keep it ASCII/UTF-8
            }
            let expected_len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
            let mut r = Cursor::new(frame);
            let got = read_frame(&mut r).expect("payload corruption stays in-frame");
            assert_eq!(got.len(), expected_len);
        }
    }
}
