//! # photonn-wire
//!
//! The workspace's shared wire codecs. The workspace is offline and
//! dependency-free, so both network-facing subsystems hand-roll their
//! protocols from the standard library; this crate holds the pieces they
//! have in common so neither re-implements the other's bugs:
//!
//! * [`json`] — the minimal JSON codec originally written for
//!   `photonn-serve`'s HTTP API. Its load-bearing property is **bit-exact
//!   `f64` round-trips** (shortest-roundtrip `Display`, strict parse), which
//!   is what makes "served logits are bit-identical to direct calls" and
//!   "TCP-shipped gradients are bit-identical to in-process gradients"
//!   testable claims rather than hopes.
//! * [`frame`] — length-prefixed message framing over any byte stream, the
//!   transport under `photonn-dist`'s rank-0 ↔ peer gradient protocol
//!   (HTTP's `Content-Length` plays the same role for `photonn-serve`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod json;

pub use frame::{is_timeout, read_frame, write_frame, FrameError};
pub use json::{Json, JsonError};
