//! 2π periodic phase optimization (paper §III-D2).
//!
//! Phase modulation is 2π-periodic — `exp(i(φ+2π)) = exp(iφ)` — so adding
//! 2π to selected pixels changes *nothing* about inference but can remove
//! sharp steps from the fabricated surface. Selecting which pixels get the
//! add-on is a combinatorial optimization; the paper relaxes it with
//! Gumbel-Softmax and descends on the roughness of the shifted mask. A
//! greedy coordinate-descent baseline is included as an ablation, plus a
//! combined mode that polishes the Gumbel solution greedily.

use photonn_autodiff::penalty::roughness_value;
use photonn_autodiff::{
    hard_select, logistic_noise, Adam, RoughnessConfig, Tape, TemperatureSchedule,
};
use photonn_math::{Grid, Rng, TWO_PI};
use std::sync::Arc;

/// Gumbel-Softmax optimizer parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GumbelParams {
    /// Gradient-descent iterations on the selection logits.
    pub iterations: usize,
    /// Adam learning rate for the logits.
    pub learning_rate: f64,
    /// Temperature annealing schedule.
    pub temperature: TemperatureSchedule,
    /// Noise seed (runs are deterministic per seed).
    pub seed: u64,
}

impl Default for GumbelParams {
    fn default() -> Self {
        GumbelParams {
            iterations: 250,
            learning_rate: 0.3,
            temperature: TemperatureSchedule::new(2.0, 0.1, 250),
            seed: 0,
        }
    }
}

/// Strategy for solving the 2π selection problem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TwoPiStrategy {
    /// Gumbel-Softmax relaxation (the paper's method).
    Gumbel(GumbelParams),
    /// Greedy coordinate descent: sweep pixels, toggle +2π when it lowers
    /// roughness locally. Exact local moves, no relaxation.
    Greedy {
        /// Maximum full-mask sweeps (stops early at a fixed point).
        sweeps: usize,
    },
    /// Gumbel first, then greedy polishing (never worse than Gumbel).
    GumbelThenGreedy(GumbelParams, usize),
}

impl Default for TwoPiStrategy {
    fn default() -> Self {
        TwoPiStrategy::Gumbel(GumbelParams::default())
    }
}

/// Result of optimizing one mask.
#[derive(Clone, Debug)]
pub struct TwoPiResult {
    /// The smoothed mask (original plus 0/2π per pixel).
    pub mask: Grid,
    /// Roughness before optimization.
    pub roughness_before: f64,
    /// Roughness after optimization (≤ before by construction).
    pub roughness_after: f64,
    /// Number of pixels that received the 2π add-on.
    pub shifted_pixels: usize,
}

/// Optimizes a single phase mask. The result is guaranteed no worse than
/// the input (a candidate that fails to improve roughness is discarded),
/// and inference-equivalent to it by the 2π periodicity.
pub fn optimize_mask(mask: &Grid, cfg: RoughnessConfig, strategy: &TwoPiStrategy) -> TwoPiResult {
    let before = roughness_value(mask, cfg);
    let candidate = match strategy {
        TwoPiStrategy::Gumbel(params) => gumbel_optimize(mask, cfg, params),
        TwoPiStrategy::Greedy { sweeps } => {
            greedy_optimize(mask, vec![false; mask.len()], cfg, *sweeps)
        }
        TwoPiStrategy::GumbelThenGreedy(params, sweeps) => {
            // Greedy receives Gumbel's selection as its starting state so
            // it can both extend the solution and *revert* spurious flips
            // (noise in the relaxed objective) — pure repair rounding.
            let gumbel = gumbel_optimize(mask, cfg, params);
            let shifted: Vec<bool> = gumbel
                .as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| (a - b).abs() > 1.0)
                .collect();
            greedy_optimize(mask, shifted, cfg, *sweeps)
        }
    };
    let after = roughness_value(&candidate, cfg);
    let (final_mask, final_r) = if after < before {
        (candidate, after)
    } else {
        (mask.clone(), before)
    };
    let shifted_pixels = final_mask
        .as_slice()
        .iter()
        .zip(mask.as_slice())
        .filter(|(a, b)| (**a - **b).abs() > 1.0)
        .count();
    TwoPiResult {
        mask: final_mask,
        roughness_before: before,
        roughness_after: final_r,
        shifted_pixels,
    }
}

/// Optimizes every layer of a DONN (paper: applied to all phase masks).
pub fn optimize_all(
    masks: &[Grid],
    cfg: RoughnessConfig,
    strategy: &TwoPiStrategy,
) -> Vec<TwoPiResult> {
    masks
        .iter()
        .map(|m| optimize_mask(m, cfg, strategy))
        .collect()
}

/// Gumbel-Softmax relaxation: descend the roughness of `φ + 2π·σ((l+ε)/τ)`
/// on the logits `l`, then harden with `argmax`.
fn gumbel_optimize(mask: &Grid, cfg: RoughnessConfig, params: &GumbelParams) -> Grid {
    let (rows, cols) = mask.shape();
    let base = Arc::new(mask.clone());
    // Slight negative bias: the all-zeros add-on is the identity solution.
    let mut logits = vec![Grid::full(rows, cols, -0.5)];
    let mut adam = Adam::new(params.learning_rate);
    let mut rng = Rng::seed_from(params.seed ^ 0x2b1f_5eed);

    for iter in 0..params.iterations {
        let temp = params.temperature.at(iter);
        let noise = Arc::new(logistic_noise(rows, cols, &mut rng));
        let mut tape = Tape::new();
        let lv = tape.leaf_real(logits[0].clone());
        let soft = tape.binary_concrete(lv, &noise, temp);
        let addon = tape.scale_r(soft, TWO_PI);
        let shifted = tape.offset_r(addon, &base);
        let loss = tape.roughness(shifted, cfg);
        let grads = tape.backward(loss);
        let g = grads.real(lv).expect("logit gradient").clone();
        adam.step(&mut logits, &[g]);
    }

    let select = hard_select(&logits[0]);
    let mut out = mask.clone();
    for (v, s) in out.as_mut_slice().iter_mut().zip(&select) {
        if *s {
            *v += TWO_PI;
        }
    }
    out
}

/// Local roughness cost of pixel `(r, c)` having phase `value`, counting
/// each interior pair once per direction it appears in Eq. 4.
fn local_cost(mask: &Grid, r: usize, c: usize, value: f64, cfg: RoughnessConfig) -> f64 {
    let (rows, cols) = mask.shape();
    let inv_k = 1.0 / cfg.neighborhood.k() as f64;
    let mut cost = 0.0;
    for &(dr, dc) in cfg.neighborhood.offsets() {
        let qr = r as isize + dr;
        let qc = c as isize + dc;
        let in_grid = qr >= 0 && qc >= 0 && (qr as usize) < rows && (qc as usize) < cols;
        let q = if in_grid {
            mask[(qr as usize, qc as usize)]
        } else {
            0.0
        };
        let d = match cfg.metric {
            photonn_autodiff::DiffMetric::Abs => (q - value).abs(),
            photonn_autodiff::DiffMetric::Squared => (q - value) * (q - value),
        };
        // Interior pairs are counted in both pixels' Eq. 3 terms.
        cost += if in_grid { 2.0 * inv_k * d } else { inv_k * d };
    }
    cost
}

/// Greedy coordinate descent over the binary add-on field, starting from
/// an existing selection (`shifted[i]` = pixel `i` already holds +2π).
fn greedy_optimize(
    original: &Grid,
    mut shifted: Vec<bool>,
    cfg: RoughnessConfig,
    sweeps: usize,
) -> Grid {
    let (rows, cols) = original.shape();
    let mut mask = original.clone();
    for (v, s) in mask.as_mut_slice().iter_mut().zip(&shifted) {
        if *s {
            *v += TWO_PI;
        }
    }
    for _ in 0..sweeps {
        let mut changed = false;
        for r in 0..rows {
            for c in 0..cols {
                let idx = r * cols + c;
                let current = mask[(r, c)];
                let alternative = if shifted[idx] {
                    current - TWO_PI
                } else {
                    current + TWO_PI
                };
                let now = local_cost(&mask, r, c, current, cfg);
                let alt = local_cost(&mask, r, c, alternative, cfg);
                if alt + 1e-12 < now {
                    mask[(r, c)] = alternative;
                    shifted[idx] = !shifted[idx];
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_math::CGrid;

    fn cfg() -> RoughnessConfig {
        RoughnessConfig::paper()
    }

    /// A mask with deliberate near-2π steps that the optimizer can heal.
    fn steppy_mask(n: usize) -> Grid {
        Grid::from_fn(n, n, |r, c| {
            if (r + c) % 2 == 0 {
                0.2 + 0.01 * r as f64
            } else {
                TWO_PI - 0.3 + 0.01 * c as f64
            }
        })
    }

    /// A smooth high-phase mask with isolated low-phase outliers — the
    /// single-pixel pattern greedy coordinate descent *can* heal (unlike
    /// checkerboards, where no single flip helps; that's the local-minimum
    /// failure mode that motivates the paper's Gumbel-Softmax approach,
    /// see `gumbel_beats_greedy_on_checkerboard`).
    fn outlier_mask(n: usize) -> Grid {
        Grid::from_fn(n, n, |r, c| {
            if r % 4 == 1 && c % 4 == 2 {
                0.15
            } else {
                TWO_PI - 0.4 + 0.02 * (r as f64 - c as f64)
            }
        })
    }

    #[test]
    fn greedy_reduces_roughness_on_outlier_mask() {
        let mask = outlier_mask(12);
        let result = optimize_mask(&mask, cfg(), &TwoPiStrategy::Greedy { sweeps: 10 });
        assert!(
            result.roughness_after < result.roughness_before * 0.8,
            "greedy: {} -> {}",
            result.roughness_before,
            result.roughness_after
        );
        assert!(result.shifted_pixels > 0);
    }

    #[test]
    fn gumbel_beats_greedy_on_checkerboard() {
        // On a checkerboard every single-pixel flip raises local roughness
        // (diagonal neighbors share parity), so greedy is stuck at the
        // identity while the Gumbel relaxation can move all pixels of one
        // parity together — the paper's motivation for a global method.
        let mask = steppy_mask(12);
        let greedy = optimize_mask(&mask, cfg(), &TwoPiStrategy::Greedy { sweeps: 10 });
        assert_eq!(greedy.roughness_after, greedy.roughness_before);
        let gumbel = optimize_mask(&mask, cfg(), &TwoPiStrategy::default());
        assert!(gumbel.roughness_after < greedy.roughness_after * 0.8);
    }

    #[test]
    fn gumbel_reduces_roughness_on_steppy_mask() {
        let mask = steppy_mask(12);
        let result = optimize_mask(&mask, cfg(), &TwoPiStrategy::default());
        assert!(
            result.roughness_after < result.roughness_before * 0.8,
            "gumbel: {} -> {}",
            result.roughness_before,
            result.roughness_after
        );
    }

    #[test]
    fn never_worse_than_input() {
        // A smooth mask has nothing to gain; the optimizer must return it
        // unchanged rather than degrade it.
        let smooth = Grid::from_fn(10, 10, |r, c| 0.01 * (r + c) as f64);
        for strategy in [
            TwoPiStrategy::default(),
            TwoPiStrategy::Greedy { sweeps: 5 },
        ] {
            let result = optimize_mask(&smooth, cfg(), &strategy);
            assert!(result.roughness_after <= result.roughness_before);
        }
    }

    #[test]
    fn inference_equivalence_is_exact() {
        // exp(i(φ+2π)) == exp(iφ) to fp rounding: the transmission fields
        // must match almost exactly.
        let mask = steppy_mask(10);
        let result = optimize_mask(&mask, cfg(), &TwoPiStrategy::Greedy { sweeps: 6 });
        let t_before = CGrid::from_phase(&mask);
        let t_after = CGrid::from_phase(&result.mask);
        assert!(
            t_before.max_abs_diff(&t_after) < 1e-9,
            "2π shift changed the transmission by {}",
            t_before.max_abs_diff(&t_after)
        );
    }

    #[test]
    fn gumbel_then_greedy_at_least_as_good_as_gumbel() {
        let mask = steppy_mask(12);
        let params = GumbelParams {
            iterations: 60,
            temperature: TemperatureSchedule::new(2.0, 0.2, 60),
            ..GumbelParams::default()
        };
        let g = optimize_mask(&mask, cfg(), &TwoPiStrategy::Gumbel(params));
        let gg = optimize_mask(&mask, cfg(), &TwoPiStrategy::GumbelThenGreedy(params, 5));
        assert!(gg.roughness_after <= g.roughness_after + 1e-9);
    }

    #[test]
    fn dense_smooth_training_masks_barely_move() {
        // §IV-B: for non-sparsified (dense, moderate) masks the 2π gain is
        // small (<2% in the paper). Use a mask with mild variation.
        let mut rng = Rng::seed_from(4);
        let mask = Grid::from_fn(16, 16, |r, c| {
            3.0 + 0.3 * ((r as f64 * 0.7).sin() + (c as f64 * 0.5).cos())
                + rng.uniform_in(-0.1, 0.1)
        });
        let result = optimize_mask(&mask, cfg(), &TwoPiStrategy::Greedy { sweeps: 8 });
        let drop = (result.roughness_before - result.roughness_after) / result.roughness_before;
        assert!(drop < 0.1, "dense mask roughness dropped {drop:.3}");
    }

    #[test]
    fn optimize_all_handles_multiple_layers() {
        let masks = vec![steppy_mask(8), Grid::zeros(8, 8)];
        let results = optimize_all(&masks, cfg(), &TwoPiStrategy::Greedy { sweeps: 4 });
        assert_eq!(results.len(), 2);
        assert!(results[0].roughness_after <= results[0].roughness_before);
        assert_eq!(results[1].roughness_after, 0.0);
    }
}
