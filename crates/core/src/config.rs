//! Whole-system configuration of a DONN.

use photonn_optics::{Distances, Geometry, KernelOptions, Padding};

use crate::detector::DetectorConfig;

/// Initial phase-mask distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MaskInit {
    /// All-zero phases.
    Zeros,
    /// Independent uniform `[0, 2π)` per pixel (maximum-entropy start;
    /// rough).
    UniformRandom,
    /// Low-frequency random field spanning `[0, 2π)`: a coarse uniform
    /// grid bilinearly upsampled, plus light per-pixel noise. Locally
    /// correlated like a converged training run's masks (the paper's
    /// 50–150-epoch baselines are smooth at the pixel scale, which is why
    /// their dense masks gain <2 % from 2π optimization), while still
    /// exercising the full phase range like the Fig. 5 masks.
    #[default]
    SmoothRandom,
}

/// How detector sums are turned into class scores for the loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LossKind {
    /// `‖softmax(scores) − onehot‖²` — the paper's MSELoss formulation.
    #[default]
    MseSoftmax,
    /// `−ln softmax(scores)_t` — cross-entropy extension.
    CrossEntropy,
}

/// Full configuration of a DONN system.
///
/// # Examples
///
/// ```
/// use photonn_donn::DonnConfig;
///
/// let paper = DonnConfig::paper();
/// assert_eq!(paper.geometry.grid, 200);
/// let small = DonnConfig::scaled(64);
/// assert_eq!(small.geometry.grid, 64);
/// assert_eq!(small.num_layers, 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DonnConfig {
    /// Plane geometry (grid size, pixel pitch, wavelength).
    pub geometry: Geometry,
    /// Distances between planes.
    pub distances: Distances,
    /// Number of diffractive layers (3 in the paper).
    pub num_layers: usize,
    /// Detector-plane layout.
    pub detector: DetectorConfig,
    /// Transfer-function construction options.
    pub kernel_options: KernelOptions,
    /// FFT padding policy for propagation.
    pub padding: Padding,
    /// Loss formulation.
    pub loss: LossKind,
    /// Normalize detector sums to a probability-like scale before softmax
    /// (prevents MSE-softmax saturation; see `photonn-autodiff` docs).
    pub normalize_detector: bool,
    /// Initial mask distribution for [`crate::Donn::random`].
    pub init: MaskInit,
}

impl DonnConfig {
    /// The paper's system: 200×200 grid, 36 µm pitch, 532 nm, three layers
    /// at 27.94 cm spacing, ten 20×20 detectors.
    pub fn paper() -> Self {
        DonnConfig {
            geometry: Geometry::paper(),
            distances: Distances::paper(),
            num_layers: 3,
            detector: DetectorConfig::paper_for_grid(200),
            kernel_options: KernelOptions::default(),
            padding: Padding::None,
            loss: LossKind::MseSoftmax,
            normalize_detector: true,
            init: MaskInit::default(),
        }
    }

    /// A compute-scaled system with `grid` pixels per side. Keeps the
    /// paper's aperture, wavelength, plane spacing, layer count and
    /// relative detector layout so the physics regime matches while the
    /// FFTs shrink — the default for the CPU benchmark harness.
    ///
    /// # Panics
    ///
    /// Panics if `grid < 10`.
    pub fn scaled(grid: usize) -> Self {
        DonnConfig {
            geometry: Geometry::paper_scaled(grid),
            distances: Distances::paper(),
            num_layers: 3,
            detector: DetectorConfig::paper_for_grid(grid),
            kernel_options: KernelOptions::default(),
            padding: Padding::None,
            loss: LossKind::MseSoftmax,
            normalize_detector: true,
            init: MaskInit::default(),
        }
    }

    /// Grid side length.
    pub fn grid(&self) -> usize {
        self.geometry.grid
    }

    /// `true` when two configurations share the same optical front end —
    /// geometry, plane spacing, kernel construction and FFT padding. Models
    /// with compatible optics have identical free-space propagators, so
    /// the mask-independent first hop `P(encode(image))` of any image can
    /// be computed once and shared between them (the invariant behind
    /// `photonn-serve`'s cross-variant input-hop cache, and the check its
    /// model registry performs at registration time).
    pub fn optics_compatible(&self, other: &DonnConfig) -> bool {
        self.geometry == other.geometry
            && self.distances == other.distances
            && self.kernel_options == other.kernel_options
            && self.padding == other.padding
    }

    /// Validates internal consistency (detector fits, positive layers).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first inconsistency found.
    pub fn validate(&self) {
        assert!(self.num_layers > 0, "a DONN needs at least one layer");
        // Constructing regions performs the geometric checks.
        let _ = self.detector.regions(self.grid());
        let _ = self.padding.padded_size(self.grid());
    }
}

impl Default for DonnConfig {
    /// Defaults to the paper's full-scale system.
    fn default() -> Self {
        DonnConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let cfg = DonnConfig::paper();
        cfg.validate();
        assert_eq!(cfg.num_layers, 3);
        assert_eq!(cfg.detector.num_classes, 10);
    }

    #[test]
    fn scaled_config_preserves_structure() {
        let cfg = DonnConfig::scaled(64);
        cfg.validate();
        assert_eq!(cfg.detector.region_size, 6);
        assert!((cfg.geometry.aperture() - Geometry::paper().aperture()).abs() < 1e-12);
    }

    #[test]
    fn optics_compatibility_ignores_heads_but_not_optics() {
        let a = DonnConfig::scaled(32);
        let mut b = DonnConfig::scaled(32);
        b.loss = LossKind::CrossEntropy;
        b.num_layers = 5;
        assert!(a.optics_compatible(&b), "heads/layers don't affect optics");
        let c = DonnConfig::scaled(64);
        assert!(!a.optics_compatible(&c), "different grids differ optically");
        let mut d = DonnConfig::scaled(32);
        d.padding = Padding::Double;
        assert!(!a.optics_compatible(&d), "padding changes the propagator");
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_invalid() {
        let mut cfg = DonnConfig::scaled(32);
        cfg.num_layers = 0;
        cfg.validate();
    }
}
