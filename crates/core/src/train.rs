//! Mini-batch training of DONN phase masks (paper §III-B, Eq. 5/8).
//!
//! The default path is the **batched propagation engine**: every step
//! builds *one* autodiff tape for the whole mini-batch
//! ([`crate::Donn::build_batch_loss`]) — fields travel as contiguous
//! `[batch, n, n]` stacks, each free-space hop is a single fused tape node
//! whose FFT work is chunked over worker threads, and one backward sweep
//! produces batch-averaged mask gradients directly. Those are combined
//! with the roughness / intra-block regularizer gradients and any
//! caller-supplied extra term (the SLR multiplier forces), then applied
//! with Adam.
//!
//! The seed implementation — one tape per *sample*, gradients averaged by
//! hand — is kept as [`per_sample_batch_gradients`]: it is the correctness
//! oracle for the batched engine (see the gradient-parity test below) and
//! the baseline for the `BENCH_batched_step` benchmark.

use photonn_autodiff::penalty::{block_variance_grad, roughness_grad};
use photonn_autodiff::{Adam, BlockReduce, MaskGrads, RoughnessConfig, Tape};
use photonn_datasets::{BatchIter, Dataset};
use photonn_math::block::BlockPartition;
use photonn_math::Grid;
use std::sync::Arc;

use crate::model::Donn;

/// Caller-supplied per-step gradient hook (the SLR multiplier forces).
pub type ExtraGradFn<'a> = &'a mut dyn FnMut(&[Grid]) -> Vec<Grid>;

/// Per-epoch observer hook: called with each epoch's [`EpochStats`] as it
/// completes (progress logging, early-stopping probes, CI smoke output).
pub type EpochHookFn<'a> = &'a mut dyn FnMut(&EpochStats);

/// Strengths and shapes of the paper's training-time regularizers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Regularization {
    /// Roughness weight `p` in Eq. 5 (0 disables).
    pub roughness_weight: f64,
    /// Roughness model for the penalty.
    pub roughness: RoughnessConfig,
    /// Intra-block smoothness weight `q` in Eq. 8 (0 disables).
    pub intra_weight: f64,
    /// Block size of the intra-block variance penalty.
    pub intra_block: usize,
}

impl Default for Regularization {
    fn default() -> Self {
        Regularization {
            roughness_weight: 0.0,
            roughness: RoughnessConfig::paper(),
            intra_weight: 0.0,
            intra_block: 1,
        }
    }
}

impl Regularization {
    /// No regularization (the `[5]/[6]/[8]` baseline).
    pub fn none() -> Self {
        Regularization::default()
    }

    /// Roughness-only regularization with weight `p` (Ours-A/C).
    pub fn roughness_only(p: f64) -> Self {
        Regularization {
            roughness_weight: p,
            ..Regularization::default()
        }
    }

    /// Roughness + intra-block smoothness (Ours-D).
    pub fn with_intra(p: f64, q: f64, block: usize) -> Self {
        Regularization {
            roughness_weight: p,
            intra_weight: q,
            intra_block: block,
            ..Regularization::default()
        }
    }

    /// The regularizer's loss value for one mask.
    pub fn penalty(&self, mask: &Grid) -> f64 {
        let mut total = 0.0;
        if self.roughness_weight != 0.0 {
            total += self.roughness_weight
                * photonn_autodiff::penalty::roughness_value(mask, self.roughness);
        }
        if self.intra_weight != 0.0 {
            let p = BlockPartition::square(mask.rows(), mask.cols(), self.intra_block);
            total += self.intra_weight
                * photonn_autodiff::penalty::block_variance_value(mask, p, BlockReduce::Sum);
        }
        total
    }

    /// The regularizer's gradient for one mask.
    pub fn gradient(&self, mask: &Grid) -> Grid {
        let mut grad = Grid::zeros(mask.rows(), mask.cols());
        if self.roughness_weight != 0.0 {
            grad += &roughness_grad(mask, self.roughness, self.roughness_weight);
        }
        if self.intra_weight != 0.0 {
            let p = BlockPartition::square(mask.rows(), mask.cols(), self.intra_block);
            grad += &block_variance_grad(mask, p, BlockReduce::Sum, self.intra_weight);
        }
        grad
    }
}

/// Training hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainOptions {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (paper: 200).
    pub batch_size: usize,
    /// Adam learning rate (paper: 0.2 baseline, 0.001 sparsification).
    pub learning_rate: f64,
    /// Shuffling seed.
    pub seed: u64,
    /// Worker threads for per-sample gradients.
    pub threads: usize,
    /// Regularization terms.
    pub regularization: Regularization,
    /// Geometric learning-rate decay: the final epoch runs at
    /// `learning_rate · lr_final_fraction` with per-epoch geometric
    /// interpolation. `1.0` disables decay. Converging the step size is
    /// what keeps trained masks pixel-smooth (Adam's late oscillation
    /// otherwise injects per-pixel phase noise at the `lr` scale).
    pub lr_final_fraction: f64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 5,
            batch_size: 32,
            learning_rate: 0.05,
            seed: 0,
            threads: 2,
            regularization: Regularization::none(),
            lr_final_fraction: 1.0,
        }
    }
}

/// Per-epoch training statistics.
///
/// Equality compares only the *deterministic* fields — everything except
/// [`steps_per_sec`](EpochStats::steps_per_sec), which is wall-clock
/// throughput and varies run to run on identical numerics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean per-sample data loss over the epoch.
    pub mean_loss: f64,
    /// Regularization penalty at epoch end (summed over layers).
    pub penalty: f64,
    /// Mean L2 norm of the applied per-batch update gradient (data +
    /// regularization + extra forces, after freeze masking) over the
    /// epoch — the signal the robustness matrix compares across training
    /// modes.
    pub grad_norm: f64,
    /// Optimizer steps (mini-batches) per wall-clock second this epoch.
    pub steps_per_sec: f64,
    /// Fraction of mask pixels whose phase lies outside the fabrication
    /// band `[0, 2π)` at epoch end. Masks initialize inside the band (see
    /// `MaskInit`) and the optimizer is free to walk out of it, so this is
    /// the wrapping pressure on the 2π-periodic parameterization — how
    /// much of the trained mask a fabricated device would have to wrap or
    /// heal with +2π steps.
    pub phase_saturation: f64,
}

impl PartialEq for EpochStats {
    fn eq(&self, other: &Self) -> bool {
        self.epoch == other.epoch
            && self.mean_loss == other.mean_loss
            && self.penalty == other.penalty
            && self.grad_norm == other.grad_norm
            && self.phase_saturation == other.phase_saturation
    }
}

/// Averaged data-loss gradients for one batch, plus the batch's mean loss,
/// through the batched engine: one tape for the whole mini-batch, one
/// backward sweep for all mask gradients. This is the default path of
/// [`train_with`]; it is public so benchmarks and downstream tooling can
/// drive single steps.
pub fn batched_gradients(
    donn: &Donn,
    data: &Dataset,
    batch: &[usize],
    freeze: Option<&[Arc<Grid>]>,
    threads: usize,
) -> (Vec<Grid>, f64) {
    let n = donn.config().grid();
    let images: Vec<&Grid> = batch.iter().map(|&i| data.image(i)).collect();
    let labels: Vec<usize> = batch.iter().map(|&i| data.label(i)).collect();
    let mut tape = Tape::new();
    let (loss, mask_vars) = donn.build_batch_loss(&mut tape, &images, &labels, freeze, threads);
    let mean_loss = tape.scalar(loss);
    let g = tape.backward(loss);
    let grads = mask_vars
        .iter()
        .map(|var| g.real(*var).cloned().unwrap_or_else(|| Grid::zeros(n, n)))
        .collect();
    (grads, mean_loss)
}

/// One shard's gradient contribution for distributed data-parallel
/// training: a single batched tape over `shard`, built with the *global*
/// batch size `denom` as the loss denominator, its backward sweep
/// extracted into a reduction-ready [`MaskGrads`] buffer (complex
/// mask-space adjoints + the shard's `Σ l_i / denom` loss term).
///
/// `MaskGrads::tree_reduce` over the per-shard buffers followed by
/// `MaskGrads::phase_gradients` reproduces [`batched_gradients`] on the
/// concatenated batch — bit-identically when the shards are an equal
/// contiguous split with a power-of-two shard count, and to within
/// floating-point reassociation (≤1e-12 in the `photonn-dist` property
/// tests) otherwise.
///
/// # Panics
///
/// Panics if `shard` is empty, `denom == 0`, or on the shape mismatches of
/// [`Donn::build_batch_loss_parts`].
pub fn shard_gradients(
    donn: &Donn,
    data: &Dataset,
    shard: &[usize],
    freeze: Option<&[Arc<Grid>]>,
    threads: usize,
    denom: usize,
) -> MaskGrads {
    assert!(!shard.is_empty(), "empty shard");
    let n = donn.config().grid();
    let images: Vec<&Grid> = shard.iter().map(|&i| data.image(i)).collect();
    let labels: Vec<usize> = shard.iter().map(|&i| data.label(i)).collect();
    let mut tape = Tape::new();
    let parts = donn.build_batch_loss_parts(&mut tape, &images, &labels, freeze, threads, denom);
    let loss = tape.scalar(parts.loss);
    let g = tape.backward(parts.loss);
    MaskGrads::extract(&g, &parts.trans_vars, n, loss, shard.len())
}

/// The seed per-sample gradient path, kept as the batched engine's test
/// oracle and benchmark baseline: one tape per sample on `threads` worker
/// threads, gradients summed and divided by the batch size. Returns the
/// same `(averaged gradients, mean loss)` contract as the batched default.
pub fn per_sample_batch_gradients(
    donn: &Donn,
    data: &Dataset,
    batch: &[usize],
    freeze: Option<&[Arc<Grid>]>,
    threads: usize,
) -> (Vec<Grid>, f64) {
    let n = donn.config().grid();
    let layers = donn.config().num_layers;
    let threads = threads.max(1).min(batch.len());
    let chunk = batch.len().div_ceil(threads);

    let results: Vec<(Vec<Grid>, f64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(batch.len());
            if lo >= hi {
                break;
            }
            let idx = &batch[lo..hi];
            handles.push(scope.spawn(move || {
                let mut grads = vec![Grid::zeros(n, n); layers];
                let mut loss_sum = 0.0;
                for &i in idx {
                    let mut tape = Tape::new();
                    let (loss, mask_vars) =
                        donn.build_sample_loss(&mut tape, data.image(i), data.label(i), freeze);
                    loss_sum += tape.scalar(loss);
                    let g = tape.backward(loss);
                    for (layer, var) in mask_vars.iter().enumerate() {
                        if let Some(gm) = g.real(*var) {
                            grads[layer].axpy(1.0, gm);
                        }
                    }
                }
                (grads, loss_sum)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("gradient worker panicked"))
            .collect()
    });

    let mut grads = vec![Grid::zeros(n, n); layers];
    let mut loss_sum = 0.0;
    for (g, l) in results {
        for (acc, gi) in grads.iter_mut().zip(&g) {
            acc.axpy(1.0, gi);
        }
        loss_sum += l;
    }
    let scale = 1.0 / batch.len() as f64;
    for g in &mut grads {
        g.scale_inplace(scale);
    }
    (grads, loss_sum * scale)
}

/// Trains `donn` in place. `freeze` optionally pins pruned pixels to zero
/// phase (0/1 keep-mask per layer); `extra_grad` lets the SLR optimizer
/// inject its multiplier/penalty forces, called once per step with the
/// current masks.
///
/// Returns per-epoch statistics.
///
/// # Panics
///
/// Panics on shape mismatches between the dataset, model and freeze masks.
pub fn train_with(
    donn: &mut Donn,
    data: &Dataset,
    opts: &TrainOptions,
    freeze: Option<&[Arc<Grid>]>,
    extra_grad: Option<ExtraGradFn<'_>>,
) -> Vec<EpochStats> {
    train_with_grad_source(
        donn,
        data,
        opts,
        freeze,
        extra_grad,
        |donn, data, batch| batched_gradients(donn, data, batch, freeze, opts.threads),
        None,
    )
}

/// The training loop with a pluggable per-batch gradient source — the seam
/// the distributed trainer (`photonn-dist`) plugs into. Everything around
/// the data gradient stays here, on the coordinating process: shuffling,
/// learning-rate schedule, regularizer gradients, the extra-force hook,
/// freeze masking, and the Adam update. `grad_source` is called once per
/// mini-batch with the current model and must return the batch-averaged
/// data-loss gradients and the batch mean loss in the
/// [`batched_gradients`] contract; `epoch_hook` (if any) observes each
/// [`EpochStats`] as the epoch completes.
///
/// [`train_with`] is exactly this loop with [`batched_gradients`] as the
/// source; [`try_train_with_grad_source`] is the fallible form.
///
/// # Panics
///
/// Panics on shape mismatches between the dataset, model, freeze masks and
/// gradient-source output.
pub fn train_with_grad_source(
    donn: &mut Donn,
    data: &Dataset,
    opts: &TrainOptions,
    freeze: Option<&[Arc<Grid>]>,
    extra_grad: Option<ExtraGradFn<'_>>,
    mut grad_source: impl FnMut(&Donn, &Dataset, &[usize]) -> (Vec<Grid>, f64),
    epoch_hook: Option<EpochHookFn<'_>>,
) -> Vec<EpochStats> {
    let result: Result<Vec<EpochStats>, std::convert::Infallible> = try_train_with_grad_source(
        donn,
        data,
        opts,
        freeze,
        extra_grad,
        |donn, data, batch| Ok(grad_source(donn, data, batch)),
        epoch_hook,
    );
    match result {
        Ok(stats) => stats,
        Err(never) => match never {},
    }
}

/// [`train_with_grad_source`] with a *fallible* gradient source — the seam
/// fault-tolerant distributed training plugs into. The first `Err` from
/// `grad_source` aborts the loop and is returned as-is; the model is then
/// left at the last successfully applied optimizer step (every step either
/// fully applies or not at all — the error surfaces *before* the Adam
/// update for its batch).
///
/// # Errors
///
/// Propagates the first error returned by `grad_source`.
///
/// # Panics
///
/// Panics on shape mismatches between the dataset, model, freeze masks and
/// gradient-source output.
pub fn try_train_with_grad_source<E>(
    donn: &mut Donn,
    data: &Dataset,
    opts: &TrainOptions,
    freeze: Option<&[Arc<Grid>]>,
    mut extra_grad: Option<ExtraGradFn<'_>>,
    mut grad_source: impl FnMut(&Donn, &Dataset, &[usize]) -> Result<(Vec<Grid>, f64), E>,
    mut epoch_hook: Option<EpochHookFn<'_>>,
) -> Result<Vec<EpochStats>, E> {
    assert!(opts.epochs > 0, "epochs must be positive");
    assert!(
        opts.lr_final_fraction > 0.0 && opts.lr_final_fraction <= 1.0,
        "lr_final_fraction must be in (0, 1]"
    );
    let mut adam = Adam::new(opts.learning_rate);
    let mut batches = BatchIter::new(data.len(), opts.batch_size, opts.seed);
    let mut stats = Vec::with_capacity(opts.epochs);

    for epoch in 0..opts.epochs {
        if opts.epochs > 1 {
            let t = epoch as f64 / (opts.epochs - 1) as f64;
            adam.set_learning_rate(opts.learning_rate * opts.lr_final_fraction.powf(t));
        }
        let mut epoch_loss = 0.0;
        let mut batch_count = 0usize;
        let mut grad_norm_sum = 0.0;
        let epoch_start = std::time::Instant::now();
        for batch in batches.epoch() {
            let _step_span = photonn_trace::span("train.step");
            let (mut grads, loss) = grad_source(donn, data, &batch)?;
            assert_eq!(grads.len(), donn.masks().len(), "gradient count mismatch");
            epoch_loss += loss;
            batch_count += 1;

            // Regularization gradients at full strength (Eq. 5/8).
            for (g, mask) in grads.iter_mut().zip(donn.masks()) {
                let rg = opts.regularization.gradient(mask);
                g.axpy(1.0, &rg);
            }
            // Caller-injected forces (SLR multipliers).
            if let Some(hook) = extra_grad.as_mut() {
                let extra = hook(donn.masks());
                assert_eq!(extra.len(), grads.len(), "extra gradient count mismatch");
                for (g, e) in grads.iter_mut().zip(&extra) {
                    g.axpy(1.0, e);
                }
            }
            // Frozen pixels receive no update and stay at zero.
            if let Some(fz) = freeze {
                for (g, k) in grads.iter_mut().zip(fz) {
                    *g = g.hadamard(k);
                }
            }
            grad_norm_sum += grads
                .iter()
                .map(|g| g.as_slice().iter().map(|v| v * v).sum::<f64>())
                .sum::<f64>()
                .sqrt();
            adam.step(donn.masks_mut(), &grads);
            if let Some(fz) = freeze {
                for (mask, k) in donn.masks_mut().iter_mut().zip(fz) {
                    *mask = mask.hadamard(k);
                }
            }
        }
        let penalty: f64 = donn
            .masks()
            .iter()
            .map(|m| opts.regularization.penalty(m))
            .sum();
        let elapsed = epoch_start.elapsed().as_secs_f64();
        let (saturated, total) = donn.masks().iter().fold((0usize, 0usize), |(s, t), m| {
            let sat = m
                .as_slice()
                .iter()
                .filter(|&&phi| !(0.0..photonn_math::TWO_PI).contains(&phi))
                .count();
            (s + sat, t + m.as_slice().len())
        });
        let epoch_stats = EpochStats {
            epoch,
            mean_loss: epoch_loss / batch_count.max(1) as f64,
            penalty,
            grad_norm: grad_norm_sum / batch_count.max(1) as f64,
            steps_per_sec: if elapsed > 0.0 {
                batch_count as f64 / elapsed
            } else {
                0.0
            },
            phase_saturation: saturated as f64 / total.max(1) as f64,
        };
        if let Some(hook) = epoch_hook.as_mut() {
            hook(&epoch_stats);
        }
        stats.push(epoch_stats);
    }
    Ok(stats)
}

/// Trains without freezing or extra forces — the baseline/Ours-A path.
pub fn train(donn: &mut Donn, data: &Dataset, opts: &TrainOptions) -> Vec<EpochStats> {
    train_with(donn, data, opts, None, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DonnConfig;
    use photonn_datasets::Family;
    use photonn_math::Rng;

    fn tiny_setup(seed: u64) -> (Donn, Dataset, Dataset) {
        let mut rng = Rng::seed_from(seed);
        let donn = Donn::random(DonnConfig::scaled(32), &mut rng);
        let data = Dataset::synthetic(Family::Mnist, 120, seed).resized(32);
        let (train, test) = data.split(100);
        (donn, train, test)
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let (mut donn, train_data, test_data) = tiny_setup(1);
        let before_acc = donn.accuracy(&test_data, 2);
        let opts = TrainOptions {
            epochs: 4,
            batch_size: 20,
            learning_rate: 0.08,
            ..TrainOptions::default()
        };
        let stats = train(&mut donn, &train_data, &opts);
        assert!(
            stats.last().unwrap().mean_loss < stats[0].mean_loss,
            "loss did not decrease: {stats:?}"
        );
        let after_acc = donn.accuracy(&test_data, 2);
        // 10 balanced classes: chance = 0.1. Expect clear learning.
        assert!(
            after_acc > 0.25 && after_acc >= before_acc,
            "accuracy before {before_acc}, after {after_acc}"
        );
    }

    #[test]
    fn roughness_regularization_smooths_masks() {
        let (mut donn_plain, train_data, _) = tiny_setup(2);
        let mut donn_reg = donn_plain.clone();
        let base = TrainOptions {
            epochs: 2,
            batch_size: 20,
            learning_rate: 0.08,
            ..TrainOptions::default()
        };
        train(&mut donn_plain, &train_data, &base);
        let reg_opts = TrainOptions {
            regularization: Regularization::roughness_only(0.02),
            ..base
        };
        train(&mut donn_reg, &train_data, &reg_opts);
        let cfg = RoughnessConfig::paper();
        let r_plain = crate::roughness::r_overall(donn_plain.masks(), cfg);
        let r_reg = crate::roughness::r_overall(donn_reg.masks(), cfg);
        assert!(
            r_reg < r_plain,
            "regularized roughness {r_reg} !< plain {r_plain}"
        );
    }

    #[test]
    fn freeze_keeps_pixels_zero_through_training() {
        let (mut donn, train_data, _) = tiny_setup(3);
        // Zero phase in a block and freeze it.
        let n = 32;
        let mut keep = Grid::full(n, n, 1.0);
        for r in 8..16 {
            for c in 8..16 {
                keep[(r, c)] = 0.0;
            }
        }
        let shared = Arc::new(keep.clone());
        let freeze: Vec<Arc<Grid>> = vec![shared.clone(), shared.clone(), shared];
        for mask in donn.masks_mut() {
            *mask = mask.hadamard(&keep);
        }
        let opts = TrainOptions {
            epochs: 1,
            batch_size: 25,
            ..TrainOptions::default()
        };
        train_with(&mut donn, &train_data, &opts, Some(&freeze), None);
        for mask in donn.masks() {
            for r in 8..16 {
                for c in 8..16 {
                    assert_eq!(mask[(r, c)], 0.0);
                }
            }
            // Unfrozen pixels moved.
            assert!(mask.as_slice().iter().any(|&v| v != 0.0));
        }
    }

    #[test]
    fn extra_grad_hook_is_applied() {
        let (mut donn, train_data, _) = tiny_setup(4);
        let before = donn.masks()[0].clone();
        // A huge constant extra gradient must dominate the update
        // direction: all pixels of layer 0 move down.
        let opts = TrainOptions {
            epochs: 1,
            batch_size: 120,
            learning_rate: 0.05,
            ..TrainOptions::default()
        };
        let mut hook = |masks: &[Grid]| -> Vec<Grid> {
            let mut extra: Vec<Grid> = masks
                .iter()
                .map(|m| Grid::zeros(m.rows(), m.cols()))
                .collect();
            extra[0] = Grid::full(32, 32, 1e6);
            extra
        };
        train_with(&mut donn, &train_data, &opts, None, Some(&mut hook));
        let after = &donn.masks()[0];
        let moved_down = before
            .as_slice()
            .iter()
            .zip(after.as_slice())
            .filter(|(b, a)| a < b)
            .count();
        assert!(
            moved_down as f64 > 0.99 * before.len() as f64,
            "only {moved_down} pixels moved down"
        );
    }

    #[test]
    fn batched_gradients_match_per_sample_oracle() {
        // The acceptance case for the batched engine: 16×16 grid, 3
        // layers, batch 8 — the one-tape-per-batch gradients must equal
        // the per-sample-averaged oracle within 1e-9.
        let mut rng = Rng::seed_from(17);
        let donn = Donn::random(DonnConfig::scaled(16), &mut rng);
        assert_eq!(donn.config().num_layers, 3);
        let data = Dataset::synthetic(Family::Mnist, 8, 17).resized(16);
        let batch: Vec<usize> = (0..8).collect();

        for threads in [1usize, 3] {
            let (g_batched, l_batched) =
                super::batched_gradients(&donn, &data, &batch, None, threads);
            let (g_oracle, l_oracle) =
                per_sample_batch_gradients(&donn, &data, &batch, None, threads);
            assert!(
                (l_batched - l_oracle).abs() < 1e-9,
                "loss mismatch at {threads} threads: {l_batched} vs {l_oracle}"
            );
            assert_eq!(g_batched.len(), 3);
            for (layer, (gb, go)) in g_batched.iter().zip(&g_oracle).enumerate() {
                let diff = gb.max_abs_diff(go);
                assert!(
                    diff < 1e-9,
                    "layer {layer} gradient mismatch at {threads} threads: {diff}"
                );
                // And the gradients are non-trivial.
                assert!(gb.as_slice().iter().any(|&v| v != 0.0));
            }
        }
    }

    #[test]
    fn batched_gradients_match_per_sample_oracle_on_mixed_radix_grid() {
        // Same acceptance bar on a non-power-of-two grid (20 = 2²·5): the
        // batched path runs the planar vectorized mixed-radix FFT engine —
        // the paper-native 200-grid path in miniature — while the oracle
        // uses the scalar recursive engine, so this pins down both the
        // engine's correctness and the 1e-9 cross-engine gradient parity.
        let mut rng = Rng::seed_from(29);
        let donn = Donn::random(DonnConfig::scaled(20), &mut rng);
        let data = Dataset::synthetic(Family::Mnist, 8, 29).resized(20);
        let batch: Vec<usize> = (0..8).collect();

        for threads in [1usize, 3] {
            let (g_batched, l_batched) =
                super::batched_gradients(&donn, &data, &batch, None, threads);
            let (g_oracle, l_oracle) =
                per_sample_batch_gradients(&donn, &data, &batch, None, threads);
            assert!(
                (l_batched - l_oracle).abs() < 1e-9,
                "loss mismatch at {threads} threads: {l_batched} vs {l_oracle}"
            );
            for (layer, (gb, go)) in g_batched.iter().zip(&g_oracle).enumerate() {
                let diff = gb.max_abs_diff(go);
                assert!(
                    diff < 1e-9,
                    "layer {layer} gradient mismatch at {threads} threads: {diff}"
                );
                assert!(gb.as_slice().iter().any(|&v| v != 0.0));
            }
        }
    }

    #[test]
    fn batched_gradients_match_oracle_with_freeze() {
        let mut rng = Rng::seed_from(23);
        let donn = Donn::random(DonnConfig::scaled(16), &mut rng);
        let data = Dataset::synthetic(Family::Mnist, 6, 23).resized(16);
        let batch: Vec<usize> = (0..6).collect();
        let mut keep = Grid::full(16, 16, 1.0);
        keep[(4, 4)] = 0.0;
        keep[(9, 2)] = 0.0;
        let shared = Arc::new(keep);
        let freeze: Vec<Arc<Grid>> = vec![shared.clone(), shared.clone(), shared];

        let (g_batched, _) = super::batched_gradients(&donn, &data, &batch, Some(&freeze), 2);
        let (g_oracle, _) = per_sample_batch_gradients(&donn, &data, &batch, Some(&freeze), 2);
        for (gb, go) in g_batched.iter().zip(&g_oracle) {
            assert!(gb.max_abs_diff(go) < 1e-9);
            assert_eq!(gb[(4, 4)], 0.0);
            assert_eq!(gb[(9, 2)], 0.0);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (mut a, data, _) = tiny_setup(5);
        let mut b = a.clone();
        let opts = TrainOptions {
            epochs: 1,
            batch_size: 16,
            ..TrainOptions::default()
        };
        let sa = train(&mut a, &data, &opts);
        let sb = train(&mut b, &data, &opts);
        assert_eq!(sa, sb);
        for (ma, mb) in a.masks().iter().zip(b.masks()) {
            assert_eq!(ma, mb);
        }
    }
}
