//! Surrogate Lagrangian Relaxation (SLR) block-sparsification training
//! (paper §III-C2, Eq. 6–7; Gurevin et al., IJCAI'20).
//!
//! The constrained problem `min ℓ(W) + ℓr(W) s.t. W block-sparse` is
//! relaxed with duplicate variables `Z`, multipliers `Λ` and a quadratic
//! penalty `ρ/2‖W−Z‖²_F`. Two subproblems alternate:
//!
//! 1. **W-step** — gradient training of the DONN loss plus the relaxation
//!    forces `Λ + ρ(W−Z)` (injected through the trainer's `extra_grad`
//!    hook);
//! 2. **Z-step** — exact projection of `W + Λ/ρ` onto the block-sparse
//!    constraint set (keep the largest-L2 blocks).
//!
//! Multiplier updates `Λ ← Λ + s_k(W−Z)` are gated on the *surrogate
//! optimality condition* (the augmented objective must have decreased) and
//! use the decaying SLR stepsize `s_k = α_k·s_{k-1}` with
//! `α_k = 1 − 1/(M·k^{1−1/k^r})`, the rule of the SLR paper with the
//! published constants `M = 300, r = 0.1, s_0 = 0.01`.

use photonn_datasets::Dataset;
use photonn_math::Grid;
use std::sync::Arc;

use crate::model::Donn;
use crate::sparsify::{sparsify, SparsifyMethod};
use crate::train::{train_with, TrainOptions};

/// SLR hyperparameters (defaults are the paper's §IV-A2 values).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlrConfig {
    /// Quadratic penalty coefficient ρ.
    pub rho: f64,
    /// Stepsize constant `M`.
    pub m: f64,
    /// Stepsize exponent `r`.
    pub r: f64,
    /// Initial multiplier stepsize `s₀`.
    pub s0: f64,
    /// Target sparsity ratio (fraction of blocks zeroed; paper: 0.1).
    pub sparsity: f64,
    /// Block side length (25 for MNIST, 20 for the other datasets).
    pub block: usize,
    /// Number of W/Z alternations.
    pub outer_iterations: usize,
    /// Probe samples used to evaluate the surrogate optimality condition.
    pub probe_samples: usize,
}

impl Default for SlrConfig {
    fn default() -> Self {
        SlrConfig {
            rho: 0.1,
            m: 300.0,
            r: 0.1,
            s0: 0.01,
            sparsity: 0.1,
            block: 20,
            outer_iterations: 4,
            probe_samples: 64,
        }
    }
}

/// Statistics of one SLR outer iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlrIterationStats {
    /// Outer iteration index (1-based, as in the stepsize rule).
    pub k: usize,
    /// `‖W−Z‖_F` summed over layers after the W-step.
    pub gap: f64,
    /// Stepsize used for multiplier updates this iteration.
    pub stepsize: f64,
    /// Whether the surrogate optimality condition held (multipliers moved).
    pub surrogate_ok: bool,
    /// Mean probe data loss after the W-step.
    pub probe_loss: f64,
}

/// Outcome of SLR sparsification training.
#[derive(Clone, Debug)]
pub struct SlrOutcome {
    /// Per-iteration statistics.
    pub history: Vec<SlrIterationStats>,
    /// Final 0/1 keep-masks (per layer) after the hard projection.
    pub keep: Vec<Arc<Grid>>,
    /// Achieved sparsity (fraction of zeroed pixels).
    pub sparsity: f64,
}

/// The SLR stepsize decay factor `α_k = 1 − 1/(M·k^{1−1/k^r})`.
fn alpha(k: usize, m: f64, r: f64) -> f64 {
    let kf = k as f64;
    1.0 - 1.0 / (m * kf.powf(1.0 - 1.0 / kf.powf(r)))
}

/// Projects each mask onto the block-sparse set: keep the `1−sparsity`
/// fraction of blocks with the largest L2 norm, zero the rest.
fn project(masks: &[Grid], sparsity: f64, block: usize) -> Vec<Grid> {
    masks
        .iter()
        .map(|m| sparsify(m, sparsity, SparsifyMethod::Block { size: block }).mask)
        .collect()
}

/// Mean data loss over a fixed probe prefix of the dataset (used for the
/// surrogate optimality condition), evaluated as one batched tape.
fn probe_loss(donn: &Donn, data: &Dataset, probe: usize, threads: usize) -> f64 {
    let n = probe.min(data.len());
    let images: Vec<&Grid> = (0..n).map(|i| data.image(i)).collect();
    let labels: Vec<usize> = (0..n).map(|i| data.label(i)).collect();
    let mut tape = photonn_autodiff::Tape::new();
    let (loss, _) = donn.build_batch_loss(&mut tape, &images, &labels, None, threads);
    tape.scalar(loss)
}

/// The augmented Lagrangian value (Eq. 7) up to the constant `g(Z)` term.
fn augmented(probe: f64, masks: &[Grid], z: &[Grid], lambda: &[Grid], rho: f64) -> f64 {
    let mut value = probe;
    for ((w, zi), li) in masks.iter().zip(z).zip(lambda) {
        let diff = w - zi;
        value += li.hadamard(&diff).sum();
        value += rho / 2.0 * diff.frobenius_norm().powi(2);
    }
    value
}

/// Runs SLR sparsification training on `donn` in place.
///
/// After the final outer iteration the masks are hard-projected onto the
/// block-sparse set; the returned keep-masks can freeze them during any
/// further training and are consumed by the 2π post-optimizer pipeline.
///
/// # Panics
///
/// Panics if configuration values are out of range (ρ ≤ 0, sparsity
/// outside `[0,1]`, zero iterations).
pub fn slr_train(
    donn: &mut Donn,
    data: &Dataset,
    train_opts: &TrainOptions,
    slr: &SlrConfig,
) -> SlrOutcome {
    assert!(slr.rho > 0.0, "rho must be positive");
    assert!(
        (0.0..=1.0).contains(&slr.sparsity),
        "sparsity outside [0,1]"
    );
    assert!(
        slr.outer_iterations > 0,
        "need at least one outer iteration"
    );

    let mut z = project(donn.masks(), slr.sparsity, slr.block);
    let mut lambda: Vec<Grid> = donn
        .masks()
        .iter()
        .map(|m| Grid::zeros(m.rows(), m.cols()))
        .collect();
    let mut s = slr.s0;
    let mut history = Vec::with_capacity(slr.outer_iterations);
    let mut prev_aug = f64::INFINITY;

    for k in 1..=slr.outer_iterations {
        // --- Subproblem 1: W-step with relaxation forces.
        {
            let z_ref = &z;
            let lambda_ref = &lambda;
            let rho = slr.rho;
            let mut hook = move |masks: &[Grid]| -> Vec<Grid> {
                masks
                    .iter()
                    .zip(z_ref)
                    .zip(lambda_ref)
                    .map(|((w, zi), li)| {
                        // ∂/∂W [ tr(Λᵀ(W−Z)) + ρ/2‖W−Z‖² ] = Λ + ρ(W−Z)
                        let mut g = w - zi;
                        g.scale_inplace(rho);
                        g.axpy(1.0, li);
                        g
                    })
                    .collect()
            };
            train_with(donn, data, train_opts, None, Some(&mut hook));
        }

        let probe = probe_loss(donn, data, slr.probe_samples, train_opts.threads);
        let aug = augmented(probe, donn.masks(), &z, &lambda, slr.rho);
        // Surrogate optimality condition: the augmented objective moved
        // down relative to the previous iterate.
        let surrogate_ok = aug < prev_aug;
        if surrogate_ok {
            for (li, (w, zi)) in lambda.iter_mut().zip(donn.masks().iter().zip(&z)) {
                let mut step = w - zi;
                step.scale_inplace(s);
                li.axpy(1.0, &step);
            }
            s *= alpha(k, slr.m, slr.r);
        }
        prev_aug = aug;

        // --- Subproblem 2: exact Z projection of W + Λ/ρ.
        let shifted: Vec<Grid> = donn
            .masks()
            .iter()
            .zip(&lambda)
            .map(|(w, li)| {
                let mut t = w.clone();
                t.axpy(1.0 / slr.rho, li);
                t
            })
            .collect();
        z = project(&shifted, slr.sparsity, slr.block);

        let gap: f64 = donn
            .masks()
            .iter()
            .zip(&z)
            .map(|(w, zi)| (w - zi).frobenius_norm())
            .sum();
        history.push(SlrIterationStats {
            k,
            gap,
            stepsize: s,
            surrogate_ok,
            probe_loss: probe,
        });
    }

    // Final hard projection (retrain-free, as in the SLR paper).
    let final_sparse: Vec<crate::sparsify::Sparsified> = donn
        .masks()
        .iter()
        .map(|m| sparsify(m, slr.sparsity, SparsifyMethod::Block { size: slr.block }))
        .collect();
    let keep: Vec<Arc<Grid>> = final_sparse
        .iter()
        .map(|s| Arc::new(s.keep.clone()))
        .collect();
    let masks: Vec<Grid> = final_sparse.into_iter().map(|s| s.mask).collect();
    let total_zeros: usize = masks.iter().map(Grid::count_zeros).sum();
    let total: usize = masks.iter().map(Grid::len).sum();
    donn.set_masks(masks);

    SlrOutcome {
        history,
        keep,
        sparsity: total_zeros as f64 / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DonnConfig;
    use photonn_datasets::Family;
    use photonn_math::Rng;

    #[test]
    fn alpha_is_decaying_factor_below_one() {
        for k in 1..50 {
            let a = alpha(k, 300.0, 0.1);
            assert!(a > 0.9 && a < 1.0, "alpha({k}) = {a}");
        }
        // Later iterations decay more slowly (alpha increases toward 1).
        assert!(alpha(40, 300.0, 0.1) > alpha(2, 300.0, 0.1));
    }

    #[test]
    fn projection_achieves_block_sparsity() {
        let masks = vec![Grid::from_fn(8, 8, |r, c| (r * 8 + c + 1) as f64)];
        let z = project(&masks, 0.25, 4);
        // 4 blocks of 4×4; one zeroed.
        assert_eq!(z[0].count_zeros(), 16);
    }

    #[test]
    fn slr_sparsifies_while_model_still_works() {
        let mut rng = Rng::seed_from(7);
        let mut donn = Donn::random(DonnConfig::scaled(32), &mut rng);
        let data = Dataset::synthetic(Family::Mnist, 100, 7).resized(32);
        // Warm up briefly so the masks are meaningful.
        let warm = TrainOptions {
            epochs: 1,
            batch_size: 20,
            learning_rate: 0.08,
            ..TrainOptions::default()
        };
        crate::train::train(&mut donn, &data, &warm);

        let slr_opts = TrainOptions {
            epochs: 1,
            batch_size: 20,
            learning_rate: 0.01,
            ..TrainOptions::default()
        };
        let cfg = SlrConfig {
            sparsity: 0.25,
            block: 8,
            outer_iterations: 2,
            probe_samples: 20,
            ..SlrConfig::default()
        };
        let outcome = slr_train(&mut donn, &data, &slr_opts, &cfg);
        assert_eq!(outcome.history.len(), 2);
        // Hard sparsity achieved: 25% of blocks zeroed per mask.
        assert!(
            (outcome.sparsity - 0.25).abs() < 0.05,
            "sparsity {}",
            outcome.sparsity
        );
        // Zeroed pixels really are zero.
        for (mask, keep) in donn.masks().iter().zip(&outcome.keep) {
            for (v, k) in mask.as_slice().iter().zip(keep.as_slice()) {
                if *k == 0.0 {
                    assert_eq!(*v, 0.0);
                }
            }
        }
        // Model still predicts in range.
        assert!(donn.predict(data.image(0)) < 10);
    }

    #[test]
    fn gap_shrinks_over_iterations() {
        let mut rng = Rng::seed_from(9);
        let mut donn = Donn::random(DonnConfig::scaled(32), &mut rng);
        let data = Dataset::synthetic(Family::Mnist, 60, 9).resized(32);
        let slr_opts = TrainOptions {
            epochs: 1,
            batch_size: 20,
            learning_rate: 0.02,
            ..TrainOptions::default()
        };
        let cfg = SlrConfig {
            sparsity: 0.2,
            block: 8,
            outer_iterations: 3,
            probe_samples: 16,
            ..SlrConfig::default()
        };
        let outcome = slr_train(&mut donn, &data, &slr_opts, &cfg);
        let first = outcome.history.first().unwrap().gap;
        let last = outcome.history.last().unwrap().gap;
        assert!(
            last < first * 1.25,
            "W−Z gap exploded: first {first}, last {last}"
        );
    }
}
