//! The paper's experiment pipeline: Baseline and Ours-A…D variants
//! (§IV-B, Tables II–V).
//!
//! * **Baseline** — plain DONN training (`[5]/[6]/[8]` row);
//! * **Ours-A** — roughness-regularized training (Eq. 5);
//! * **Ours-B** — SLR block-sparsification training;
//! * **Ours-C** — sparsification + roughness regularization;
//! * **Ours-D** — sparsification + roughness + intra-block smoothness
//!   (Eq. 8).
//!
//! Every variant is scored by test accuracy and `R_overall` before and
//! after the 2π post-optimization.

use photonn_datasets::{Dataset, Family};
use photonn_math::{Grid, Rng};

use crate::config::DonnConfig;
use crate::model::Donn;
use crate::roughness::{r_overall, RoughnessConfig};
use crate::slr::{slr_train, SlrConfig};
use crate::train::{train, train_with, Regularization, TrainOptions};
use crate::two_pi::{optimize_all, TwoPiStrategy};

/// The five rows of Tables II–V.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Roughness-oblivious training — the `[5], [6], [8]` baseline row.
    Baseline,
    /// Roughness-aware training only.
    OursA,
    /// Block sparsification only.
    OursB,
    /// Sparsification + roughness.
    OursC,
    /// Sparsification + roughness + intra-block smoothness.
    OursD,
}

impl Variant {
    /// All variants in table order.
    pub fn all() -> [Variant; 5] {
        [
            Variant::Baseline,
            Variant::OursA,
            Variant::OursB,
            Variant::OursC,
            Variant::OursD,
        ]
    }

    /// Row label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Baseline => "[5], [6], [8]",
            Variant::OursA => "Ours-A",
            Variant::OursB => "Ours-B",
            Variant::OursC => "Ours-C",
            Variant::OursD => "Ours-D",
        }
    }

    /// Whether this variant runs SLR sparsification.
    pub fn sparsifies(self) -> bool {
        matches!(self, Variant::OursB | Variant::OursC | Variant::OursD)
    }
}

/// Everything needed to reproduce one table row set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExperimentConfig {
    /// Dataset family (selects the table: II–V).
    pub family: Family,
    /// Optical grid size (200 = paper scale).
    pub grid: usize,
    /// Training set size.
    pub train_samples: usize,
    /// Held-out test set size.
    pub test_samples: usize,
    /// Baseline / regularized training epochs.
    pub baseline_epochs: usize,
    /// Mini-batch size (paper: 200).
    pub batch_size: usize,
    /// Baseline learning rate (paper: 0.2).
    pub baseline_lr: f64,
    /// Sparsification learning rate (paper: 0.001).
    pub sparsify_lr: f64,
    /// Training epochs inside each SLR outer iteration.
    pub sparsify_epochs_per_iter: usize,
    /// Roughness regularization weight `p`.
    pub p: f64,
    /// Intra-block smoothness weight `q`.
    pub q: f64,
    /// SLR settings (ρ, M, r, s₀, sparsity, block size, iterations).
    pub slr: SlrConfig,
    /// Roughness measurement/penalty model.
    pub roughness: RoughnessConfig,
    /// 2π post-optimization strategy.
    pub two_pi: TwoPiStrategy,
    /// Master seed (datasets, init, noise).
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl ExperimentConfig {
    /// CPU-friendly scaled defaults (32-pixel grid, small synthetic
    /// datasets) that preserve the paper's orderings; the benchmark
    /// binaries use these unless `--full` is passed.
    pub fn scaled(family: Family) -> Self {
        ExperimentConfig {
            family,
            grid: 32,
            train_samples: 800,
            test_samples: 300,
            baseline_epochs: 8,
            batch_size: 50,
            baseline_lr: 0.06,
            sparsify_lr: 0.01,
            sparsify_epochs_per_iter: 1,
            // Weights chosen so the regularizer gradient is a small
            // fraction of the measured data-loss gradient at this scale
            // (see EXPERIMENTS.md).
            p: 6e-5,
            q: 6e-3,
            slr: SlrConfig {
                sparsity: 0.1,
                block: 4,
                outer_iterations: 3,
                probe_samples: 32,
                ..SlrConfig::default()
            },
            roughness: RoughnessConfig::paper(),
            two_pi: TwoPiStrategy::GumbelThenGreedy(Default::default(), 4),
            seed: 42,
            threads: 2,
        }
    }

    /// The paper's full-scale setup for a dataset family: 200×200 grid,
    /// batch 200, lr 0.2/0.001, sparsity 0.1, the per-dataset epoch counts
    /// and block sizes of Tables II–V. Expect GPU-scale runtimes on CPU.
    pub fn paper(family: Family) -> Self {
        let (epochs, block) = match family {
            Family::Mnist => (50, 25),
            Family::Fmnist => (150, 20),
            Family::Kmnist => (100, 20),
            Family::Emnist => (100, 20),
        };
        ExperimentConfig {
            family,
            grid: 200,
            train_samples: 60_000,
            test_samples: 10_000,
            baseline_epochs: epochs,
            batch_size: 200,
            baseline_lr: 0.2,
            sparsify_lr: 0.001,
            sparsify_epochs_per_iter: 1,
            // Fig. 6c/6d place the hyperparameter inflection points at
            // p = 0.1 and log10(q) = 1 at paper scale.
            p: 0.1,
            q: 10.0,
            slr: SlrConfig {
                sparsity: 0.1,
                block,
                outer_iterations: 4,
                probe_samples: 200,
                ..SlrConfig::default()
            },
            roughness: RoughnessConfig::paper(),
            two_pi: TwoPiStrategy::GumbelThenGreedy(Default::default(), 4),
            seed: 42,
            threads: 2,
        }
    }

    fn donn_config(&self) -> DonnConfig {
        if self.grid == 200 {
            DonnConfig::paper()
        } else {
            DonnConfig::scaled(self.grid)
        }
    }

    /// Builds the (train, test) datasets for this configuration.
    pub fn datasets(&self) -> (Dataset, Dataset) {
        let total = self.train_samples + self.test_samples;
        let data = Dataset::synthetic(self.family, total, self.seed).resized(self.grid);
        data.split(self.train_samples)
    }

    fn regularization(&self, variant: Variant) -> Regularization {
        match variant {
            Variant::Baseline | Variant::OursB => Regularization::none(),
            Variant::OursA | Variant::OursC => Regularization {
                roughness_weight: self.p,
                roughness: self.roughness,
                ..Regularization::none()
            },
            Variant::OursD => Regularization {
                roughness_weight: self.p,
                roughness: self.roughness,
                intra_weight: self.q,
                intra_block: self.slr.block,
            },
        }
    }
}

/// Scores of one trained variant.
#[derive(Clone, Debug)]
pub struct VariantResult {
    /// Which variant.
    pub variant: Variant,
    /// Test accuracy of the trained (and, where applicable, sparsified)
    /// model. Unchanged by the 2π step.
    pub accuracy: f64,
    /// `R_overall` before 2π optimization.
    pub r_before: f64,
    /// `R_overall` after 2π optimization.
    pub r_after: f64,
    /// Trained masks before the 2π step.
    pub masks: Vec<Grid>,
    /// Masks after the 2π step (inference-equivalent to `masks`).
    pub masks_two_pi: Vec<Grid>,
    /// Fraction of zeroed pixels (0 for non-sparsified variants).
    pub sparsity: f64,
}

/// Trains and scores one variant end to end.
pub fn run_variant(cfg: &ExperimentConfig, variant: Variant) -> VariantResult {
    let (train_data, test_data) = cfg.datasets();
    run_variant_on(cfg, variant, &train_data, &test_data)
}

/// Like [`run_variant`] but reuses prebuilt datasets (the table binaries
/// share one dataset across all five rows).
pub fn run_variant_on(
    cfg: &ExperimentConfig,
    variant: Variant,
    train_data: &Dataset,
    test_data: &Dataset,
) -> VariantResult {
    let mut rng = Rng::seed_from(cfg.seed);
    let mut donn = Donn::random(cfg.donn_config(), &mut rng);
    let reg = cfg.regularization(variant);

    let base_opts = TrainOptions {
        epochs: cfg.baseline_epochs,
        batch_size: cfg.batch_size,
        learning_rate: cfg.baseline_lr,
        seed: cfg.seed,
        threads: cfg.threads,
        regularization: reg,
        lr_final_fraction: 0.05,
    };
    train(&mut donn, train_data, &base_opts);

    let mut sparsity = 0.0;
    if variant.sparsifies() {
        let slr_opts = TrainOptions {
            epochs: cfg.sparsify_epochs_per_iter,
            batch_size: cfg.batch_size,
            learning_rate: cfg.sparsify_lr,
            seed: cfg.seed ^ 0x51a5,
            threads: cfg.threads,
            regularization: reg,
            lr_final_fraction: 1.0,
        };
        let outcome = slr_train(&mut donn, train_data, &slr_opts, &cfg.slr);
        sparsity = outcome.sparsity;
        // Brief frozen fine-tune to recover from the hard projection,
        // keeping pruned pixels at exactly zero.
        let ft_opts = TrainOptions {
            epochs: 2,
            ..slr_opts
        };
        train_with(&mut donn, train_data, &ft_opts, Some(&outcome.keep), None);
    }

    let accuracy = donn.accuracy(test_data, cfg.threads);
    let r_before = r_overall(donn.masks(), cfg.roughness);
    let results = optimize_all(donn.masks(), cfg.roughness, &cfg.two_pi);
    let masks_two_pi: Vec<Grid> = results.iter().map(|r| r.mask.clone()).collect();
    let r_after = r_overall(&masks_two_pi, cfg.roughness);

    VariantResult {
        variant,
        accuracy,
        r_before,
        r_after,
        masks: donn.masks().to_vec(),
        masks_two_pi,
        sparsity,
    }
}

/// Runs all five variants on a shared dataset pair (one paper table).
pub fn run_all(cfg: &ExperimentConfig) -> Vec<VariantResult> {
    let (train_data, test_data) = cfg.datasets();
    Variant::all()
        .into_iter()
        .map(|v| run_variant_on(cfg, v, &train_data, &test_data))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_math::CGrid;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            train_samples: 120,
            test_samples: 60,
            baseline_epochs: 2,
            slr: SlrConfig {
                sparsity: 0.15,
                block: 8,
                outer_iterations: 2,
                probe_samples: 16,
                ..SlrConfig::default()
            },
            two_pi: TwoPiStrategy::Greedy { sweeps: 4 },
            ..ExperimentConfig::scaled(Family::Mnist)
        }
    }

    #[test]
    fn baseline_variant_learns() {
        let r = run_variant(&tiny_cfg(), Variant::Baseline);
        assert!(r.accuracy > 0.2, "accuracy {}", r.accuracy);
        assert!(r.r_before > 0.0);
        assert_eq!(r.sparsity, 0.0);
    }

    #[test]
    fn roughness_aware_variant_is_smoother_than_baseline() {
        let cfg = tiny_cfg();
        let (train_data, test_data) = cfg.datasets();
        let base = run_variant_on(&cfg, Variant::Baseline, &train_data, &test_data);
        let ours_a = run_variant_on(&cfg, Variant::OursA, &train_data, &test_data);
        assert!(
            ours_a.r_before < base.r_before,
            "Ours-A {} !< baseline {}",
            ours_a.r_before,
            base.r_before
        );
    }

    #[test]
    fn sparsified_variant_reports_sparsity_and_zeroes() {
        let cfg = tiny_cfg();
        let r = run_variant(&cfg, Variant::OursB);
        assert!(r.sparsity > 0.1, "sparsity {}", r.sparsity);
        let zeros: usize = r.masks.iter().map(Grid::count_zeros).sum();
        assert!(zeros > 0);
    }

    #[test]
    fn two_pi_preserves_inference_and_not_worse() {
        let cfg = tiny_cfg();
        let r = run_variant(&cfg, Variant::OursC);
        assert!(r.r_after <= r.r_before + 1e-9);
        for (a, b) in r.masks.iter().zip(&r.masks_two_pi) {
            let ta = CGrid::from_phase(a);
            let tb = CGrid::from_phase(b);
            assert!(ta.max_abs_diff(&tb) < 1e-9, "2π step changed inference");
        }
    }

    #[test]
    fn paper_config_has_paper_parameters() {
        let cfg = ExperimentConfig::paper(Family::Mnist);
        assert_eq!(cfg.grid, 200);
        assert_eq!(cfg.baseline_epochs, 50);
        assert_eq!(cfg.slr.block, 25);
        assert_eq!(cfg.batch_size, 200);
        assert_eq!(cfg.baseline_lr, 0.2);
        let f = ExperimentConfig::paper(Family::Fmnist);
        assert_eq!((f.baseline_epochs, f.slr.block), (150, 20));
    }

    #[test]
    fn variant_labels_match_paper() {
        assert_eq!(Variant::Baseline.label(), "[5], [6], [8]");
        assert_eq!(Variant::OursD.label(), "Ours-D");
        assert_eq!(Variant::all().len(), 5);
    }
}
