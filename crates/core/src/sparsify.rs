//! Weight sparsification (paper §III-C, Fig. 3).
//!
//! Three methods are implemented so the Fig. 3 comparison can be
//! reproduced: **block** sparsification (the paper's choice — zeroes whole
//! blocks ranked by L2 norm), **non-structured** magnitude pruning (Han et
//! al.), and **bank-balanced** sparsification (Cao et al. — identical
//! sparsity within each bank of every row).

use photonn_math::block::BlockPartition;
use photonn_math::stats::percentile;
use photonn_math::Grid;

/// Which sparsification pattern to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparsifyMethod {
    /// Zero whole `size × size` blocks with the smallest L2 norms — the
    /// paper's physics-aware choice (leaves space between active pixels).
    Block {
        /// Block side length (25 for MNIST, 20 for the others in §IV).
        size: usize,
    },
    /// Zero the individually smallest-magnitude weights.
    NonStructured,
    /// Split each row into `banks` equal banks and zero the smallest
    /// weights *within each bank* so sparsity is identical across banks.
    BankBalanced {
        /// Number of banks per row.
        banks: usize,
    },
}

/// Result of a sparsification: the pruned mask plus the 0/1 keep-mask
/// (1 where the weight survives) used to freeze pixels during subsequent
/// training.
#[derive(Clone, Debug, PartialEq)]
pub struct Sparsified {
    /// The mask with pruned entries set to exactly zero.
    pub mask: Grid,
    /// 1.0 where kept, 0.0 where pruned.
    pub keep: Grid,
}

impl Sparsified {
    /// Fraction of zeroed entries.
    pub fn sparsity(&self) -> f64 {
        self.keep.count_zeros() as f64 / self.keep.len() as f64
    }
}

/// Applies `method` at the given `ratio` (fraction of weights to zero,
/// e.g. `0.1` in the paper's training setup, `0.33` in Fig. 3).
///
/// # Panics
///
/// Panics if `ratio ∉ [0, 1]` or the method's structural parameters are
/// invalid for the mask shape.
pub fn sparsify(mask: &Grid, ratio: f64, method: SparsifyMethod) -> Sparsified {
    assert!((0.0..=1.0).contains(&ratio), "ratio {ratio} outside [0,1]");
    match method {
        SparsifyMethod::Block { size } => sparsify_block(mask, ratio, size),
        SparsifyMethod::NonStructured => sparsify_nonstructured(mask, ratio),
        SparsifyMethod::BankBalanced { banks } => sparsify_bank_balanced(mask, ratio, banks),
    }
}

fn sparsify_block(mask: &Grid, ratio: f64, size: usize) -> Sparsified {
    assert!(size > 0, "block size must be non-zero");
    let partition = BlockPartition::square(mask.rows(), mask.cols(), size);
    let norms = partition.block_l2_norms(mask);
    let k = (norms.len() as f64 * ratio).round() as usize;
    let mut keep = Grid::full(mask.rows(), mask.cols(), 1.0);
    if k > 0 {
        // Indices of the k smallest block norms.
        let mut order: Vec<usize> = (0..norms.len()).collect();
        order.sort_by(|&a, &b| norms[a].partial_cmp(&norms[b]).expect("NaN block norm"));
        let blocks: Vec<_> = partition.blocks().collect();
        for &bi in order.iter().take(k) {
            partition.fill_block(&mut keep, blocks[bi], 0.0);
        }
    }
    let pruned = mask.hadamard(&keep);
    Sparsified { mask: pruned, keep }
}

fn sparsify_nonstructured(mask: &Grid, ratio: f64) -> Sparsified {
    let magnitudes: Vec<f64> = mask.as_slice().iter().map(|v| v.abs()).collect();
    if ratio == 0.0 {
        return Sparsified {
            mask: mask.clone(),
            keep: Grid::full(mask.rows(), mask.cols(), 1.0),
        };
    }
    let threshold = percentile(&magnitudes, ratio * 100.0);
    let keep = mask.map(|v| if v.abs() <= threshold { 0.0 } else { 1.0 });
    Sparsified {
        mask: mask.hadamard(&keep),
        keep,
    }
}

fn sparsify_bank_balanced(mask: &Grid, ratio: f64, banks: usize) -> Sparsified {
    assert!(banks > 0, "bank count must be non-zero");
    let cols = mask.cols();
    assert!(
        cols.is_multiple_of(banks),
        "row length {cols} not divisible into {banks} banks"
    );
    let bank_w = cols / banks;
    let prune_per_bank = (bank_w as f64 * ratio).round() as usize;
    let mut keep = Grid::full(mask.rows(), mask.cols(), 1.0);
    for r in 0..mask.rows() {
        for b in 0..banks {
            let c0 = b * bank_w;
            let mut idx: Vec<usize> = (c0..c0 + bank_w).collect();
            idx.sort_by(|&a, &bb| {
                mask[(r, a)]
                    .abs()
                    .partial_cmp(&mask[(r, bb)].abs())
                    .expect("NaN weight")
            });
            for &c in idx.iter().take(prune_per_bank) {
                keep[(r, c)] = 0.0;
            }
        }
    }
    Sparsified {
        mask: mask.hadamard(&keep),
        keep,
    }
}

/// The worked 6×6 example matrix printed in the paper's Fig. 3/4.
pub fn fig3_matrix() -> Grid {
    Grid::from_rows(&[
        &[4.7, 5.7, 0.9, 0.4, 2.6, 8.6],
        &[4.5, 0.9, 3.8, 1.5, 5.4, 3.7],
        &[0.1, 5.7, 9.0, 3.2, 2.1, 0.7],
        &[4.7, 9.7, 7.8, 2.5, 0.8, 3.9],
        &[1.1, 0.7, 0.6, 0.1, 4.4, 1.8],
        &[5.6, 0.4, 1.8, 0.4, 9.8, 2.3],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_respected() {
        let m = fig3_matrix();
        for (method, expected) in [
            (SparsifyMethod::Block { size: 2 }, 12.0 / 36.0),
            (SparsifyMethod::NonStructured, 12.0 / 36.0),
            (SparsifyMethod::BankBalanced { banks: 2 }, 12.0 / 36.0),
        ] {
            let s = sparsify(&m, 1.0 / 3.0, method);
            assert!(
                (s.sparsity() - expected).abs() < 0.03,
                "{method:?}: sparsity {}",
                s.sparsity()
            );
        }
    }

    #[test]
    fn pruned_entries_are_exact_zero() {
        let m = fig3_matrix();
        let s = sparsify(&m, 0.33, SparsifyMethod::Block { size: 2 });
        for (v, k) in s.mask.as_slice().iter().zip(s.keep.as_slice()) {
            if *k == 0.0 {
                assert_eq!(*v, 0.0);
            }
        }
    }

    #[test]
    fn block_prunes_whole_blocks() {
        let m = fig3_matrix();
        let s = sparsify(&m, 0.33, SparsifyMethod::Block { size: 2 });
        let p = BlockPartition::square(6, 6, 2);
        for block in p.blocks() {
            let vals = p.block_values(&s.keep, block);
            let all_zero = vals.iter().all(|&v| v == 0.0);
            let all_one = vals.iter().all(|&v| v == 1.0);
            assert!(all_zero || all_one, "block partially pruned");
        }
    }

    #[test]
    fn block_keeps_largest_blocks() {
        let m = fig3_matrix();
        let s = sparsify(&m, 1.0 / 3.0, SparsifyMethod::Block { size: 2 });
        let p = BlockPartition::square(6, 6, 2);
        let kept_norms: Vec<f64> = p
            .blocks()
            .filter(|b| s.keep[(b.r0, b.c0)] == 1.0)
            .map(|b| photonn_math::stats::l2_norm(&p.block_values(&m, b)))
            .collect();
        let pruned_norms: Vec<f64> = p
            .blocks()
            .filter(|b| s.keep[(b.r0, b.c0)] == 0.0)
            .map(|b| photonn_math::stats::l2_norm(&p.block_values(&m, b)))
            .collect();
        assert_eq!(pruned_norms.len(), 3);
        let max_pruned = pruned_norms.iter().copied().fold(0.0, f64::max);
        let min_kept = kept_norms.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max_pruned <= min_kept + 1e-12);
    }

    #[test]
    fn nonstructured_prunes_smallest() {
        let m = fig3_matrix();
        let s = sparsify(&m, 1.0 / 3.0, SparsifyMethod::NonStructured);
        let pruned_max = m
            .as_slice()
            .iter()
            .zip(s.keep.as_slice())
            .filter(|(_, &k)| k == 0.0)
            .map(|(v, _)| v.abs())
            .fold(0.0, f64::max);
        let kept_min = m
            .as_slice()
            .iter()
            .zip(s.keep.as_slice())
            .filter(|(_, &k)| k == 1.0)
            .map(|(v, _)| v.abs())
            .fold(f64::INFINITY, f64::min);
        assert!(pruned_max <= kept_min);
    }

    #[test]
    fn bank_balanced_has_identical_bank_sparsity() {
        let m = fig3_matrix();
        let s = sparsify(&m, 1.0 / 3.0, SparsifyMethod::BankBalanced { banks: 2 });
        for r in 0..6 {
            for b in 0..2 {
                let zeros = (0..3).filter(|&i| s.keep[(r, b * 3 + i)] == 0.0).count();
                assert_eq!(zeros, 1, "row {r} bank {b} has {zeros} zeros");
            }
        }
    }

    #[test]
    fn zero_ratio_is_identity() {
        let m = fig3_matrix();
        for method in [
            SparsifyMethod::Block { size: 2 },
            SparsifyMethod::NonStructured,
            SparsifyMethod::BankBalanced { banks: 2 },
        ] {
            let s = sparsify(&m, 0.0, method);
            assert_eq!(s.mask, m);
            assert_eq!(s.sparsity(), 0.0);
        }
    }

    #[test]
    fn full_ratio_zeroes_everything() {
        let m = fig3_matrix();
        let s = sparsify(&m, 1.0, SparsifyMethod::Block { size: 2 });
        assert_eq!(s.mask.count_zeros(), 36);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_ratio_panics() {
        let _ = sparsify(&fig3_matrix(), 1.5, SparsifyMethod::NonStructured);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_bank_count_panics() {
        let _ = sparsify(
            &fig3_matrix(),
            0.3,
            SparsifyMethod::BankBalanced { banks: 4 },
        );
    }
}
