//! Hyperparameter exploration (paper §IV-C, Fig. 6).
//!
//! Sweeps sparsification ratio and the two regularization weights against
//! accuracy and roughness score, and extracts the accuracy-vs-roughness
//! Pareto frontier.

use photonn_datasets::Dataset;

use crate::pipeline::{run_variant_on, ExperimentConfig, Variant};

/// Which hyperparameter a sweep varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepParam {
    /// Sparsification ratio (Fig. 6b).
    SparsityRatio,
    /// Roughness regularization weight `p` (Fig. 6c).
    RoughnessWeight,
    /// Intra-block smoothness weight `q` (Fig. 6d).
    IntraWeight,
}

impl SweepParam {
    /// Axis label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SweepParam::SparsityRatio => "sparsification ratio",
            SweepParam::RoughnessWeight => "roughness regularization p",
            SweepParam::IntraWeight => "intra-block regularization q",
        }
    }
}

/// One sweep sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// The swept hyperparameter value.
    pub value: f64,
    /// Test accuracy.
    pub accuracy: f64,
    /// `R_overall` before 2π optimization (the training-time effect the
    /// figure isolates).
    pub roughness: f64,
}

/// Runs the variant appropriate for the sweep at each value, reusing one
/// dataset pair. `SparsityRatio` sweeps Ours-B… actually Ours-C (the
/// combined method, as the paper explores its hyperparameters);
/// `RoughnessWeight` sweeps Ours-C; `IntraWeight` sweeps Ours-D.
pub fn sweep(cfg: &ExperimentConfig, param: SweepParam, values: &[f64]) -> Vec<SweepPoint> {
    let (train_data, test_data) = cfg.datasets();
    sweep_on(cfg, param, values, &train_data, &test_data)
}

/// [`sweep`] with caller-provided datasets.
pub fn sweep_on(
    cfg: &ExperimentConfig,
    param: SweepParam,
    values: &[f64],
    train_data: &Dataset,
    test_data: &Dataset,
) -> Vec<SweepPoint> {
    values
        .iter()
        .map(|&value| {
            let mut c = *cfg;
            let variant = match param {
                SweepParam::SparsityRatio => {
                    c.slr.sparsity = value;
                    Variant::OursC
                }
                SweepParam::RoughnessWeight => {
                    c.p = value;
                    Variant::OursC
                }
                SweepParam::IntraWeight => {
                    c.q = value;
                    Variant::OursD
                }
            };
            let result = run_variant_on(&c, variant, train_data, test_data);
            SweepPoint {
                value,
                accuracy: result.accuracy,
                roughness: result.r_before,
            }
        })
        .collect()
}

/// Indices of the accuracy-vs-roughness Pareto frontier (maximize
/// accuracy, minimize roughness), sorted by increasing roughness — the
/// Fig. 6a curve.
pub fn pareto_frontier(points: &[SweepPoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .roughness
            .partial_cmp(&points[b].roughness)
            .expect("NaN roughness")
            .then(
                points[b]
                    .accuracy
                    .partial_cmp(&points[a].accuracy)
                    .expect("NaN accuracy"),
            )
    });
    let mut frontier = Vec::new();
    let mut best_acc = f64::NEG_INFINITY;
    for idx in order {
        if points[idx].accuracy > best_acc {
            best_acc = points[idx].accuracy;
            frontier.push(idx);
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(roughness: f64, accuracy: f64) -> SweepPoint {
        SweepPoint {
            value: 0.0,
            accuracy,
            roughness,
        }
    }

    #[test]
    fn pareto_keeps_only_nondominated() {
        let points = vec![
            pt(10.0, 0.9),  // frontier
            pt(5.0, 0.8),   // frontier
            pt(7.0, 0.75),  // dominated by (5.0, 0.8)
            pt(2.0, 0.5),   // frontier
            pt(12.0, 0.85), // dominated by (10.0, 0.9)
        ];
        let f = pareto_frontier(&points);
        assert_eq!(f, vec![3, 1, 0]);
    }

    #[test]
    fn pareto_of_single_point() {
        let points = vec![pt(1.0, 0.5)];
        assert_eq!(pareto_frontier(&points), vec![0]);
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let points: Vec<SweepPoint> = (0..20)
            .map(|i| {
                pt(
                    (i as f64 * 13.0) % 7.0 + 1.0,
                    (i as f64 * 17.0 % 10.0) / 10.0,
                )
            })
            .collect();
        let f = pareto_frontier(&points);
        for w in f.windows(2) {
            assert!(points[w[0]].roughness <= points[w[1]].roughness);
            assert!(points[w[0]].accuracy < points[w[1]].accuracy);
        }
    }

    #[test]
    fn sweep_labels() {
        assert_eq!(SweepParam::SparsityRatio.label(), "sparsification ratio");
    }
}
