//! # photonn-donn
//!
//! A from-scratch Rust reproduction of *Physics-aware Roughness
//! Optimization for Diffractive Optical Neural Networks* (Zhou, Li, Lou,
//! Gao, Shi, Yu, Ding — DAC 2023, arXiv:2304.01500).
//!
//! Diffractive optical neural networks (DONNs) compute with light: an
//! image is encoded on a coherent laser field, diffracts through a stack
//! of 3-D-printed phase masks, and lands on detector regions whose summed
//! intensities act as class scores. Trained numerically, deployed
//! physically — and the deployment degrades when adjacent mask pixels have
//! sharp phase steps (interpixel crosstalk). The paper quantifies this as
//! **roughness** and attacks it four ways, all implemented here:
//!
//! | Component | Paper | Module |
//! |---|---|---|
//! | Differentiable DONN (FFT propagation + phase masks) | §III-A | [`Donn`] |
//! | Roughness model + regularized training (Eq. 3–5) | §III-B | [`roughness`], [`train`] |
//! | SLR block sparsification (Eq. 6–7) | §III-C | [`sparsify`], [`slr`] |
//! | Intra-block smoothness (Eq. 8) | §III-D1 | [`smoothness`] |
//! | 2π periodic optimization (Gumbel-Softmax) | §III-D2 | [`two_pi`] |
//! | Experiment pipeline (Tables II–V, Fig. 5–6) | §IV | [`pipeline`], [`explore`] |
//! | Deployment-gap simulation (crosstalk) | §II-B motivation | [`deploy`] |
//!
//! # Examples
//!
//! Train a small DONN and smooth it:
//!
//! ```
//! use photonn_donn::{
//!     roughness::{r_overall, RoughnessConfig},
//!     train::{train, TrainOptions},
//!     two_pi::{optimize_all, TwoPiStrategy},
//!     Donn, DonnConfig,
//! };
//! use photonn_datasets::{Dataset, Family};
//! use photonn_math::Rng;
//!
//! let mut rng = Rng::seed_from(7);
//! let mut donn = Donn::random(DonnConfig::scaled(32), &mut rng);
//! let data = Dataset::synthetic(Family::Mnist, 60, 7).resized(32);
//! let opts = TrainOptions { epochs: 1, batch_size: 20, ..TrainOptions::default() };
//! train(&mut donn, &data, &opts);
//!
//! let cfg = RoughnessConfig::paper();
//! let before = r_overall(donn.masks(), cfg);
//! let smoothed = optimize_all(donn.masks(), cfg, &TwoPiStrategy::Greedy { sweeps: 3 });
//! assert!(smoothed.iter().all(|r| r.roughness_after <= r.roughness_before));
//! # let _ = before;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod deploy;
mod detector;
pub mod explore;
pub mod io;
pub mod metrics;
mod model;
pub mod pipeline;
pub mod quantize;
pub mod report;
pub mod roughness;
pub mod slr;
pub mod smoothness;
pub mod sparsify;
pub mod train;
pub mod two_pi;

pub use config::{DonnConfig, LossKind, MaskInit};
pub use detector::{argmax, region_sums, region_sums_planar, DetectorConfig};
pub use model::{BatchLossParts, Donn};
// Detector regions are part of the readout API surface (serving-side
// heads aggregate per-region intensity themselves), so the rectangle type
// is re-exported rather than forcing a photonn-autodiff dependency on
// downstream crates.
pub use photonn_autodiff::Region;
