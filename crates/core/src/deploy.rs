//! Hardware-deployment simulation: interpixel crosstalk.
//!
//! The paper's motivation (§II-B) is that rough masks break down on real
//! optics because sharp phase steps between adjacent pixels create a
//! fast-varying incident field — interpixel crosstalk — that the numerical
//! model does not capture; Zhou et al. report ≥ 30 % accuracy loss when
//! deploying roughness-oblivious masks. With no physical hardware in this
//! environment, [`FabricationModel`] reproduces the *mechanism*: each
//! deployed pixel's complex transmission leaks a fraction κ of its
//! neighbors' fields,
//!
//! `t_i = (1−κ)·e^{iφ_i} + κ·mean_{q∈N(i)} e^{iφ_q}`.
//!
//! For smooth masks neighboring phasors agree and `t ≈ e^{iφ}` (little
//! error); across sharp steps the phasors interfere destructively and the
//! deployed response diverges from the digital model — exactly the
//! roughness-correlated gap the paper optimizes away.

pub use photonn_autodiff::Neighborhood;
use photonn_datasets::Dataset;
use photonn_math::{CGrid, Complex64, Grid};
use photonn_optics::encode_amplitude;

use crate::detector::argmax;
use crate::model::Donn;

/// Interpixel-crosstalk fabrication model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricationModel {
    /// Crosstalk coefficient κ ∈ [0, 1): fraction of each pixel's
    /// transmission contributed by its neighbors.
    pub crosstalk: f64,
    /// Which neighbors leak (8-neighborhood matches the roughness model).
    pub neighborhood: Neighborhood,
}

impl FabricationModel {
    /// Creates a model with the given crosstalk coefficient.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ crosstalk < 1`.
    pub fn new(crosstalk: f64) -> Self {
        assert!((0.0..1.0).contains(&crosstalk), "crosstalk outside [0,1)");
        FabricationModel {
            crosstalk,
            neighborhood: Neighborhood::Eight,
        }
    }

    /// The deployed complex transmission of one phase mask.
    pub fn transmission(&self, mask: &Grid) -> CGrid {
        let ideal = CGrid::from_phase(mask);
        if self.crosstalk == 0.0 {
            return ideal;
        }
        let (rows, cols) = mask.shape();
        let offsets = self.neighborhood.offsets();
        CGrid::from_fn(rows, cols, |r, c| {
            let own = ideal[(r, c)];
            let mut leak = Complex64::ZERO;
            let mut count = 0.0;
            for &(dr, dc) in offsets {
                let qr = r as isize + dr;
                let qc = c as isize + dc;
                if qr >= 0 && qc >= 0 && (qr as usize) < rows && (qc as usize) < cols {
                    leak += ideal[(qr as usize, qc as usize)];
                    count += 1.0;
                }
            }
            own.scale(1.0 - self.crosstalk) + leak.scale(self.crosstalk / count)
        })
    }

    /// Forward pass through the *deployed* system (crosstalk-corrupted
    /// transmissions) for an encoded input field.
    pub fn forward_field(&self, donn: &Donn, input: &CGrid) -> CGrid {
        let transmissions: Vec<CGrid> = donn.masks().iter().map(|m| self.transmission(m)).collect();
        let mut field = propagate_like(donn, input);
        for t in &transmissions {
            field.hadamard_inplace(t);
            field = propagate_like(donn, &field);
        }
        field
    }

    /// The deployed complex transmissions of every layer of a model — what
    /// a serving registry precomputes once so deployed inference pays no
    /// per-request crosstalk convolution.
    pub fn transmissions(&self, donn: &Donn) -> Vec<CGrid> {
        donn.masks().iter().map(|m| self.transmission(m)).collect()
    }

    /// Batched *deployed* inference through the batched propagation engine:
    /// per-sample detector sums under crosstalk-corrupted transmissions.
    /// Returns an empty vector for an empty batch; `threads == 0` is
    /// treated as 1.
    ///
    /// # Panics
    ///
    /// Panics if any image is not grid-sized.
    pub fn logits_batch(&self, donn: &Donn, images: &[&Grid], threads: usize) -> Vec<Vec<f64>> {
        if images.is_empty() {
            return Vec::new();
        }
        let field = donn.first_hop_batch(images, threads);
        donn.logits_batch_with_transmissions(&self.transmissions(donn), field, threads)
    }

    /// Deployed prediction for an image.
    pub fn predict(&self, donn: &Donn, image: &Grid) -> usize {
        let intensity = self
            .forward_field(donn, &encode_amplitude(image))
            .intensity();
        let sums: Vec<f64> = donn.regions().iter().map(|r| r.sum(&intensity)).collect();
        argmax(&sums)
    }

    /// Deployed accuracy over a dataset (chunked parallel, deterministic).
    ///
    /// Returns `0.0` for an empty dataset instead of dividing by zero.
    pub fn accuracy(&self, donn: &Donn, dataset: &Dataset, threads: usize) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let threads = threads.max(1).min(dataset.len());
        let chunk = dataset.len().div_ceil(threads);
        let correct: usize = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(dataset.len());
                if lo >= hi {
                    break;
                }
                handles.push(scope.spawn(move || {
                    (lo..hi)
                        .filter(|&i| self.predict(donn, dataset.image(i)) == dataset.label(i))
                        .count()
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        });
        correct as f64 / dataset.len() as f64
    }
}

/// The digital-vs-deployed accuracy gap for one model (positive = the
/// deployment lost accuracy).
pub fn deployment_gap(
    donn: &Donn,
    fab: &FabricationModel,
    dataset: &Dataset,
    threads: usize,
) -> (f64, f64) {
    let digital = donn.accuracy(dataset, threads);
    let deployed = fab.accuracy(donn, dataset, threads);
    (digital, deployed)
}

/// One free-space hop matching [`Donn`]'s internal propagation.
fn propagate_like(donn: &Donn, field: &CGrid) -> CGrid {
    let n = donn.config().grid();
    let padded = donn.config().padding.padded_size(n);
    let mut work = if padded == n {
        field.clone()
    } else {
        field.pad_centered(padded, padded)
    };
    donn.plan().forward(&mut work);
    work.hadamard_inplace(donn.kernel());
    donn.plan().inverse(&mut work);
    if padded == n {
        work
    } else {
        work.crop_centered(n, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DonnConfig;
    use photonn_math::{Rng, TWO_PI};

    #[test]
    fn deployed_accuracy_of_empty_dataset_is_zero_not_panic() {
        let mut rng = Rng::seed_from(2);
        let donn = crate::Donn::random(DonnConfig::scaled(16), &mut rng);
        let fab = FabricationModel::new(0.1);
        let acc = fab.accuracy(&donn, &Dataset::default(), 2);
        assert_eq!(acc, 0.0);
    }

    #[test]
    fn zero_crosstalk_is_ideal() {
        let mask = Grid::from_fn(8, 8, |r, c| (r + c) as f64 * 0.3);
        let fab = FabricationModel::new(0.0);
        let t = fab.transmission(&mask);
        assert!(t.max_abs_diff(&CGrid::from_phase(&mask)) < 1e-15);
    }

    #[test]
    fn smooth_mask_deploys_nearly_ideally() {
        let smooth = Grid::from_fn(16, 16, |r, c| 0.02 * (r + c) as f64);
        let fab = FabricationModel::new(0.15);
        let t = fab.transmission(&smooth);
        let ideal = CGrid::from_phase(&smooth);
        // Interior pixels: neighbors agree, so |t| stays near 1.
        assert!((t[(8, 8)].norm() - 1.0).abs() < 0.01);
        assert!(t.max_abs_diff(&ideal) < 0.2);
    }

    #[test]
    fn rough_mask_deploys_badly() {
        // Checkerboard of 0 / π: neighbors cancel.
        let rough = Grid::from_fn(16, 16, |r, c| {
            if (r + c) % 2 == 0 {
                0.0
            } else {
                std::f64::consts::PI
            }
        });
        let fab = FabricationModel::new(0.15);
        let t = fab.transmission(&rough);
        // Destructive leakage shrinks the modulus: the 8-neighborhood of a
        // checkerboard pixel cancels entirely, so |t| = 1−κ exactly.
        assert!(
            (t[(8, 8)].norm() - 0.85).abs() < 1e-12,
            "|t| = {}",
            t[(8, 8)].norm()
        );
    }

    #[test]
    fn transmission_error_correlates_with_roughness() {
        let cfg = photonn_autodiff::RoughnessConfig::paper();
        let mut rng = Rng::seed_from(11);
        let smooth = Grid::from_fn(16, 16, |r, c| 0.05 * (r + c) as f64);
        let rough = Grid::from_fn(16, 16, |_, _| rng.uniform_in(0.0, TWO_PI));
        assert!(
            photonn_autodiff::penalty::roughness_value(&smooth, cfg)
                < photonn_autodiff::penalty::roughness_value(&rough, cfg)
        );
        let fab = FabricationModel::new(0.15);
        let err = |m: &Grid| fab.transmission(m).max_abs_diff(&CGrid::from_phase(m));
        assert!(
            err(&smooth) < err(&rough),
            "smooth err {} !< rough err {}",
            err(&smooth),
            err(&rough)
        );
    }

    #[test]
    fn batched_deployed_logits_match_per_sample_path() {
        let mut rng = Rng::seed_from(6);
        let donn = Donn::random(DonnConfig::scaled(32), &mut rng);
        let data =
            photonn_datasets::Dataset::synthetic(photonn_datasets::Family::Mnist, 6, 5).resized(32);
        let fab = FabricationModel::new(0.12);
        let images: Vec<&Grid> = (0..6).map(|i| data.image(i)).collect();
        let batched = fab.logits_batch(&donn, &images, 3);
        assert_eq!(batched.len(), 6);
        for (i, logits) in batched.iter().enumerate() {
            // The scalar deployed path differs only in FFT summation order.
            let intensity = fab
                .forward_field(&donn, &encode_amplitude(images[i]))
                .intensity();
            for (r, got) in donn.regions().iter().zip(logits) {
                let want = r.sum(&intensity);
                assert!((got - want).abs() < 1e-9, "sample {i}: {got} vs {want}");
            }
        }
        assert!(fab.logits_batch(&donn, &[], 2).is_empty());
    }

    #[test]
    fn deployment_gap_is_bounded_and_computable() {
        let mut rng = Rng::seed_from(3);
        let donn = Donn::random(DonnConfig::scaled(32), &mut rng);
        let data = photonn_datasets::Dataset::synthetic(photonn_datasets::Family::Mnist, 20, 3)
            .resized(32);
        let fab = FabricationModel::new(0.1);
        let (digital, deployed) = deployment_gap(&donn, &fab, &data, 2);
        assert!((0.0..=1.0).contains(&digital));
        assert!((0.0..=1.0).contains(&deployed));
    }

    #[test]
    #[should_panic(expected = "crosstalk")]
    fn crosstalk_of_one_rejected() {
        let _ = FabricationModel::new(1.0);
    }
}
