//! Roughness measurement (paper §III-B, Eq. 3–4).
//!
//! The differentiable forward/backward lives in
//! [`photonn_autodiff::penalty`] so training can share it; this module adds
//! the measurement-level API the evaluation tables use, most importantly
//! [`r_overall`] — "the average of the roughness of all phase masks"
//! (paper §IV-B).

use photonn_math::Grid;

pub use photonn_autodiff::penalty::{roughness_grad, roughness_value};
pub use photonn_autodiff::{DiffMetric, Neighborhood, RoughnessConfig};

/// Roughness of a single phase mask — paper Eq. 4.
pub fn roughness(mask: &Grid, cfg: RoughnessConfig) -> f64 {
    roughness_value(mask, cfg)
}

/// System roughness score `R_overall`: the mean of per-layer roughness
/// over all diffractive layers (paper §IV-B). Lower means weaker
/// interpixel interaction and a smaller numerical-vs-deployed gap.
///
/// # Panics
///
/// Panics on an empty mask list.
///
/// # Examples
///
/// ```
/// use photonn_donn::roughness::{r_overall, RoughnessConfig};
/// use photonn_math::Grid;
///
/// let masks = vec![Grid::zeros(8, 8), Grid::full(8, 8, 1.0)];
/// let r = r_overall(&masks, RoughnessConfig::paper());
/// assert!(r > 0.0); // the non-zero mask pays at the padded boundary
/// ```
pub fn r_overall(masks: &[Grid], cfg: RoughnessConfig) -> f64 {
    assert!(!masks.is_empty(), "no masks to score");
    masks.iter().map(|m| roughness_value(m, cfg)).sum::<f64>() / masks.len() as f64
}

/// Per-pixel roughness map (the pixel term of Eq. 3 before summation) —
/// used by visualization and for locating hot spots.
pub fn roughness_map(mask: &Grid, cfg: RoughnessConfig) -> Grid {
    let (rows, cols) = mask.shape();
    let offsets = cfg.neighborhood.offsets();
    let inv_k = 1.0 / cfg.neighborhood.k() as f64;
    Grid::from_fn(rows, cols, |r, c| {
        let p = mask[(r, c)];
        let mut acc = 0.0;
        for &(dr, dc) in offsets {
            let q = mask.get_zero_padded(r as isize + dr, c as isize + dc);
            acc += match cfg.metric {
                DiffMetric::Abs => (q - p).abs(),
                DiffMetric::Squared => (q - p) * (q - p),
            };
        }
        acc * inv_k
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonn_math::TWO_PI;

    #[test]
    fn map_sums_to_value() {
        let mask = Grid::from_fn(6, 6, |r, c| ((r * 6 + c) % 7) as f64);
        for cfg in [
            RoughnessConfig::paper(),
            RoughnessConfig {
                neighborhood: Neighborhood::Four,
                metric: DiffMetric::Squared,
            },
        ] {
            let map = roughness_map(&mask, cfg);
            assert!((map.sum() - roughness(&mask, cfg)).abs() < 1e-9);
        }
    }

    #[test]
    fn r_overall_is_mean() {
        let a = Grid::full(4, 4, 1.0);
        let b = Grid::zeros(4, 4);
        let cfg = RoughnessConfig::paper();
        let expected = (roughness(&a, cfg) + roughness(&b, cfg)) / 2.0;
        assert!((r_overall(&[a, b], cfg) - expected).abs() < 1e-12);
    }

    #[test]
    fn smooth_gradient_mask_is_smoother_than_noise() {
        let smooth = Grid::from_fn(16, 16, |r, c| (r + c) as f64 * 0.05);
        let mut rng = photonn_math::Rng::seed_from(1);
        let noisy = Grid::from_fn(16, 16, |_, _| rng.uniform_in(0.0, TWO_PI));
        let cfg = RoughnessConfig::paper();
        assert!(roughness(&smooth, cfg) < roughness(&noisy, cfg));
    }

    #[test]
    #[should_panic(expected = "no masks")]
    fn empty_mask_list_panics() {
        let _ = r_overall(&[], RoughnessConfig::paper());
    }
}
