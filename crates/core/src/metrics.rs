//! Evaluation metrics beyond plain accuracy.

use photonn_datasets::Dataset;

use crate::model::Donn;

/// A confusion matrix: `counts[true][predicted]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Evaluates the model over a dataset.
    ///
    /// # Panics
    ///
    /// Panics if a label exceeds the model's class count.
    pub fn evaluate(donn: &Donn, dataset: &Dataset) -> Self {
        let classes = donn.config().detector.num_classes;
        let mut counts = vec![vec![0usize; classes]; classes];
        for i in 0..dataset.len() {
            let truth = dataset.label(i);
            assert!(truth < classes, "label {truth} outside {classes} classes");
            let pred = donn.predict(dataset.image(i));
            counts[truth][pred] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.classes()).map(|i| self.counts[i][i]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        correct as f64 / total.max(1) as f64
    }

    /// Per-class recall (`NaN`-free: classes with no samples report 0).
    pub fn recall(&self) -> Vec<f64> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let total: usize = row.iter().sum();
                if total == 0 {
                    0.0
                } else {
                    row[i] as f64 / total as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DonnConfig;
    use crate::model::Donn;
    use photonn_datasets::Family;
    use photonn_math::Rng;

    #[test]
    fn confusion_matrix_totals_match_dataset() {
        let mut rng = Rng::seed_from(1);
        let donn = Donn::random(DonnConfig::scaled(32), &mut rng);
        let data = Dataset::synthetic(Family::Mnist, 30, 1).resized(32);
        let cm = ConfusionMatrix::evaluate(&donn, &data);
        let mut total = 0usize;
        for t in 0..10 {
            for p in 0..10 {
                total += cm.count(t, p);
            }
        }
        assert_eq!(total, 30);
        assert!((0.0..=1.0).contains(&cm.accuracy()));
        assert_eq!(cm.recall().len(), 10);
    }

    #[test]
    fn accuracy_matches_model_accuracy() {
        let mut rng = Rng::seed_from(2);
        let donn = Donn::random(DonnConfig::scaled(32), &mut rng);
        let data = Dataset::synthetic(Family::Emnist, 20, 2).resized(32);
        let cm = ConfusionMatrix::evaluate(&donn, &data);
        assert!((cm.accuracy() - donn.accuracy(&data, 1)).abs() < 1e-12);
    }
}
